//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses.
//!
//! The build container cannot reach a crates registry. This stub keeps
//! `criterion_micro.rs` compiling and runnable: it executes each
//! benchmark a small, fixed number of iterations and prints mean
//! wall-clock per iteration — enough to smoke-test the benchmarked code
//! paths, without criterion's statistics, warm-up, or reports. Swapping
//! the path dependency back to crates.io `criterion = "0.5"` restores
//! the real harness with zero source changes.

use std::time::Instant;

/// Iteration driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size.max(1), elapsed_ns: 0 };
        f(&mut b);
        let per_iter = b.elapsed_ns as f64 / b.iters as f64;
        println!("{}/{}: {:.1} ns/iter ({} iters)", self.name, id, per_iter, b.iters);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id).sample_size(10).bench_function("bench", f);
        self
    }
}

/// Re-export so `criterion::black_box` call sites keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("double", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        double(&mut c);
    }
}
