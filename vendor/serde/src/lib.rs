//! Offline trait-only stand-in for `serde`.
//!
//! The build container used for this repository has no access to a crates
//! registry, so the real `serde` cannot be fetched. The workspace only
//! *derives* `Serialize`/`Deserialize` (there is no serializer in-tree),
//! so this stub provides:
//!
//! * marker traits `Serialize` and `Deserialize<'de>` with blanket impls,
//!   so `T: Serialize` bounds are always satisfiable;
//! * re-exported no-op derive macros (feature `derive`), so
//!   `#[derive(Serialize, Deserialize)]` compiles unchanged.
//!
//! Swapping the path dependency back to crates.io `serde = "1"` restores
//! real serialization with zero source changes.

/// Marker stand-in for `serde::Serialize`. Satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`. Satisfied by every
/// type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Point {
        _x: i32,
    }

    fn requires_serialize<T: Serialize>(_t: &T) {}

    #[test]
    fn blanket_impls_satisfy_bounds() {
        requires_serialize(&Point { _x: 1 });
        requires_serialize(&vec![1u8, 2, 3]);
    }
}
