//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build container cannot reach a crates registry, so the real
//! `proptest` is unavailable. This stub keeps the same source syntax —
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in 0usize..10, ..)
//! {..} }`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `any::<bool>()`, `proptest::collection::vec` — while implementing it
//! as plain randomized testing: each test runs `cases` iterations with
//! values sampled from the strategies, seeded deterministically from the
//! test's name so failures reproduce.
//!
//! Differences from upstream that matter: no shrinking (a failing case
//! reports the sampled values via the assertion message only) and no
//! persisted failure regressions. Swapping the path dependency back to
//! crates.io `proptest = "1"` restores both with zero source changes.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's name (FNV-1a), so every run of a given test
    /// sees the same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`, rejection-sampled to avoid modulo
    /// bias.
    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        let zone = u128::MAX - (u128::MAX % span);
        loop {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if wide < zone {
                return wide % span;
            }
        }
    }
}

/// A source of random values of one type — the sampling half of
/// upstream proptest's `Strategy` (no shrink tree).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// `Strategy` returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_for_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_for_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`], mirroring upstream's
    /// `SizeRange` (exclusive upper bound for `Range`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from the
    /// size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..=self.size.max_inclusive).sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Runs each declared test `cases` times with freshly sampled inputs.
/// The `#[test]` attribute is written by the caller (as this workspace
/// does) and passed through untouched.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                // A closure per case so `prop_assume!` can skip the
                // case by returning early.
                let mut __one_case = || {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                };
                let _ = __case;
                __one_case();
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_vecs_sample_in_bounds");
        for _ in 0..200 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let v = crate::collection::vec((0u64..10, any::<bool>()), 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 10));
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: config, doc comment, passthrough
        /// `#[test]`, multiple args, trailing comma, assume.
        #[test]
        fn macro_roundtrip(x in 1usize..50, flip in any::<bool>(),) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(flip as u8 + !flip as u8, 1);
        }
    }
}
