//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides a deterministic splitmix64-based `StdRng` plus the
//! `Rng`/`RngCore`/`SeedableRng` trait surface the workspace calls
//! (`seed_from_u64`, `gen_range` over integer ranges, `gen_bool`).
//! The stream differs from upstream `rand`'s ChaCha12 `StdRng`, which is
//! fine here: callers only rely on determinism for a fixed seed, not on
//! a particular stream.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` via rejection sampling (span > 0; a span
/// of 0 means the full 2^128 range never occurs here since callers pass
/// non-empty ranges whose width fits in u128).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Draw 128 bits; reject the final partial bucket to avoid modulo bias.
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 random bits give a uniform f64 in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush, and needs only one word of state.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1600..2400).contains(&hits), "p=0.5 gave {hits}/4000");
    }
}
