//! No-op stand-in for `serde_derive`, used when building offline.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types for downstream consumers, but nothing in-tree ever serializes a
//! value (there is no wire format dependency such as `serde_json`). The
//! stub therefore accepts the derive attribute and expands to nothing;
//! the trait bounds are satisfied by the blanket impls in the sibling
//! `serde` stub.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
