//! End-to-end functional correctness: every technique's schedule, for
//! every benchmark, computes bit-identical results to the program-order
//! reference interpretation.
//!
//! Buffers are initialized with small integers so floating-point
//! reductions are exact under any association order — any difference is
//! a real iteration-space bug, not rounding.

use palo::arch::presets;
use palo::baselines::{schedule_for, Technique};
use palo::exec::{run, run_reference, Buffers};
use palo::ir::LoopNest;
use palo::suite::Benchmark;

fn small_nests(b: Benchmark) -> Vec<LoopNest> {
    let size = match b {
        Benchmark::Convlayer => 8,
        Benchmark::Doitgen => 10,
        _ => 24,
    };
    b.build(size).expect("suite kernels build")
}

fn check(b: Benchmark, technique: Technique, arch: &palo::arch::Architecture) {
    for nest in small_nests(b) {
        let sched = schedule_for(technique, &nest, arch, 99);
        let lowered = sched
            .lower(&nest)
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name(), technique.label()));
        let mut expect = Buffers::for_nest(&nest, 7);
        let mut got = expect.clone();
        run_reference(&nest, &mut expect).expect("reference run succeeds");
        run(&nest, &lowered, &mut got).expect("schedule run succeeds");
        assert_eq!(
            expect,
            got,
            "{} under {} produced wrong values",
            nest.name(),
            technique.label()
        );
    }
}

#[test]
fn proposed_is_correct_on_all_benchmarks() {
    let arch = presets::intel_i7_5930k();
    for b in Benchmark::all() {
        check(b, Technique::ProposedNti, &arch);
    }
}

#[test]
fn proposed_is_correct_on_arm() {
    let arch = presets::arm_cortex_a15();
    for b in Benchmark::all() {
        check(b, Technique::Proposed, &arch);
    }
}

#[test]
fn autoscheduler_is_correct_on_all_benchmarks() {
    let arch = presets::intel_i7_6700();
    for b in Benchmark::all() {
        check(b, Technique::AutoScheduler, &arch);
    }
}

#[test]
fn baseline_is_correct_on_all_benchmarks() {
    let arch = presets::intel_i7_6700();
    for b in Benchmark::all() {
        check(b, Technique::Baseline, &arch);
    }
}

#[test]
fn tss_and_tts_are_correct_on_temporal_benchmarks() {
    let arch = presets::intel_i7_5930k();
    for b in Benchmark::all().into_iter().filter(|b| b.is_temporal()) {
        check(b, Technique::Tss, &arch);
        check(b, Technique::Tts, &arch);
    }
}

#[test]
fn autotuner_candidates_are_correct() {
    let arch = presets::intel_i7_6700();
    for b in [Benchmark::Matmul, Benchmark::Tpm, Benchmark::Doitgen] {
        check(b, Technique::Autotuner { budget: 4 }, &arch);
    }
}
