//! End-to-end: optimize → lower → (small) trace for every benchmark on
//! every platform, plus determinism of the whole flow.

use palo::arch::presets;
use palo::cachesim::Hierarchy;
use palo::core::Optimizer;
use palo::exec::{trace_into, TraceOptions};
use palo::suite::Benchmark;

fn small_size(b: Benchmark) -> usize {
    match b {
        Benchmark::Convlayer => 12,
        Benchmark::Doitgen => 16,
        _ => 48,
    }
}

#[test]
fn optimize_lower_trace_all_benchmarks_all_platforms() {
    for arch in [
        presets::repro::intel_i7_6700(),
        presets::repro::intel_i7_5930k(),
        presets::repro::arm_cortex_a15(),
    ] {
        let opt = Optimizer::new(&arch);
        for b in Benchmark::all() {
            for nest in b.build(small_size(b)).expect("kernels build") {
                let d = opt.optimize(&nest);
                let lowered = d
                    .schedule()
                    .lower(&nest)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name(), arch.name));
                let mut hier = Hierarchy::from_architecture(&arch);
                trace_into(&nest, &lowered, &mut hier, &TraceOptions::default())
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name(), arch.name));
                assert!(
                    hier.stats().total_accesses > 0,
                    "{} on {}: empty trace",
                    b.name(),
                    arch.name
                );
            }
        }
    }
}

#[test]
fn optimizer_is_deterministic() {
    let arch = presets::repro::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    for b in [Benchmark::Matmul, Benchmark::Tpm, Benchmark::Doitgen] {
        let nests = b.build(small_size(b)).expect("kernels build");
        for nest in &nests {
            let d1 = opt.optimize(nest);
            let d2 = opt.optimize(nest);
            assert_eq!(d1, d2, "{} decision must be deterministic", b.name());
        }
    }
}

#[test]
fn decisions_differ_across_platforms_where_expected() {
    // The ARM A15 must never select NTI; Intel must on spatial kernels.
    let nest = &Benchmark::Tp.build(128).unwrap()[0];
    let intel = Optimizer::new(&presets::repro::intel_i7_5930k()).optimize(nest);
    let arm = Optimizer::new(&presets::repro::arm_cortex_a15()).optimize(nest);
    assert!(intel.use_nti);
    assert!(!arm.use_nti);
    assert_eq!(intel.vector_lanes, 8);
    assert_eq!(arm.vector_lanes, 4);
}
