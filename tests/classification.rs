//! The classifier must route every benchmark exactly as the paper's
//! evaluation groups them (§5.1): eight temporal kernels, two spatial
//! kernels, two contiguous kernels with NTI.

use palo::arch::presets;
use palo::core::{Class, Optimizer};
use palo::suite::Benchmark;

fn classify(b: Benchmark) -> Vec<Class> {
    let arch = presets::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    b.build(match b {
        Benchmark::Convlayer => 16,
        Benchmark::Doitgen => 16,
        _ => 64,
    })
    .expect("suite kernels build")
    .iter()
    .map(|nest| opt.optimize(nest).class)
    .collect()
}

#[test]
fn temporal_group() {
    for b in Benchmark::all().into_iter().filter(|b| b.is_temporal()) {
        for c in classify(b) {
            assert_eq!(c, Class::Temporal, "{}", b.name());
        }
    }
}

#[test]
fn spatial_group() {
    for b in [Benchmark::Tp, Benchmark::Tpm] {
        assert_eq!(classify(b), vec![Class::Spatial], "{}", b.name());
    }
}

#[test]
fn contiguous_group_gets_nti_on_intel() {
    let arch = presets::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    for b in [Benchmark::Copy, Benchmark::Mask] {
        for nest in b.build(64).unwrap() {
            let d = opt.optimize(&nest);
            assert_eq!(d.class, Class::ContiguousOnly, "{}", b.name());
            assert!(d.use_nti, "{} should stream its output", b.name());
            assert!(
                d.schedule().directives().len() <= 4,
                "{}: contiguous kernels must not be tiled: {}",
                b.name(),
                d.schedule()
            );
        }
    }
}

#[test]
fn nti_groups_match_table() {
    let arch = presets::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    for b in Benchmark::all() {
        let expect_nti = b.nti_applicable();
        for nest in b.build(32).unwrap() {
            let d = opt.optimize(&nest);
            assert_eq!(d.use_nti, expect_nti, "{}: NTI should be {expect_nti}", b.name());
        }
    }
}
