//! Golden snapshot of the artifact codec's wire bytes.
//!
//! The persistent store replays artifacts across processes, so the
//! binary encoding is a *compatibility surface*: an accidental codec
//! change silently invalidates (or worse, misreads) every on-disk cache.
//! This test pins the exact framed bytes of the deterministic pass
//! artifacts — classify, degrade, lower — for one fixed nest, so any
//! encoding change fails loudly and must be blessed like source.
//!
//! (The optimize and simulate artifacts carry wall-clock search/replay
//! telemetry and are deliberately not byte-pinned.)
//!
//! To regenerate after an *intentional* codec or schema change:
//!
//! ```text
//! PALO_BLESS_GOLDEN=1 cargo test --test codec_golden
//! ```

use palo::codec::{frame, Codec};
use palo::core::pass::{ClassifyPass, DegradePass, LowerPass, Pass};
use palo::core::{PipelineConfig, RunCtl, Session};
use palo::ir::{DType, LoopNest, NestBuilder};
use std::fmt::Write as _;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/artifact_bytes.txt");

/// The fixed nest: an 8×8×8 f32 matmul (small, classifies Temporal).
fn fixed_nest() -> LoopNest {
    let mut b = NestBuilder::new("golden", DType::F32);
    let i = b.var("i", 8);
    let j = b.var("j", 8);
    let k = b.var("k", 8);
    let a = b.array("A", &[8, 8]);
    let bm = b.array("B", &[8, 8]);
    let c = b.array("C", &[8, 8]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid nest")
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// One line per artifact: `<pass> <framed bytes as hex>` — the exact
/// bytes the disk tier stores.
fn render_artifact_bytes() -> String {
    let session =
        Session::new(&palo::arch::presets::intel_i7_6700(), PipelineConfig::default())
            .expect("session must open");
    let nest = fixed_nest();
    let ctl = RunCtl::new();

    let mut out = String::new();
    let mut pin = |pass: &str, version: u32, payload: Vec<u8>| {
        let framed = frame::encode_frame(pass, version, &payload);
        writeln!(out, "{pass} {}", hex(&framed)).expect("write to String cannot fail");
    };

    let classify = session.execute(&ClassifyPass, &ctl, &&nest).expect("classify");
    pin("classify", ClassifyPass.version(), classify.encode_to_vec());

    let degrade = session.execute(&DegradePass, &ctl, &(&nest, None)).expect("degrade");
    pin("degrade", DegradePass.version(), degrade.encode_to_vec());

    let schedule = degrade.ladder.first().expect("ladder is never empty").1.clone();
    let lower = session.execute(&LowerPass, &ctl, &(&nest, &schedule)).expect("lower");
    pin("lower", LowerPass.version(), lower.encode_to_vec());

    out
}

#[test]
fn artifact_wire_bytes_are_bit_identical_to_the_snapshot() {
    let got = render_artifact_bytes();
    if std::env::var_os("PALO_BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("bless: cannot write snapshot");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("missing snapshot; run with PALO_BLESS_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "artifact wire bytes diverged from the golden snapshot; an on-disk \
         cache written by the previous build would now misread or \
         invalidate — if the schema change is intentional, bump the pass \
         version, re-bless with PALO_BLESS_GOLDEN=1 and review the diff"
    );
}

/// The frame header itself is pinned separately so a framing change
/// cannot hide behind a payload change.
#[test]
fn frame_header_layout_is_pinned() {
    let framed = frame::encode_frame("p", 3, b"xyz");
    assert_eq!(&framed[..8], b"PALOART\0", "magic");
    assert_eq!(&framed[8..12], &1u32.to_le_bytes(), "format version");
    let decoded = frame::decode_frame(&framed).expect("round-trip");
    assert_eq!((decoded.pass, decoded.pass_version, decoded.payload), ("p", 3, &b"xyz"[..]));
}
