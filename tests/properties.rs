//! Property-based tests over the core invariants:
//!
//! * any legal schedule of a random nest computes the reference result;
//! * the fault-tolerant pipeline never panics on arbitrary (often
//!   illegal) schedules and always degrades to an executable schedule
//!   that is bit-identical to the naive interpreter;
//! * Algorithm 1's bound is safe: the emulated footprint it admits never
//!   conflicts (re-checked against an actual set-mapping replay);
//! * the cache simulator never hallucinates hits (occupancy bounds) and
//!   more associativity never hurts a linear replay.

use palo::arch::presets;
use palo::cachesim::{AccessKind, Hierarchy};
use palo::core::{Pipeline, PipelineConfig};
use palo::exec::{run, run_reference, Buffers};
use palo::ir::{DType, LoopNest, NestBuilder};
use palo::sched::Schedule;
use proptest::prelude::*;

/// A random 3-deep nest: C[i][j] += A[i][k] * B[k][j] with random extents.
fn matmul_nest(ni: usize, nj: usize, nk: usize) -> LoopNest {
    let mut b = NestBuilder::new("pmm", DType::F32);
    let i = b.var("i", ni);
    let j = b.var("j", nj);
    let k = b.var("k", nk);
    let a = b.array("A", &[ni, nk]);
    let bm = b.array("B", &[nk, nj]);
    let c = b.array("C", &[ni, nj]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid nest")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_tiling_is_semantics_preserving(
        ni in 1usize..12, nj in 1usize..12, nk in 1usize..12,
        ti in 1usize..12, tj in 1usize..12, tk in 1usize..12,
        order_pick in 0usize..6,
    ) {
        let nest = matmul_nest(ni, nj, nk);
        let mut s = Schedule::new();
        s.split("i", "io", "ii", ti.min(ni))
            .split("j", "jo", "ji", tj.min(nj))
            .split("k", "ko", "ki", tk.min(nk));
        let inner = [
            ["ii", "ki", "ji"], ["ii", "ji", "ki"], ["ki", "ii", "ji"],
            ["ki", "ji", "ii"], ["ji", "ii", "ki"], ["ji", "ki", "ii"],
        ][order_pick];
        s.reorder(&["io", "ko", "jo", inner[0], inner[1], inner[2]]);
        let lowered = s.lower(&nest).expect("legal schedule");

        let mut expect = Buffers::for_nest(&nest, 3);
        let mut got = expect.clone();
        run_reference(&nest, &mut expect).expect("reference run succeeds");
        run(&nest, &lowered, &mut got).expect("schedule run succeeds");
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn random_fuse_and_parallel_preserve_semantics(
        ni in 2usize..10, nj in 2usize..10,
        ti in 1usize..10, tj in 1usize..10,
    ) {
        let mut b = NestBuilder::new("pcopy", DType::F32);
        let i = b.var("i", ni);
        let j = b.var("j", nj);
        let src = b.array("src", &[ni, nj]);
        let dst = b.array("dst", &[ni, nj]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        let nest = b.build().expect("valid nest");

        let mut s = Schedule::new();
        s.split("i", "io", "ii", ti.min(ni))
            .split("j", "jo", "ji", tj.min(nj))
            .reorder(&["io", "jo", "ii", "ji"])
            .fuse("io", "jo", "f")
            .parallel("f");
        let lowered = s.lower(&nest).expect("legal schedule");
        let mut expect = Buffers::for_nest(&nest, 5);
        let mut got = expect.clone();
        run_reference(&nest, &mut expect).expect("reference run succeeds");
        run(&nest, &lowered, &mut got).expect("schedule run succeeds");
        prop_assert_eq!(expect, got);
    }

    /// Random nests pushed through `Pipeline::run_schedule` with random
    /// directive soups — unknown loop names, zero split factors, absurd
    /// vector lane counts, double fusions. The pipeline must never
    /// panic, must always hand back an executable schedule (degrading as
    /// far as the naive nest if needed), and the result must stay
    /// bit-identical to the reference interpreter.
    #[test]
    fn pipeline_degrades_arbitrary_schedules_to_executable_ones(
        ni in 1usize..8, nj in 1usize..8, nk in 1usize..8,
        ops in proptest::collection::vec((0usize..5, 0usize..4, 0usize..9), 0..6),
    ) {
        let nest = matmul_nest(ni, nj, nk);
        // "z" never names a loop, so many sampled schedules are illegal.
        let names = ["i", "j", "k", "z"];
        let mut s = Schedule::new();
        for &(op, which, amt) in &ops {
            let v = names[which];
            match op {
                0 => { s.split(v, &format!("{v}o"), &format!("{v}i"), amt); }
                1 => { s.reorder(&[names[(which + 1) % 4], v]); }
                2 => { s.vectorize(v, amt); }
                3 => { s.parallel(v); }
                _ => { s.fuse(v, names[(which + 1) % 4], "f"); }
            }
        }
        let config = PipelineConfig { simulate: false, ..PipelineConfig::default() };
        let out = Pipeline::with_config(&presets::repro::intel_i7_6700(), config)
            .run_schedule(&nest, &s)
            .expect("the ladder always bottoms out at an executable schedule");

        let mut expect = Buffers::for_nest(&nest, 11);
        let mut got = expect.clone();
        run_reference(&nest, &mut expect).expect("reference run succeeds");
        run(&nest, &out.lowered, &mut got).expect("accepted schedule executes");
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn emu_bound_is_safe(
        row_len in 1usize..512,
        stride_lines in 1usize..256,
        threads in 1usize..3,
    ) {
        // Replay the footprint Algorithm 1 admits into a plain set-mapping
        // count and check no set exceeds the effective associativity.
        let arch = presets::intel_i7_5930k();
        let level = arch.l1();
        let dts = 4usize;
        let lc = level.line_size / dts;
        let row_stride = stride_lines * lc + lc; // avoid degenerate 0
        let bound = palo::core::emu(&palo::core::EmuParams {
            level,
            dts,
            row_len,
            row_stride,
            threads,
            addr: 0,
            l2_pref: 0,
            l2_max_pref: 0,
            for_l2: false,
            inflate_lines: 1,
            halve_l2_sets: true,
            cap: 1 << 12,
        });
        prop_assert!(bound >= 1);

        // Count lines per set for `bound` rows of (row_len + one
        // prefetched line), exactly as the algorithm fetches them. Any
        // overflow would mean the bound admitted an interference miss.
        // (bound == 1 is always admitted by construction, so skip it.)
        if bound > 1 {
            let nsets = level.num_sets();
            let eff_ways = (level.associativity / threads).max(1);
            let lines_per_row = (row_len + lc).max(2 * lc).div_ceil(lc);
            let mut counts = vec![0usize; nsets];
            for r in 0..bound {
                let start = (r * row_stride) / lc;
                for i in 0..lines_per_row {
                    let set = (start + i) % nsets;
                    counts[set] += 1;
                    prop_assert!(
                        counts[set] <= eff_ways,
                        "bound {} admitted overflow at set {} (row {})",
                        bound, set, r
                    );
                }
            }
        }
    }

    #[test]
    fn simulator_occupancy_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let arch = presets::intel_i7_6700();
        let mut h = Hierarchy::from_architecture(&arch);
        for &a in &addrs {
            h.access(a * 8, AccessKind::Load);
        }
        let s = h.stats();
        // every access either hits somewhere or goes to memory
        let served: u64 = s.levels.iter().map(|l| l.demand_hits).sum::<u64>()
            + s.mem_demand_fills;
        prop_assert_eq!(served, addrs.len() as u64);
    }

    #[test]
    fn linear_stream_hits_after_first_touch(start in 0u64..4096) {
        let arch = presets::intel_i7_6700();
        let mut h = Hierarchy::from_architecture(&arch);
        let base = start * 64;
        h.access_range(base, 4096, AccessKind::Load);
        h.reset_stats();
        h.access_range(base, 4096, AccessKind::Load);
        // 4 KiB fits comfortably in L1: second pass must be all L1 hits.
        prop_assert_eq!(h.stats().levels[0].demand_misses, 0);
    }
}
