//! Differential gate for the run-compressed replay engine.
//!
//! The cache hierarchy's batched [`AccessRun`] path and the trace
//! walker's steady-state cycle skipping are *performance* features: by
//! contract they must be bit-identical to the scalar per-line reference
//! path on every statistic the simulator reports. These tests drive both
//! engines over the full evaluation suite (every benchmark nest, both the
//! program-order schedule and the optimizer's proposed schedule) and over
//! proptest-sampled random affine nests, on all six platform presets
//! (Table 3 plus the prefetcher-zoo trio), and demand equal
//! [`HierarchyStats`]. A dedicated sweep additionally pins the contract
//! per [`Prefetcher`] implementation: every `PrefetcherConfig` variant is
//! installed at both L1 and L2 and replayed through both engines.
//!
//! [`AccessRun`]: palo::cachesim::AccessRun
//! [`HierarchyStats`]: palo::cachesim::HierarchyStats
//! [`Prefetcher`]: palo::cachesim::Prefetcher

use palo::arch::{presets, Architecture, PrefetcherConfig};
use palo::core::Optimizer;
use palo::exec::{estimate_time_with, TraceOptions};
use palo::ir::{DType, LoopNest, NestBuilder};
use palo::sched::Schedule;
use palo::suite::Benchmark;
use proptest::prelude::*;

fn platforms() -> Vec<Architecture> {
    let mut all =
        vec![presets::intel_i7_5930k(), presets::intel_i7_6700(), presets::arm_cortex_a15()];
    all.extend(presets::zoo());
    all
}

/// One architecture per `PrefetcherConfig` variant, installed at both L1
/// and L2 of the i7-6700 geometry so each [`palo::cachesim::Prefetcher`]
/// implementation (and each legacy placement mapping) gets exercised by
/// the differential gate.
fn strategy_zoo() -> Vec<(&'static str, Architecture)> {
    let variants: [(&'static str, PrefetcherConfig); 6] = [
        ("none", PrefetcherConfig::None),
        ("next-line", PrefetcherConfig::NextLine),
        ("adjacent-pair", PrefetcherConfig::AdjacentPair),
        ("stride", PrefetcherConfig::Stride { degree: 2, max_distance: 20 }),
        (
            "confident-stride",
            PrefetcherConfig::ConfidentStride {
                degree: 2,
                max_distance: 12,
                min_confidence: 3,
            },
        ),
        ("stream", PrefetcherConfig::Stream { degree: 4, max_distance: 16, confirm: 2 }),
    ];
    variants
        .into_iter()
        .map(|(name, pf)| {
            let mut arch = presets::intel_i7_6700();
            arch.caches[0].prefetcher = pf;
            arch.caches[1].prefetcher = pf;
            arch.name = format!("6700/{name}");
            (name, arch)
        })
        .collect()
}

/// Traces `schedule` over `nest` through both engines and demands
/// bit-identical simulator statistics. Schedules that do not lower are
/// skipped (the proptest sampler produces some illegal ones).
fn assert_engines_agree(nest: &LoopNest, schedule: &Schedule, arch: &Architecture) {
    let Ok(lowered) = schedule.lower(nest) else { return };
    let compressed = TraceOptions { run_compressed: true, ..TraceOptions::default() };
    let scalar = TraceOptions { run_compressed: false, ..TraceOptions::default() };
    let fast = estimate_time_with(nest, &lowered, arch, &compressed).unwrap_or_else(|e| {
        panic!("{} on {}: compressed trace failed: {e}", nest.name(), arch.name)
    });
    let slow = estimate_time_with(nest, &lowered, arch, &scalar).unwrap_or_else(|e| {
        panic!("{} on {}: scalar trace failed: {e}", nest.name(), arch.name)
    });
    assert_eq!(
        fast.stats,
        slow.stats,
        "run-compressed and scalar statistics diverge for {} on {}",
        nest.name(),
        arch.name
    );
    assert_eq!(fast.ms.to_bits(), slow.ms.to_bits(), "{} on {}", nest.name(), arch.name);
}

/// Every suite nest × every platform, program-order and optimized: the
/// two replay engines must agree counter-for-counter.
#[test]
fn suite_nests_compressed_equals_scalar_on_all_platforms() {
    let mut checked = 0usize;
    for arch in &platforms() {
        for b in Benchmark::all() {
            let nests = b.build(16).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            for nest in &nests {
                assert_engines_agree(nest, &Schedule::new(), arch);
                let decision = Optimizer::new(arch)
                    .try_optimize(nest)
                    .unwrap_or_else(|e| panic!("{}: {e}", nest.name()));
                assert_engines_agree(nest, decision.schedule(), arch);
                checked += 1;
            }
        }
    }
    // 12 benchmarks, threemm contributing three nests → 14 per platform,
    // on the three Table-3 presets plus the three zoo presets.
    assert_eq!(checked, 6 * 14, "suite shape changed; update the gate");
}

/// Every `PrefetcherConfig` variant at both L1 and L2: the run-compressed
/// engine must stay bit-identical to the scalar reference for every
/// [`palo::cachesim::Prefetcher`] implementation, including the
/// conservative no-skip fallbacks.
#[test]
fn every_prefetcher_strategy_compressed_equals_scalar() {
    for (name, arch) in &strategy_zoo() {
        for b in Benchmark::all() {
            let nests = b.build(16).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            for nest in &nests {
                assert_engines_agree(nest, &Schedule::new(), arch);
                let decision = Optimizer::new(arch)
                    .try_optimize(nest)
                    .unwrap_or_else(|e| panic!("{} ({name}): {e}", nest.name()));
                assert_engines_agree(nest, decision.schedule(), arch);
            }
        }
    }
}

/// Replaying the same trace twice through the same engine must produce
/// the same bits, for every strategy and both engines — no hidden global
/// state in any prefetcher implementation.
#[test]
fn every_prefetcher_strategy_replays_deterministically() {
    let nest = matmul_nest(48, 48, 48);
    let schedule = Schedule::new();
    for (name, arch) in &strategy_zoo() {
        let lowered = schedule.lower(&nest).expect("program order lowers");
        for run_compressed in [false, true] {
            let opts = TraceOptions { run_compressed, ..TraceOptions::default() };
            let a = estimate_time_with(&nest, &lowered, arch, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let b = estimate_time_with(&nest, &lowered, arch, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(a.stats, b.stats, "{name} compressed={run_compressed}");
            assert_eq!(a.ms.to_bits(), b.ms.to_bits(), "{name} compressed={run_compressed}");
        }
    }
}

fn matmul_nest(ni: usize, nj: usize, nk: usize) -> LoopNest {
    let mut b = NestBuilder::new("rc_mm", DType::F32);
    let i = b.var("i", ni);
    let j = b.var("j", nj);
    let k = b.var("k", nk);
    let a = b.array("A", &[ni, nk]);
    let bm = b.array("B", &[nk, nj]);
    let c = b.array("C", &[ni, nj]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid nest")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random affine nests under random (often tail-producing) tilings,
    /// orders and vector widths: compressed == scalar on every platform.
    #[test]
    fn random_affine_nests_compressed_equals_scalar(
        ni in 1usize..24, nj in 1usize..24, nk in 1usize..24,
        ti in 1usize..7, tj in 1usize..7,
        order_pick in 0usize..4,
        lanes in 1usize..9,
    ) {
        let nest = matmul_nest(ni, nj, nk);
        let mut s = Schedule::new();
        // Non-dividing factors exercise the guarded-tail fallback.
        s.split("i", "io", "ii", ti.min(ni)).split("j", "jo", "ji", tj.min(nj));
        match order_pick {
            0 => { s.reorder(&["io", "jo", "k", "ii", "ji"]); }
            1 => { s.reorder(&["io", "jo", "ii", "k", "ji"]); }
            // Strided-innermost orders: runs with non-unit line strides.
            2 => { s.reorder(&["io", "jo", "ji", "k", "ii"]); }
            _ => { s.reorder(&["k", "io", "jo", "ii", "ji"]); }
        }
        if lanes > 1 {
            s.vectorize("ji", lanes);
        }
        for arch in &platforms() {
            assert_engines_agree(&nest, &s, arch);
        }
    }

    /// Strided streaming copies (row-major walk of a column-major array
    /// and vice versa) — the patterns the cycle skipper locks onto.
    #[test]
    fn random_strided_copies_compressed_equals_scalar(
        n in 8usize..64,
        transposed_pick in 0usize..2,
        par_pick in 0usize..2,
    ) {
        let (transposed, par) = (transposed_pick == 1, par_pick == 1);
        let mut b = NestBuilder::new("rc_copy", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let src = b.array("src", &[n, n]);
        let dst = b.array("dst", &[n, n]);
        let ld = if transposed { b.load(src, &[j, i]) } else { b.load(src, &[i, j]) };
        b.store(dst, &[i, j], ld);
        let nest = b.build().expect("valid nest");
        let mut s = Schedule::new();
        if par {
            s.parallel("i");
        }
        for arch in &platforms() {
            assert_engines_agree(&nest, &s, arch);
        }
    }
}
