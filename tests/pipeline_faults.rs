//! Fault-injection tests: every rung of the pipeline's degradation
//! ladder must be reachable, every guard must fire, and every failure
//! must be observable in the report.

use palo::arch::presets;
use palo::core::{FaultPlan, PaloError, Pipeline, PipelineConfig, ResourceBudget, Rung};
use palo::exec::run_reference;
use palo::ir::{DType, LoopNest, NestBuilder};
use std::time::Duration;

/// A matmul small enough to semantically validate every ladder rung but
/// rich enough that the optimizer proposes a schedule with execution
/// hints (so the stripped rung differs from the proposed one).
fn matmul(n: usize) -> LoopNest {
    let mut b = NestBuilder::new("matmul", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().unwrap()
}

fn pipeline_with_faults(faults: FaultPlan) -> Pipeline {
    Pipeline::with_config(
        &presets::repro::intel_i7_6700(),
        PipelineConfig { faults, ..PipelineConfig::default() },
    )
}

#[test]
fn no_faults_reaches_proposed() {
    let out = pipeline_with_faults(FaultPlan::default()).run(&matmul(12)).unwrap();
    assert_eq!(out.report.rung, Rung::Proposed);
    assert!(out.report.failures.is_empty());
    assert!(!out.report.fallback_fired());
}

#[test]
fn one_lowering_fault_degrades_to_stripped() {
    let faults = FaultPlan { fail_first_lowerings: 1, ..FaultPlan::default() };
    let out = pipeline_with_faults(faults).run(&matmul(12)).unwrap();
    assert_eq!(out.report.rung, Rung::Stripped);
    assert_eq!(out.report.failures.len(), 1);
    assert_eq!(out.report.failures[0].rung, Rung::Proposed);
    assert_eq!(out.report.failures[0].error, PaloError::FaultInjected { site: "lowering" });
    // The stripped schedule keeps the structure but drops the hints.
    assert!(!out.schedule.uses_nt_stores());
    assert_eq!(out.lowered.vector_lanes(), 1);
    assert_eq!(out.lowered.parallel_loop(), None);
}

#[test]
fn two_lowering_faults_degrade_to_baseline() {
    let faults = FaultPlan { fail_first_lowerings: 2, ..FaultPlan::default() };
    let out = pipeline_with_faults(faults).run(&matmul(12)).unwrap();
    assert_eq!(out.report.rung, Rung::Baseline);
    let rungs: Vec<Rung> = out.report.failures.iter().map(|f| f.rung).collect();
    assert_eq!(rungs, vec![Rung::Proposed, Rung::Stripped]);
}

#[test]
fn three_lowering_faults_degrade_to_naive() {
    let faults = FaultPlan { fail_first_lowerings: 3, ..FaultPlan::default() };
    let out = pipeline_with_faults(faults).run(&matmul(12)).unwrap();
    assert_eq!(out.report.rung, Rung::Naive);
    assert_eq!(out.report.failures.len(), 3);
    // The naive rung lowers the program-order nest.
    assert_eq!(out.schedule.directives().len(), 0);
}

#[test]
fn exhausted_ladder_is_an_error() {
    let faults = FaultPlan { fail_first_lowerings: 4, ..FaultPlan::default() };
    let err = pipeline_with_faults(faults).run(&matmul(12)).unwrap_err();
    assert_eq!(err, PaloError::FaultInjected { site: "lowering" });
}

#[test]
fn optimizer_panic_is_caught_and_degrades_to_baseline() {
    let faults = FaultPlan { panic_in_optimizer: true, ..FaultPlan::default() };
    let out = pipeline_with_faults(faults).run(&matmul(12)).unwrap();
    // No proposed schedule exists, so the ladder starts at baseline.
    assert_eq!(out.report.rung, Rung::Baseline);
    assert!(out.decision.is_none());
    assert!(matches!(
        out.report.failures[0].error,
        PaloError::Panicked { context: "optimizer", .. }
    ));
    assert!(out.report.estimate.is_some(), "simulation still runs on the fallback");
}

#[test]
fn trace_overflow_fault_records_budget_failure_without_changing_rung() {
    let faults = FaultPlan { trace_overflow: true, ..FaultPlan::default() };
    let out = pipeline_with_faults(faults).run(&matmul(12)).unwrap();
    assert_eq!(out.report.rung, Rung::Proposed, "simulation failures must not demote the rung");
    assert!(out.report.estimate.is_none());
    assert!(out
        .report
        .failures
        .iter()
        .any(|f| matches!(f.error, PaloError::BudgetExceeded { what: "trace lines", .. })));
}

#[test]
fn trace_line_budget_guard_fires() {
    let config = PipelineConfig {
        budget: ResourceBudget { max_trace_lines: Some(10), deadline: None },
        ..PipelineConfig::default()
    };
    let out = Pipeline::with_config(&presets::repro::intel_i7_6700(), config)
        .run(&matmul(64))
        .unwrap();
    assert!(out.report.estimate.is_none());
    assert!(out
        .report
        .failures
        .iter()
        .any(|f| f.error == PaloError::BudgetExceeded { what: "trace lines", limit: 10 }));
}

#[test]
fn zero_deadline_guard_fires() {
    let config = PipelineConfig {
        budget: ResourceBudget { max_trace_lines: None, deadline: Some(Duration::ZERO) },
        ..PipelineConfig::default()
    };
    let out = Pipeline::with_config(&presets::repro::intel_i7_6700(), config)
        .run(&matmul(64))
        .unwrap();
    assert!(out.report.estimate.is_none());
    assert!(out
        .report
        .failures
        .iter()
        .any(|f| matches!(f.error, PaloError::DeadlineExceeded { .. })));
}

#[test]
fn generous_budgets_change_nothing() {
    let config = PipelineConfig {
        budget: ResourceBudget {
            max_trace_lines: Some(u64::MAX),
            deadline: Some(Duration::from_secs(3600)),
        },
        ..PipelineConfig::default()
    };
    let arch = presets::repro::intel_i7_6700();
    let nest = matmul(24);
    let plain = Pipeline::new(&arch).run(&nest).unwrap();
    let guarded = Pipeline::with_config(&arch, config).run(&nest).unwrap();
    assert_eq!(plain.report.rung, guarded.report.rung);
    assert_eq!(plain.schedule, guarded.schedule);
    let (p, g) = (plain.report.estimate.unwrap(), guarded.report.estimate.unwrap());
    assert_eq!(p.ms, g.ms);
}

#[test]
fn degraded_schedule_still_computes_the_reference_result() {
    // Even on the naive rung the outcome must be executable and correct.
    let faults = FaultPlan { fail_first_lowerings: 3, ..FaultPlan::default() };
    let nest = matmul(8);
    let out = pipeline_with_faults(faults).run(&nest).unwrap();
    let mut want = palo::exec::Buffers::for_nest(&nest, 7);
    let mut got = want.clone();
    run_reference(&nest, &mut want).unwrap();
    palo::exec::run(&nest, &out.lowered, &mut got).unwrap();
    assert_eq!(want, got);
}

#[test]
fn fault_plan_armed_reflects_any_site() {
    assert!(!FaultPlan::default().armed());
    assert!(FaultPlan { trace_overflow: true, ..FaultPlan::default() }.armed());
    assert!(FaultPlan { fail_first_lowerings: 1, ..FaultPlan::default() }.armed());
    assert!(FaultPlan { panic_in_optimizer: true, ..FaultPlan::default() }.armed());
}
