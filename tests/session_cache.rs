//! Integration tests for the session's content-addressed artifact cache
//! and the concurrent batch driver:
//!
//! * **fingerprint sensitivity** — a pass-request key must *miss* under
//!   any change to the nest shape, loop bounds, element type, an
//!   architecture parameter, a model-relevant config switch, or the pass
//!   version, and must *hit* (same key) when everything is identical;
//! * **warm runs replay cold bits** — a cache-served run reproduces the
//!   cold run's decision, rung, schedule and estimate bit-for-bit;
//! * **batch determinism** — the batch driver reports the same decisions
//!   and rungs at every worker count, cold or warm;
//! * **deadline-adjacent caching** — a deadline-bounded run can never
//!   poison the cache: its simulate stage stays uncacheable, and an
//!   identical follow-up with a generous deadline recomputes and returns
//!   the full-fidelity answer bit-identical to a cold run.

use palo::arch::{presets, Architecture};
use palo::core::{
    Fingerprint, FingerprintBuilder, ModelKind, OptimizerConfig, PipelineConfig, Session,
};
use palo::ir::{DType, LoopNest, NestBuilder};
use proptest::prelude::*;

fn matmul(name: &str, ni: usize, nj: usize, nk: usize, dtype: DType) -> LoopNest {
    let mut b = NestBuilder::new(name, dtype);
    let i = b.var("i", ni);
    let j = b.var("j", nj);
    let k = b.var("k", nk);
    let a = b.array("A", &[ni, nk]);
    let bm = b.array("B", &[nk, nj]);
    let c = b.array("C", &[ni, nj]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid nest")
}

fn copy2d(name: &str, n: usize) -> LoopNest {
    let mut b = NestBuilder::new(name, DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let src = b.array("S", &[n, n]);
    let dst = b.array("D", &[n, n]);
    b.store(dst, &[i, j], b.load(src, &[i, j]));
    b.build().expect("valid nest")
}

/// The cache key an optimize-shaped request would get: pass identity,
/// nest canonical form, architecture, model-relevant config.
fn key(
    version: u32,
    nest: &LoopNest,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> Fingerprint {
    FingerprintBuilder::pass("optimize", version)
        .nest(nest)
        .arch(arch)
        .optimizer_config(config)
        .finish()
}

const DTYPES: [DType; 4] = [DType::F32, DType::F64, DType::I32, DType::I64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical `(nest, arch, config, version)` always collide on one
    /// key — regardless of kernel name — and every single-determinant
    /// change produces a distinct key.
    #[test]
    fn fingerprint_misses_on_any_determinant_change(
        ni in 1usize..24, nj in 1usize..24, nk in 1usize..24,
        dtype_pick in 0usize..4,
        nti in any::<bool>(),
        discount in any::<bool>(),
    ) {
        let dtype = DTYPES[dtype_pick];
        let arch = presets::intel_i7_5930k();
        let config = OptimizerConfig {
            enable_nti: nti,
            prefetch_discount: discount,
            ..OptimizerConfig::default()
        };
        let nest = matmul("mm", ni, nj, nk, dtype);
        let base = key(1, &nest, &arch, &config);

        // Hit: a rebuild of the same request, even under another kernel
        // name, lands on the same key.
        prop_assert_eq!(base, key(1, &matmul("other_name", ni, nj, nk, dtype), &arch, &config));

        // Miss: shape (loop added), bounds, dtype.
        let mut deeper = NestBuilder::new("mm", dtype);
        let (i, j, k, l) =
            (deeper.var("i", ni), deeper.var("j", nj), deeper.var("k", nk), deeper.var("l", 2));
        let a = deeper.array("A", &[ni, nk]);
        let bm = deeper.array("B", &[nk, nj]);
        let c = deeper.array("C", &[ni, nj, 2]);
        deeper.accumulate(c, &[i, j, l], deeper.load(a, &[i, k]) * deeper.load(bm, &[k, j]));
        let deeper = deeper.build().expect("valid nest");
        prop_assert_ne!(base, key(1, &deeper, &arch, &config));
        prop_assert_ne!(base, key(1, &matmul("mm", ni + 1, nj, nk, dtype), &arch, &config));
        prop_assert_ne!(base, key(1, &matmul("mm", ni, nj, nk + 1, dtype), &arch, &config));
        let other_dtype = DTYPES[(dtype_pick + 1) % 4];
        prop_assert_ne!(base, key(1, &matmul("mm", ni, nj, nk, other_dtype), &arch, &config));

        // Miss: architecture parameters (cache geometry, core count,
        // prefetcher degree).
        let mut bigger_l1 = arch.clone();
        bigger_l1.caches[0].size_bytes *= 2;
        prop_assert_ne!(base, key(1, &nest, &bigger_l1, &config));
        let mut more_cores = arch.clone();
        more_cores.cores += 1;
        prop_assert_ne!(base, key(1, &nest, &more_cores, &config));

        // Miss: any model-relevant config switch.
        let mut flipped = config.clone();
        flipped.enable_nti = !flipped.enable_nti;
        prop_assert_ne!(base, key(1, &nest, &arch, &flipped));
        let mut other_model = config.clone();
        other_model.model = if config.model == ModelKind::Paper {
            ModelKind::Tss
        } else {
            ModelKind::Paper
        };
        prop_assert_ne!(base, key(1, &nest, &arch, &other_model));

        // Miss: a pass version bump (the invalidation mechanism) or a
        // different pass reusing the same inputs.
        prop_assert_ne!(base, key(2, &nest, &arch, &config));
        prop_assert_ne!(
            base,
            FingerprintBuilder::pass("classify", 1)
                .nest(&nest)
                .arch(&arch)
                .optimizer_config(&config)
                .finish()
        );
    }

    /// A warm run is served from the cache (zero misses) and replays the
    /// cold run bit-for-bit.
    #[test]
    fn warm_session_runs_replay_cold_bits(
        ni in 2usize..14, nj in 2usize..14, nk in 2usize..14,
    ) {
        let nest = matmul("mm", ni, nj, nk, DType::F32);
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).expect("session");
        let cold = session.run(&nest).expect("cold run");
        prop_assert!(cold.report.cache.misses > 0);
        let warm = session.run(&nest).expect("warm run");
        prop_assert_eq!(warm.report.cache.misses, 0, "warm run recomputed something");
        prop_assert!(warm.report.cache.hits > 0);

        prop_assert_eq!(&cold.decision, &warm.decision);
        prop_assert_eq!(cold.report.rung, warm.report.rung);
        prop_assert_eq!(cold.schedule.to_string(), warm.schedule.to_string());
        let bits = |o: &palo::core::PipelineOutcome| {
            o.report.estimate.as_ref().map(|e| e.ms.to_bits())
        };
        prop_assert_eq!(bits(&cold), bits(&warm));
    }
}

/// Every worker count, cold or warm, produces the same decisions, rungs
/// and estimates over a mixed batch (temporal, spatial-free copy,
/// duplicate kernels).
#[test]
fn batch_driver_is_deterministic_across_worker_counts() {
    let nests = vec![
        matmul("mm20", 20, 20, 20, DType::F32),
        matmul("mm12", 12, 16, 8, DType::F64),
        copy2d("copy", 64),
        matmul("mm20_twin", 20, 20, 20, DType::F32),
        copy2d("copy_twin", 64),
    ];

    let fingerprint_of =
        |report: &palo::core::BatchReport| -> Vec<(String, String, Option<u64>)> {
            report
                .items
                .iter()
                .map(|item| {
                    let out = item.outcome.as_ref().expect("batch item succeeds");
                    (
                        format!("{}", out.report.rung),
                        format!("{:?}|{}", out.decision, out.schedule),
                        out.report.estimate.as_ref().map(|e| e.ms.to_bits()),
                    )
                })
                .collect()
        };

    let mut reference: Option<Vec<(String, String, Option<u64>)>> = None;
    for workers in [1usize, 2, 5] {
        let session = Session::new(&presets::intel_i7_5930k(), PipelineConfig::default())
            .expect("session");
        let cold = session.batch().with_threads(workers).run(&nests);
        assert_eq!(cold.failed(), 0, "cold batch at {workers} workers failed");
        assert!(cold.cache.hits > 0, "duplicate kernels must hit even cold: {:?}", cold.cache);
        let warm = session.batch().with_threads(workers).run(&nests);
        assert_eq!(warm.failed(), 0, "warm batch at {workers} workers failed");
        assert_eq!(warm.cache.misses, 0, "warm batch recomputed: {:?}", warm.cache);

        let cold_bits = fingerprint_of(&cold);
        assert_eq!(cold_bits, fingerprint_of(&warm), "warm != cold at {workers} workers");
        match &reference {
            None => reference = Some(cold_bits),
            Some(r) => assert_eq!(r, &cold_bits, "{workers} workers disagree with 1 worker"),
        }
    }
}

/// A request that hits its deadline must never poison the cache for the
/// requests that come after it: the deadline-bounded simulate stage is
/// uncacheable (bypassed), so an identical follow-up with a generous
/// deadline recomputes and returns the full-fidelity estimate
/// bit-identical to a cold, unconstrained run.
#[test]
fn deadline_hit_never_poisons_the_cache() {
    use palo::core::{PaloError, RunOverrides};
    use std::time::Duration;

    let nest = matmul("mm", 40, 40, 40, DType::F32);
    let arch = presets::intel_i7_6700();

    // Cold unconstrained reference from a fresh session.
    let reference = Session::new(&arch, PipelineConfig::default())
        .expect("session")
        .run(&nest)
        .expect("reference run");
    let ref_bits = reference.report.estimate.as_ref().expect("reference estimate").ms.to_bits();

    let session = Session::new(&arch, PipelineConfig::default()).expect("session");

    // 1. Deadline-hit run: the zero deadline aborts the trace walk. The
    //    abort is recorded (not silent), no estimate is produced, and
    //    the simulate request bypassed the cache.
    let tight = session
        .run_with(&nest, &RunOverrides { deadline: Some(Duration::ZERO), ..Default::default() })
        .expect("tight run");
    assert!(tight.report.estimate.is_none(), "zero deadline still produced an estimate");
    assert!(
        tight
            .report
            .failures
            .iter()
            .any(|f| matches!(f.error, PaloError::DeadlineExceeded { .. })),
        "deadline abort not recorded: {:?}",
        tight.report.failures
    );
    assert!(tight.report.cache.bypasses >= 1, "deadline simulate must bypass the cache");

    // 2. Identical follow-up, generous deadline: nothing poisoned — it
    //    recomputes (still bypassing: a deadline is in force) and the
    //    answer is bit-identical to the cold reference.
    let generous = session
        .run_with(
            &nest,
            &RunOverrides { deadline: Some(Duration::from_secs(3600)), ..Default::default() },
        )
        .expect("generous run");
    let gen = generous.report.estimate.as_ref().expect("generous estimate");
    assert_eq!(gen.ms.to_bits(), ref_bits, "deadline-adjacent run changed the estimate");
    assert_eq!(&generous.decision, &reference.decision);
    assert_eq!(generous.report.rung, reference.report.rung);
    assert!(generous.report.cache.bypasses >= 1, "deadline simulate must stay uncacheable");

    // 3. Unconstrained runs on the same warm session now cache the
    //    simulate artifact — and still agree bit-for-bit.
    let clean = session.run(&nest).expect("clean run");
    assert_eq!(clean.report.estimate.as_ref().expect("clean estimate").ms.to_bits(), ref_bits);
    let warm = session.run(&nest).expect("warm run");
    assert_eq!(
        warm.report.cache.misses, 0,
        "warm clean run recomputed: {:?}",
        warm.report.cache
    );
    assert_eq!(warm.report.estimate.as_ref().expect("warm estimate").ms.to_bits(), ref_bits);
}
