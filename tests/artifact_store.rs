//! Integration tests for the tiered persistent artifact store
//! (DESIGN.md §15), centered on its two contracts:
//!
//! * **bit-identity** — a decision replayed from the memory tier, from
//!   the disk tier (including a fresh "process" on a warm directory), or
//!   recomputed cold is bit-identical, under every eviction policy and
//!   any capacity; the store changes *what is cached*, never *what is
//!   decided*;
//! * **corruption safety** — truncated files, garbage bytes, wrong
//!   format versions and racing same-key writers can only ever produce a
//!   cache miss plus a recorded [`CacheStats`] anomaly — never an error
//!   and never a wrong decision.

use palo::arch::presets;
use palo::codec::frame;
use palo::core::store::{ArtifactStore, DiskStore, StoredArtifact};
use palo::core::{CacheConfig, PipelineConfig, PolicyKind, Session};
use palo::ir::{DType, Digest, LoopNest, NestBuilder};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn matmul(n: usize) -> LoopNest {
    let mut b = NestBuilder::new("matmul", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid nest")
}

fn transpose(n: usize) -> LoopNest {
    let mut b = NestBuilder::new("tp", DType::F64);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let src = b.array("S", &[n, n]);
    let dst = b.array("D", &[n, n]);
    let ld = b.load(src, &[j, i]);
    b.store(dst, &[i, j], ld);
    b.build().expect("valid nest")
}

fn workload() -> Vec<LoopNest> {
    vec![matmul(16), transpose(24), matmul(24), transpose(16)]
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("palo-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The run's observable outcome, down to the float bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunBits {
    rung: String,
    schedule: String,
    decision: Option<String>,
    predicted_cost_bits: Option<u64>,
    estimate_ms_bits: Option<u64>,
}

fn run_bits(session: &Session, nest: &LoopNest) -> RunBits {
    let out = session.run(nest).expect("the pipeline must never fail on these nests");
    RunBits {
        rung: out.report.rung.to_string(),
        schedule: out.schedule.to_string(),
        decision: out.decision.as_ref().map(|d| format!("{d:?}")),
        predicted_cost_bits: out.decision.as_ref().map(|d| d.predicted_cost.to_bits()),
        estimate_ms_bits: out.report.estimate.as_ref().map(|e| e.ms.to_bits()),
    }
}

fn run_all(session: &Session) -> Vec<RunBits> {
    workload().iter().map(|nest| run_bits(session, nest)).collect()
}

fn session_with(cache: CacheConfig) -> Session {
    let config = PipelineConfig { cache, ..PipelineConfig::default() };
    Session::new(&presets::intel_i7_6700(), config).expect("session must open")
}

/// Every artifact file under a cache directory.
fn art_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|shard| std::fs::read_dir(shard.path()).ok())
        .flat_map(|entries| entries.flatten())
        .map(|f| f.path())
        .filter(|p| p.extension().is_some_and(|e| e == "art"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_backend_and_policy_replays_the_cold_decision_bit_identically() {
    // The reference: a cold, memory-only session.
    let reference = run_all(&session_with(CacheConfig::default()));

    // Bounded memory tiers at a capacity tight enough to force
    // evictions, one session per eviction policy.
    for policy in PolicyKind::ALL {
        let config =
            CacheConfig { policy, capacity_entries: Some(2), ..CacheConfig::default() };
        let session = session_with(config);
        // Two sweeps: the second replays what survived eviction and
        // recomputes what did not — the answers must not move.
        assert_eq!(run_all(&session), reference, "{policy} first sweep diverged");
        assert_eq!(run_all(&session), reference, "{policy} warm sweep diverged");
        assert!(
            session.cache_stats().mem.evictions > 0,
            "capacity 2 must actually evict under {policy}"
        );
    }

    // A byte-bounded tier (evicts by size, not count).
    let by_bytes = CacheConfig { capacity_bytes: Some(2048), ..CacheConfig::default() };
    assert_eq!(run_all(&session_with(by_bytes)), reference, "byte-capped tier diverged");

    // The persistent store: a cold session writes through to disk, a
    // fresh session on the same directory replays from it.
    let root = tmp_dir("bit-identity");
    let persistent = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };
    assert_eq!(run_all(&session_with(persistent.clone())), reference, "disk cold diverged");

    let warm = session_with(persistent);
    assert_eq!(run_all(&warm), reference, "fresh session on a warm dir diverged");
    let s = warm.cache_stats();
    assert!(s.disk.hits > 0, "the warm session must actually read from disk: {s:?}");
    assert_eq!(s.anomalies, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_warm_directory_serves_a_fresh_session_with_a_high_hit_rate() {
    let root = tmp_dir("hit-rate");
    let config = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };

    let cold = session_with(config.clone());
    let cold_bits = run_all(&cold);
    drop(cold);

    let warm = session_with(config);
    let warm_bits = run_all(&warm);
    assert_eq!(cold_bits, warm_bits);
    let s = warm.cache_stats();
    assert_eq!(s.misses, 0, "a fully warm directory must not miss: {s:?}");
    assert!(s.hit_rate() >= 0.9, "hit rate {:.2} below the 90% floor", s.hit_rate());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_disk_entries_heal_as_anomalies_and_never_change_decisions() {
    let root = tmp_dir("corruption");
    let config = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };

    let cold = session_with(config.clone());
    let reference = run_all(&cold);
    drop(cold);

    // Vandalize every cached artifact, cycling through the three
    // corruption shapes the store must survive: truncation, garbage
    // bytes, and a wrong format version.
    let files = art_files(&root);
    assert!(!files.is_empty(), "the cold session must have persisted artifacts");
    for (i, path) in files.iter().enumerate() {
        let bytes = std::fs::read(path).expect("artifact must be readable");
        match i % 3 {
            0 => std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate"),
            1 => std::fs::write(path, b"not a frame at all").expect("garbage"),
            _ => {
                let mut b = bytes;
                b[8] ^= 0x5a; // first byte of the format-version word
                std::fs::write(path, &b).expect("version flip");
            }
        }
    }

    // A fresh session on the vandalized directory: every lookup heals
    // (miss + anomaly + recompute), no error surfaces, and the decisions
    // are the cold run's, bit for bit.
    let healed = session_with(config.clone());
    assert_eq!(run_all(&healed), reference, "corruption must cost recomputes, not answers");
    let s = healed.cache_stats();
    assert!(s.anomalies > 0, "healing must be recorded: {s:?}");
    drop(healed);

    // The store healed itself: the re-written artifacts serve a third
    // session clean.
    let clean = session_with(config);
    assert_eq!(run_all(&clean), reference);
    assert_eq!(clean.cache_stats().anomalies, 0, "healed entries must be valid again");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_same_key_writers_are_miss_or_hit_never_an_error() {
    let root = tmp_dir("races");
    let key = palo::core::Fingerprint(Digest(0xfeed_beef_cafe));
    let payload: Vec<u8> = (0..=255u8).collect();
    let bytes: Arc<[u8]> = frame::encode_frame("race", 1, &payload).into();

    // Many stores on one directory (stand-ins for separate processes),
    // many threads per store, all hammering one content-addressed key.
    let stores: Vec<Arc<DiskStore>> =
        (0..4).map(|_| Arc::new(DiskStore::open(&root).expect("open must succeed"))).collect();
    let mut handles = Vec::new();
    for store in &stores {
        for _ in 0..4 {
            let store = Arc::clone(store);
            let bytes = Arc::clone(&bytes);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    store.put(key, StoredArtifact { value: None, bytes: bytes.clone() });
                    if let Some(got) = store.get(key) {
                        // Anything served must be the one true encoding.
                        let f = frame::decode_frame(&got.bytes)
                            .expect("a served entry is always a complete frame");
                        assert_eq!(f.pass, "race");
                        assert_eq!(f.payload.len(), 256);
                    }
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("no writer or reader may panic");
    }

    // The dust settled: the entry is present, valid, and no writer
    // tripped the corruption detector.
    let survivor = DiskStore::open(&root).expect("open must succeed");
    let got = survivor.get(key).expect("the key must have landed");
    assert_eq!(frame::decode_frame(&got.bytes).expect("valid").payload, &payload[..]);
    for store in &stores {
        assert_eq!(store.anomalies(), 0, "racing identical writers is not corruption");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn an_unwritable_cache_directory_is_a_session_error_not_a_panic() {
    let file = std::env::temp_dir().join(format!("palo-store-it-file-{}", std::process::id()));
    std::fs::write(&file, b"occupied").expect("marker file");
    let config = PipelineConfig {
        cache: CacheConfig { dir: Some(file.join("sub")), ..CacheConfig::default() },
        ..PipelineConfig::default()
    };
    let err = match Session::new(&presets::intel_i7_6700(), config) {
        Ok(_) => panic!("an unopenable store must refuse the session"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("artifact store"), "the error must name the store: {err}");
    let _ = std::fs::remove_file(&file);
}
