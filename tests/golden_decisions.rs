//! Golden-decision snapshots of the paper model.
//!
//! Locks the optimizer's chosen schedule — tile sizes, inter/intra
//! permutation, parallel/vector/NT-store flags and the cost bits — for
//! all 12 suite kernels (3mm contributes its three stages) on the three
//! Table-3 platform presets. The snapshot was taken *before* the cost
//! model was extracted into `palo_core::model`; the refactor (and any
//! future one) must keep the paper model's decisions bit-identical.
//!
//! To regenerate after an *intentional* model change, bless the snapshot
//! and review the diff like source:
//!
//! ```text
//! PALO_BLESS_GOLDEN=1 cargo test --test golden_decisions
//! ```

use palo::arch::presets;
use palo::core::Optimizer;
use palo::suite::Benchmark;
use std::fmt::Write as _;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/decisions.txt");

/// The three platforms of the paper's Table 3, followed by the
/// prefetcher-zoo presets (AMD- and ARM-styled units plus the
/// prefetch-less control). The zoo rows pin the per-strategy coverage
/// routing: a model change that only affects one strategy's discount
/// shows up as a diff confined to that platform's block.
fn platforms() -> Vec<(&'static str, palo::arch::Architecture)> {
    vec![
        ("5930k", presets::intel_i7_5930k()),
        ("6700", presets::intel_i7_6700()),
        ("a15", presets::arm_cortex_a15()),
        ("zen2", presets::amd_zen2()),
        ("n1", presets::arm_neoverse_n1()),
        ("nopf", presets::intel_i7_6700_no_prefetch()),
    ]
}

/// One line per (nest, platform): everything the optimizer decided, with
/// the model cost as exact bits so float drift cannot hide.
fn render_decisions() -> String {
    let mut out = String::new();
    for (pname, arch) in platforms() {
        let optimizer = Optimizer::new(&arch);
        for b in Benchmark::all() {
            let nests = b.build_scaled().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            for (stage, nest) in nests.iter().enumerate() {
                let d = optimizer.optimize(nest);
                writeln!(
                    out,
                    "{}[{stage}] @ {pname}: class={:?} tile={:?} inter={:?} intra={:?} \
                     nti={} lanes={} par={:?} cost={:#018x}",
                    b.name(),
                    d.class,
                    d.tile,
                    d.inter_order,
                    d.intra_order,
                    d.use_nti,
                    d.vector_lanes,
                    d.parallel_var,
                    d.predicted_cost.to_bits(),
                )
                .expect("write to String cannot fail");
            }
        }
    }
    out
}

#[test]
fn paper_model_decisions_are_bit_identical_to_the_snapshot() {
    let got = render_decisions();
    if std::env::var_os("PALO_BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("bless: cannot write snapshot");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("missing snapshot; run with PALO_BLESS_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "paper-model decisions diverged from the golden snapshot; if the \
         change is intentional, re-bless with PALO_BLESS_GOLDEN=1 and \
         review the diff"
    );
}
