//! Chaos soak for the serving layer: hundreds of mixed-priority
//! requests — healthy, faulted, deadline-bound, oversized — thrown at a
//! deliberately small [`Server`] from several client threads at once.
//!
//! The harness asserts the robustness headline end to end:
//!
//! * **zero lost responses** — every submitted request produces exactly
//!   one response (typed rejections included), and the server's own
//!   terminal counters agree with the client's ledger;
//! * **zero panics / zero hangs** — no worker dies, and the whole soak
//!   completes under a watchdog budget;
//! * **determinism** — every fault-free request that succeeds reports a
//!   decision signature identical to a clean fresh-server reference for
//!   the same `(kernel, size)`, *whatever* fidelity it was shed to;
//! * **monotone, consistent shedding** — each response's shedding level
//!   is exactly the policy applied to the pressure it reports, and the
//!   fidelity served never exceeds what the ladder allows for its lane
//!   (except through the explicitly-flagged degraded retry);
//! * **overload is visible** — the small queue guarantees the soak
//!   actually exercises `queue_full` rejections and elevated shedding
//!   levels rather than silently absorbing the burst.
//!
//! The default soak is ~500 requests; set `PALO_SERVE_SOAK=1` for the
//! longer CI-gated run.

use palo::arch::presets;
use palo::core::{FaultPlan, PipelineConfig, Priority};
use palo::serve::{ErrorKind, Fidelity, Request, Response, ServeConfig, Server, ShedPolicy};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Deterministic request mix: no clocks, no global RNG state.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The kernel/size pool the soak draws from. Small sizes keep a single
/// request cheap; `3mm` is in the mix so multi-nest responses are
/// exercised too.
const POOL: [(&str, usize); 8] = [
    ("matmul", 16),
    ("matmul", 32),
    ("gemm", 16),
    ("trmm", 16),
    ("copy", 48),
    ("mask", 48),
    ("tp", 48),
    ("3mm", 12),
];

fn chaos_request(n: usize, rng: &mut Lcg) -> Request {
    let (kernel, size) = POOL[(rng.next() % POOL.len() as u64) as usize];
    let priority =
        if rng.next().is_multiple_of(3) { Priority::Interactive } else { Priority::Batch };
    // ~10% carry an armed fault plan cycling through every injection
    // site, including the plan that exhausts the whole ladder.
    let faults = if rng.next().is_multiple_of(10) {
        Some(match rng.next() % 4 {
            0 => FaultPlan { fail_first_lowerings: 1 + rng.next() % 3, ..FaultPlan::default() },
            1 => FaultPlan { fail_first_lowerings: 4, ..FaultPlan::default() },
            2 => FaultPlan { panic_in_optimizer: true, ..FaultPlan::default() },
            _ => FaultPlan { trace_overflow: true, ..FaultPlan::default() },
        })
    } else {
        None
    };
    // ~10% carry a deadline so tight it can expire while queued.
    let deadline = if rng.next().is_multiple_of(10) {
        Some(Duration::from_micros(rng.next() % 2 * 1500))
    } else {
        None
    };
    let fidelity =
        if rng.next().is_multiple_of(7) { Fidelity::Analytic } else { Fidelity::Full };
    Request {
        id: format!("q{n}"),
        kernel: kernel.to_string(),
        size: Some(size),
        priority,
        deadline,
        max_trace_lines: None,
        fidelity,
        faults,
    }
}

/// Clean full-fidelity decision signatures per pool entry, from a fresh
/// unstressed server (big queue, shedding disabled).
fn reference_signatures() -> HashMap<(String, usize), String> {
    let server = Server::start(
        &presets::intel_i7_6700(),
        ServeConfig {
            pipeline: PipelineConfig::default(),
            workers: Some(2),
            queue_capacity: POOL.len() * 2,
            shed: ShedPolicy { yellow: 2.0, red: 2.0 },
        },
    )
    .expect("reference server");

    let (tx, rx) = mpsc::channel::<Response>();
    for (i, (kernel, size)) in POOL.iter().enumerate() {
        let tx = tx.clone();
        server.submit(
            Request {
                id: format!("ref{i}"),
                kernel: kernel.to_string(),
                size: Some(*size),
                priority: Priority::Batch,
                deadline: None,
                max_trace_lines: None,
                fidelity: Fidelity::Full,
                faults: None,
            },
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
    }
    drop(tx);

    let mut map = HashMap::new();
    for r in rx.iter() {
        let ok = r.ok().unwrap_or_else(|| panic!("reference request failed: {r:?}"));
        let idx: usize = r.id.trim_start_matches("ref").parse().expect("ref id");
        let (kernel, size) = POOL[idx];
        map.insert((kernel.to_string(), size), ok.decision_signature());
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, POOL.len() as u64, "reference runs must all succeed");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(map.len(), POOL.len());
    map
}

#[test]
fn chaos_soak_never_loses_a_response_and_stays_deterministic() {
    let long = std::env::var("PALO_SERVE_SOAK").map(|v| v == "1").unwrap_or(false);
    let total: usize = if long { 2000 } else { 500 };
    let budget = Duration::from_secs(if long { 900 } else { 300 });
    let start = Instant::now();

    let reference = reference_signatures();

    // The injected optimizer panics are *supposed* to fire (and be
    // caught); keep their backtrace spam out of the test log while
    // letting every other panic print normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected optimizer fault"));
        if !injected {
            default_hook(info);
        }
    }));

    // A small queue + few workers so the burst genuinely overloads the
    // server: Full rejections and elevated shedding levels are part of
    // what the soak must observe, not an error.
    let policy = ShedPolicy::default();
    let server = Server::start(
        &presets::intel_i7_6700(),
        ServeConfig {
            pipeline: PipelineConfig::default(),
            workers: Some(4),
            queue_capacity: 16,
            shed: policy,
        },
    )
    .expect("chaos server");

    // Generate the whole mix up front so the ledger of what each id
    // requested is available when its response comes back.
    let mut rng = Lcg(0x5eed_cafe_f00d);
    let requests: Vec<Request> = (0..total).map(|n| chaos_request(n, &mut rng)).collect();
    let by_id: HashMap<String, Request> =
        requests.iter().map(|r| (r.id.clone(), r.clone())).collect();

    // Three client threads interleave submissions; every responder
    // reports into one channel.
    let (tx, rx) = mpsc::channel::<Response>();
    std::thread::scope(|scope| {
        for chunk in requests.chunks(total.div_ceil(3)) {
            let server = &server;
            let tx = tx.clone();
            scope.spawn(move || {
                for (i, request) in chunk.iter().enumerate() {
                    let tx = tx.clone();
                    server.submit(
                        request.clone(),
                        Box::new(move |r| {
                            let _ = tx.send(r);
                        }),
                    );
                    // Bursty pacing: each thread blasts its first 24
                    // submissions back-to-back (three threads racing
                    // into a 16-deep queue — guaranteed overload in any
                    // build profile), then settles into burst-and-
                    // breathe so the majority of the load is served
                    // rather than bounced at the door.
                    if i >= 24 && i % 4 == 3 {
                        std::thread::sleep(Duration::from_millis(15));
                    }
                }
            });
        }
    });
    drop(tx);

    // Collect exactly one response per submission, under a watchdog so a
    // hang fails loudly instead of wedging the test runner.
    let mut responses: Vec<Response> = Vec::with_capacity(total);
    while responses.len() < total {
        let remaining = budget
            .checked_sub(start.elapsed())
            .unwrap_or_else(|| panic!("soak hung: {}/{total} responses", responses.len()));
        match rx.recv_timeout(remaining) {
            Ok(r) => responses.push(r),
            Err(_) => {
                panic!("soak hung or lost responders: {}/{total} responses", responses.len())
            }
        }
    }
    assert!(rx.try_recv().is_err(), "more responses than submissions");

    let stats = server.shutdown();

    // Zero lost, zero panics: the client ledger and the server's own
    // terminal counters agree on every submission.
    assert_eq!(responses.len(), total);
    assert_eq!(stats.responses(), total as u64, "server counters disagree: {stats:?}");
    assert_eq!(stats.worker_panics, 0, "a worker died during the soak");
    assert_eq!(stats.rejected_shutdown, 0, "nothing should drain before the soak ends");
    assert_eq!(stats.bad_requests, 0, "pre-built requests are never malformed");

    let mut seen_ids: HashMap<&str, u32> = HashMap::new();
    let mut ok_count = 0u64;
    let mut shed_seen = 0u64;
    for r in &responses {
        *seen_ids.entry(r.id.as_str()).or_insert(0) += 1;
        let request = &by_id[r.id.as_str()];
        match r.ok() {
            Some(ok) => {
                ok_count += 1;
                // Shedding consistency: the level reported is exactly the
                // policy applied to the pressure reported, and the served
                // fidelity is the ladder's answer for this lane — unless
                // the explicitly-flagged degraded retry forced Analytic.
                assert_eq!(
                    ok.shed_level,
                    policy.level(ok.pressure),
                    "{}: level/pressure mismatch",
                    r.id
                );
                let allowed =
                    policy.fidelity(ok.shed_level, request.priority, request.fidelity);
                if ok.retried {
                    assert_eq!(ok.fidelity, Fidelity::Analytic, "{}: retry must degrade", r.id);
                } else {
                    assert_eq!(ok.fidelity, allowed, "{}: fidelity off-ladder", r.id);
                }
                assert!(ok.fidelity <= request.fidelity, "{}: fidelity exceeds request", r.id);
                if ok.fidelity < request.fidelity {
                    shed_seen += 1;
                }
                // Analytic answers never carry a simulated estimate.
                if ok.fidelity == Fidelity::Analytic {
                    assert!(
                        ok.nests.iter().all(|n| n.estimate_ms.is_none()),
                        "{}: analytic answer with an estimate",
                        r.id
                    );
                }
                // Determinism: a fault-free success must match the clean
                // fresh-server reference decision bit-for-bit, whatever
                // fidelity served it.
                if request.faults.is_none() && !ok.retried {
                    let key = (request.kernel.clone(), request.size.unwrap_or(0));
                    assert_eq!(
                        &ok.decision_signature(),
                        &reference[&key],
                        "{}: decision drifted under load for {key:?}",
                        r.id
                    );
                }
            }
            None => {
                let kind = r.error_kind().expect("non-ok response carries a kind");
                match kind {
                    ErrorKind::QueueFull => {}
                    ErrorKind::DeadlineExpired => {
                        assert!(request.deadline.is_some(), "{}: spurious expiry", r.id)
                    }
                    ErrorKind::Failed => assert!(
                        request.faults.is_some() || request.deadline.is_some(),
                        "{}: healthy request failed: {r:?}",
                        r.id
                    ),
                    other => panic!("{}: unexpected rejection {other:?}: {r:?}", r.id),
                }
            }
        }
    }
    assert!(seen_ids.values().all(|&n| n == 1), "duplicate responses for one id");
    assert_eq!(seen_ids.len(), total);
    assert_eq!(ok_count, stats.served, "client/server disagree on successes");
    assert_eq!(stats.shed, shed_seen, "client/server disagree on shed count");

    // Overload must actually have happened: with 500 requests racing
    // into a 16-deep queue either the door or the ladder (or both) has
    // to engage. A soak that never leaves Green tested nothing.
    assert!(
        stats.rejected_full > 0 || stats.levels[1] + stats.levels[2] > 0,
        "soak never overloaded the server: {stats:?}"
    );
    assert!(ok_count > 0, "soak produced no successful responses at all");

    eprintln!(
        "// soak: {total} requests in {:.1?}: {} served ({} shed, {} retried), \
         {} full, {} expired, {} failed; levels g/y/r {}/{}/{}",
        start.elapsed(),
        stats.served,
        stats.shed,
        stats.retried,
        stats.rejected_full,
        stats.expired,
        stats.failed,
        stats.levels[0],
        stats.levels[1],
        stats.levels[2],
    );
}

/// Shutdown mid-burst: whatever is still queued when the drain begins is
/// answered with a typed `shutdown` rejection — never silently dropped —
/// and in-flight work still completes.
#[test]
fn drain_under_load_rejects_queued_requests_with_typed_errors() {
    let server = Server::start(
        &presets::intel_i7_6700(),
        ServeConfig {
            pipeline: PipelineConfig::default(),
            workers: Some(1),
            queue_capacity: 32,
            shed: ShedPolicy::default(),
        },
    )
    .expect("server");

    let total = 24usize;
    let (tx, rx) = mpsc::channel::<Response>();
    for n in 0..total {
        let tx = tx.clone();
        server.submit(
            Request {
                id: format!("d{n}"),
                kernel: "matmul".to_string(),
                size: Some(24),
                priority: Priority::Batch,
                deadline: None,
                max_trace_lines: None,
                fidelity: Fidelity::Full,
                faults: None,
            },
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
    }
    drop(tx);

    // Drain immediately: the single worker has barely started.
    let stats = server.shutdown();
    let responses: Vec<Response> = rx.iter().collect();
    assert_eq!(responses.len(), total, "drain lost responses");
    assert_eq!(stats.responses(), total as u64);
    assert_eq!(stats.worker_panics, 0);

    let served = responses.iter().filter(|r| r.is_ok()).count() as u64;
    let shut =
        responses.iter().filter(|r| r.error_kind() == Some(ErrorKind::Shutdown)).count() as u64;
    assert_eq!(served + shut, total as u64, "every response is served or typed-shutdown");
    assert_eq!(served, stats.served);
    assert_eq!(shut, stats.rejected_shutdown);
    assert!(shut > 0, "immediate drain should catch queued requests");
}
