//! Cross-technique ranking sanity on the simulator — the qualitative
//! claims of the paper's evaluation that must hold for the reproduction
//! to be meaningful.

use palo::arch::presets;
use palo::baselines::{schedule_for, Technique};
use palo::exec::estimate_time;
use palo::ir::LoopNest;
use palo::suite::kernels;

fn ms(nest: &LoopNest, t: Technique, arch: &palo::arch::Architecture) -> f64 {
    let sched = schedule_for(t, nest, arch, 11);
    let lowered = sched.lower(nest).expect("schedule lowers");
    estimate_time(nest, &lowered, arch).expect("simulation succeeds").ms
}

#[test]
fn proposed_beats_baseline_on_matmul() {
    let nest = kernels::matmul(256).unwrap();
    let arch = presets::repro::intel_i7_5930k();
    let p = ms(&nest, Technique::Proposed, &arch);
    let b = ms(&nest, Technique::Baseline, &arch);
    assert!(p < b, "proposed {p} should beat baseline {b}");
}

#[test]
fn proposed_beats_baseline_on_gemm() {
    let nest = kernels::gemm(256).unwrap();
    let arch = presets::repro::intel_i7_5930k();
    let p = ms(&nest, Technique::Proposed, &arch);
    let b = ms(&nest, Technique::Baseline, &arch);
    assert!(p < b, "proposed {p} should beat baseline {b}");
}

#[test]
fn proposed_cuts_doitgen_memory_traffic() {
    // At reproduction scale the win shows as time (see fig4); at a
    // debug-friendly size the decisive signal is DRAM traffic.
    let nest = kernels::doitgen(48).unwrap();
    let arch = presets::repro::intel_i7_5930k();
    let traffic = |t: Technique| {
        let sched = schedule_for(t, &nest, &arch, 11);
        let lowered = sched.lower(&nest).expect("schedule lowers");
        estimate_time(&nest, &lowered, &arch)
            .expect("simulation succeeds")
            .stats
            .mem_traffic_lines()
    };
    let p = traffic(Technique::Proposed);
    let b = traffic(Technique::Baseline);
    // At 48³ the whole problem is LLC-resident, so both are near the
    // cold-miss floor; tiling may add bounded prefetch overfetch. The
    // real separation at scale is asserted by the fig4 harness.
    assert!(p as f64 <= b as f64 * 1.3, "proposed traffic {p} should stay near baseline {b}");
}

#[test]
fn nti_improves_spatial_kernels() {
    let arch = presets::repro::intel_i7_5930k();
    for nest in [kernels::tp(512).unwrap(), kernels::copy(512).unwrap()] {
        let plain = ms(&nest, Technique::Proposed, &arch);
        let nti = ms(&nest, Technique::ProposedNti, &arch);
        assert!(nti < plain, "{}: NTI {nti} should improve over {plain}", nest.name());
    }
}

#[test]
fn nti_never_selected_for_accumulating_output() {
    let arch = presets::repro::intel_i7_5930k();
    let nest = kernels::gemm(128).unwrap();
    let sched = schedule_for(Technique::ProposedNti, &nest, &arch, 0);
    assert!(!sched.uses_nt_stores());
}

#[test]
fn proposed_at_least_matches_autoscheduler_on_matmul() {
    // 384² no longer fits the scaled LLC, so the deeper tiling analysis
    // must pay off (at LLC-resident sizes the two are within noise).
    let nest = kernels::matmul(384).unwrap();
    let arch = presets::repro::intel_i7_6700();
    let p = ms(&nest, Technique::Proposed, &arch);
    let a = ms(&nest, Technique::AutoScheduler, &arch);
    assert!(p <= a * 1.02, "proposed {p} should be <= autoscheduler {a}");
}

#[test]
fn parallel_baseline_beats_serial_naive() {
    use palo::sched::Schedule;
    // matmul is latency/compute-bound enough that parallelism must show;
    // a pure copy can legitimately tie (both hit the bandwidth roof).
    let nest = kernels::matmul(128).unwrap();
    let arch = presets::repro::intel_i7_6700();
    let serial =
        estimate_time(&nest, &Schedule::new().lower(&nest).unwrap(), &arch).unwrap().ms;
    let b = ms(&nest, Technique::Baseline, &arch);
    assert!(b < serial, "baseline {b} vs serial {serial}");
}
