//! `palo-serve` — the optimizer as a long-lived service.
//!
//! A compilation service amortizes what a CLI cannot: the warm
//! [`Session`](palo_core::Session) keeps the once-resolved cost model
//! and the content-addressed artifact cache across requests, so the
//! hundredth `matmul` answers from cache in microseconds. What a
//! service must add on top is *robustness under load*, and that is this
//! crate:
//!
//! * **Admission control** ([`AdmissionQueue`]) — a bounded two-lane
//!   queue; beyond capacity requests are rejected with a typed error,
//!   never buffered without bound.
//! * **Priority lanes** — `interactive` before `batch`, smallest job
//!   first within a lane.
//! * **Load shedding** ([`ShedPolicy`]) — under pressure, requests are
//!   answered from the analytical model alone (the decision is
//!   unchanged; the simulated estimate is sacrificed), batch lane
//!   first. Every response reports the level and pressure that shaped
//!   it.
//! * **Deadline propagation** — a request's remaining deadline rides
//!   [`RunOverrides`](palo_core::RunOverrides) into the trace-walk
//!   guard; cache-safety invariants keep deadline-bounded work from
//!   poisoning artifacts served to unconstrained requests.
//! * **Fault isolation and retry** — panics are caught per request;
//!   transient failures earn one retry with faults disarmed and
//!   analytic fidelity.
//! * **Graceful drain** ([`Server::shutdown`]) — in-flight requests
//!   finish, queued ones are rejected with a typed shutdown error,
//!   exactly one response per submission either way.
//!
//! The wire protocol ([`protocol`]) is newline-delimited JSON over
//! stdin/stdout or a Unix socket, parsed by a small strict hand-rolled
//! reader ([`json`]) because the workspace's `serde` is an offline
//! no-op stand-in. See DESIGN.md §14 for the full design rationale.
//!
//! # Examples
//!
//! ```
//! use palo_arch::presets;
//! use palo_serve::{Request, Responder, Response, ServeConfig, Server};
//! use std::sync::mpsc;
//!
//! let server = Server::start(&presets::intel_i7_6700(), ServeConfig::default())?;
//! let (tx, rx) = mpsc::channel::<Response>();
//! let req = Request::parse(r#"{"id":"r1","kernel":"matmul","size":32}"#, "#0")?;
//! server.submit(req, Box::new(move |resp| { let _ = tx.send(resp); }) as Responder);
//! let response = rx.recv()?;
//! assert_eq!(response.ok().unwrap().nests[0].rung, "proposed");
//! let stats = server.shutdown();
//! assert_eq!(stats.responses(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shed;
pub mod signal;

pub use json::{Json, JsonError};
pub use protocol::{
    BadRequest, ErrorKind, NestResult, OkResponse, Request, Response, ResponseBody,
};
pub use queue::{AdmissionQueue, PushError};
pub use server::{Responder, ServeConfig, ServeStats, Server};
pub use shed::{Fidelity, ShedLevel, ShedPolicy};
