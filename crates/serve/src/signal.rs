//! SIGINT/SIGTERM → a drain flag.
//!
//! The daemon (and `palo-opt --batch`) turn termination signals into a
//! *graceful* drain: the handler only flips a process-wide atomic — the
//! single async-signal-safe thing a handler may do — and the serving
//! loop polls [`shutdown_requested`] between requests to start the
//! drain. The registration goes through the C `signal(2)` entry point
//! directly (the workspace builds offline, without the `libc` crate).

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX `SIGTERM`.
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the drain handler for `SIGINT` and `SIGTERM`. Idempotent.
/// On non-Unix targets this is a no-op (the flag can still be set
/// programmatically via [`request_shutdown`]).
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    // SAFETY: `on_signal` is async-signal-safe (a single atomic store)
    // and stays registered for the process lifetime.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Whether a termination signal (or [`request_shutdown`]) asked for a
/// drain.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the drain flag programmatically (end-of-input, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigterm_sets_the_drain_flag() {
        install_shutdown_handler();
        // SAFETY: the handler is installed, so the raised signal is
        // absorbed by the atomic store instead of the default
        // termination action.
        unsafe {
            raise(SIGTERM);
        }
        assert!(shutdown_requested());
    }
}
