//! The serve protocol's JSON dialect — re-exported from [`palo_codec`].
//!
//! The strict reader/writer that used to live here was promoted to the
//! shared `palo-codec` crate (the artifact store needed the same "no
//! serde, hand-rolled and strict" serialization story); this module
//! stays so existing `palo_serve::json::…` paths keep working.

pub use palo_codec::json::{push_json_f64, push_json_str, Json, JsonError};
