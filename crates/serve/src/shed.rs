//! The load-shedding ladder: queue pressure → service fidelity.
//!
//! The daemon never buffers without bound (admission control rejects at
//! the brim); *between* "all is well" and "reject" sits shedding: under
//! pressure the server answers from the analytical cost model alone and
//! skips the trace simulation — the decision is identical (the optimizer
//! never consults the simulator in `paper` model mode), only the
//! simulated time estimate is sacrificed. Which rung served a request is
//! always reported back, so degradation is observable, never silent.
//!
//! The ladder is deliberately a pure function of the pressure reading:
//! `level(pressure)` is monotone (more pressure never *improves* the
//! level) and `fidelity(level, lane, requested)` is monotone in the
//! level (a worse level never *adds* fidelity) — the chaos soak asserts
//! both, plus the consistency of every response's reported level with
//! its reported pressure.

use palo_core::Priority;

/// How much of the pipeline served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fidelity {
    /// Analytical model only: classify → optimize → lower → validate,
    /// simulation skipped (no time estimate).
    Analytic,
    /// The full pipeline, trace simulation included.
    Full,
}

impl Fidelity {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Analytic => "analytic",
            Fidelity::Full => "full",
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rung of the shedding ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedLevel {
    /// Low pressure: every request is served at its requested fidelity.
    Green,
    /// Elevated pressure: batch-lane requests are shed to the analytical
    /// model; interactive requests keep their requested fidelity.
    Yellow,
    /// High pressure: every request is shed to the analytical model.
    Red,
}

impl ShedLevel {
    /// Every level, best first.
    pub const ALL: [ShedLevel; 3] = [ShedLevel::Green, ShedLevel::Yellow, ShedLevel::Red];

    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedLevel::Green => "green",
            ShedLevel::Yellow => "yellow",
            ShedLevel::Red => "red",
        }
    }
}

impl std::fmt::Display for ShedLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Pressure thresholds of the shedding ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Pressure (queued / capacity, in `[0, 1]`) at or above which the
    /// level is at least [`ShedLevel::Yellow`].
    pub yellow: f64,
    /// Pressure at or above which the level is [`ShedLevel::Red`].
    pub red: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy { yellow: 0.5, red: 0.85 }
    }
}

impl ShedPolicy {
    /// The ladder rung for a pressure reading. Monotone in `pressure`.
    pub fn level(&self, pressure: f64) -> ShedLevel {
        if pressure >= self.red {
            ShedLevel::Red
        } else if pressure >= self.yellow {
            ShedLevel::Yellow
        } else {
            ShedLevel::Green
        }
    }

    /// The fidelity a request is served at: its requested fidelity,
    /// capped by what the ladder allows its lane at this level. Monotone
    /// in `level` and never above `requested`.
    pub fn fidelity(&self, level: ShedLevel, lane: Priority, requested: Fidelity) -> Fidelity {
        let cap = match (level, lane) {
            (ShedLevel::Green, _) => Fidelity::Full,
            (ShedLevel::Yellow, Priority::Interactive) => Fidelity::Full,
            (ShedLevel::Yellow, Priority::Batch) => Fidelity::Analytic,
            (ShedLevel::Red, _) => Fidelity::Analytic,
        };
        requested.min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_monotone_in_pressure() {
        let policy = ShedPolicy::default();
        let mut last = ShedLevel::Green;
        for i in 0..=100 {
            let level = policy.level(i as f64 / 100.0);
            assert!(level >= last, "level improved as pressure rose");
            last = level;
        }
        assert_eq!(policy.level(0.0), ShedLevel::Green);
        assert_eq!(policy.level(0.5), ShedLevel::Yellow);
        assert_eq!(policy.level(1.0), ShedLevel::Red);
    }

    #[test]
    fn fidelity_is_monotone_in_level_and_capped_by_request() {
        let policy = ShedPolicy::default();
        for lane in [Priority::Interactive, Priority::Batch] {
            for requested in [Fidelity::Analytic, Fidelity::Full] {
                let mut last = Fidelity::Full;
                for level in ShedLevel::ALL {
                    let served = policy.fidelity(level, lane, requested);
                    assert!(served <= requested, "served above the request");
                    assert!(served <= last, "fidelity rose as the level worsened");
                    last = served;
                }
            }
        }
        // Yellow sheds only the batch lane.
        assert_eq!(
            policy.fidelity(ShedLevel::Yellow, Priority::Interactive, Fidelity::Full),
            Fidelity::Full
        );
        assert_eq!(
            policy.fidelity(ShedLevel::Yellow, Priority::Batch, Fidelity::Full),
            Fidelity::Analytic
        );
    }
}
