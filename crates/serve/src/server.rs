//! The serving core: one warm [`Session`] behind an admission queue and
//! a worker pool.
//!
//! Life of a request:
//!
//! 1. **Admission** — [`Server::submit`] parses nothing (that is
//!    [`Server::submit_line`]'s job), resolves the kernel, and offers the
//!    job to the bounded [`AdmissionQueue`]. At capacity or after
//!    shutdown the job is answered immediately with a typed rejection —
//!    never buffered without bound, never dropped.
//! 2. **Scheduling** — workers pop lane-then-smallest-first. At dequeue
//!    the worker reads the queue pressure, takes the shedding ladder's
//!    level, and derives the fidelity this request is served at.
//! 3. **Deadline** — the remaining deadline (measured from admission) is
//!    propagated into the pipeline's trace-walk guard via
//!    [`RunOverrides`]; a request that expired while queued is answered
//!    with a typed [`ErrorKind::DeadlineExpired`] without running.
//! 4. **Execution** — [`Session::run_with`] per nest, panics isolated by
//!    [`catch_panic`]. A transient failure (injected fault, caught
//!    panic, exhausted budget) earns one retry with faults disarmed and
//!    analytic fidelity; what remains is a typed failure.
//! 5. **Response** — exactly one [`Response`] per submitted request,
//!    through the job's [`Responder`] closure (stdout, a socket, a test
//!    channel — the server does not care).
//!
//! [`Server::shutdown`] drains gracefully: the queue closes, its pending
//! entries are rejected with [`ErrorKind::Shutdown`], in-flight requests
//! finish, workers exit, and the final statistics are returned.

use crate::protocol::{ErrorKind, NestResult, OkResponse, Request, Response, ResponseBody};
use crate::queue::{AdmissionQueue, PushError};
use crate::shed::{Fidelity, ShedLevel, ShedPolicy};
use palo_core::{
    catch_panic, CacheStats, FaultPlan, PaloError, PipelineConfig, PipelineOutcome,
    RunOverrides, Session,
};
use palo_ir::LoopNest;
use palo_suite::Benchmark;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Delivers the response for one request. Submitters choose the
/// transport: the stdin server writes to locked stdout, the socket
/// server to its connection, tests to a channel.
pub type Responder = Box<dyn FnOnce(Response) + Send + 'static>;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pipeline configuration of the warm session (cost model, budgets,
    /// `max_concurrent_sims`, …). `simulate` should stay `true`: the
    /// per-request fidelity decides whether simulation actually runs.
    pub pipeline: PipelineConfig,
    /// Worker threads; `None` picks a small machine-derived default.
    pub workers: Option<usize>,
    /// Admission-queue bound (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// The shedding ladder's thresholds.
    pub shed: ShedPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pipeline: PipelineConfig::default(),
            workers: None,
            queue_capacity: 64,
            shed: ShedPolicy::default(),
        }
    }
}

/// A snapshot of the server's lifetime counters. Every submitted
/// request lands in exactly one terminal counter; [`ServeStats::responses`]
/// totals them for the zero-lost-responses check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a decision (degraded ones included).
    pub served: u64,
    /// Served below the fidelity the request asked for (load shedding).
    pub shed: u64,
    /// Served from the degraded retry after a transient failure.
    pub retried: u64,
    /// Rejected at admission: queue full.
    pub rejected_full: u64,
    /// Rejected because the server was draining (at admission or stolen
    /// from the queue at shutdown).
    pub rejected_shutdown: u64,
    /// Malformed or unresolvable requests.
    pub bad_requests: u64,
    /// Deadline expired before a worker picked the request up.
    pub expired: u64,
    /// Pipeline failures that survived the retry.
    pub failed: u64,
    /// Requests dequeued at each shedding level, best first
    /// `[green, yellow, red]`.
    pub levels: [u64; 3],
    /// Worker threads that died by panic (must stay 0; responses are
    /// panic-isolated per request).
    pub worker_panics: u64,
}

impl ServeStats {
    /// Total responses delivered — with zero lost responses this equals
    /// the number of submissions.
    pub fn responses(&self) -> u64 {
        self.served
            + self.rejected_full
            + self.rejected_shutdown
            + self.bad_requests
            + self.expired
            + self.failed
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    bad_requests: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    levels: [AtomicU64; 3],
    worker_panics: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, worker_panics: u64) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            levels: [
                self.levels[0].load(Ordering::Relaxed),
                self.levels[1].load(Ordering::Relaxed),
                self.levels[2].load(Ordering::Relaxed),
            ],
            worker_panics: self.worker_panics.load(Ordering::Relaxed) + worker_panics,
        }
    }
}

struct Job {
    request: Request,
    nests: Vec<LoopNest>,
    admitted: Instant,
    responder: Responder,
}

struct Shared {
    session: Session,
    shed: ShedPolicy,
    queue: AdmissionQueue<Job>,
    counters: Counters,
}

/// The daemon core: a warm [`Session`], an [`AdmissionQueue`] and a
/// worker pool. See the module docs for a request's life.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the session (validating the architecture once) and starts
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// As for [`Session::new`]: an invalid architecture or a hierarchy
    /// the simulator cannot model.
    pub fn start(
        arch: &palo_arch::Architecture,
        config: ServeConfig,
    ) -> Result<Server, PaloError> {
        let session = Session::new(arch, config.pipeline)?;
        let shared = Arc::new(Shared {
            session,
            shed: config.shed,
            queue: AdmissionQueue::new(config.queue_capacity),
            counters: Counters::default(),
        });
        let worker_count = config
            .workers
            .unwrap_or_else(|| palo_core::search::resolve_threads(None).min(4))
            .max(1);
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        // One request must never take a worker (and with
                        // it the whole drain) down.
                        if catch_panic("serve-worker", || serve_one(&shared, job)).is_err() {
                            Counters::bump(&shared.counters.worker_panics);
                        }
                    }
                })
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// The warm session (for cache statistics and configuration).
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Current queue occupancy in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.shared.queue.pressure()
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot(0)
    }

    /// Submits a parsed request. Always answers through `responder` —
    /// immediately for rejections (unknown kernel, queue full, server
    /// draining), from a worker otherwise.
    pub fn submit(&self, request: Request, responder: Responder) {
        let nests = {
            let named = Benchmark::all().into_iter().find(|b| b.name() == request.kernel);
            let built = match named {
                None => Err(format!("unknown kernel {:?}", request.kernel)),
                Some(b) => match request.size {
                    Some(s) => b.build(s).map_err(|e| format!("cannot build kernel: {e}")),
                    None => b.build_scaled().map_err(|e| format!("cannot build kernel: {e}")),
                },
            };
            match built {
                Ok(nests) => nests,
                Err(message) => {
                    Counters::bump(&self.shared.counters.bad_requests);
                    responder(Response::error(&request.id, ErrorKind::BadRequest, message));
                    return;
                }
            }
        };
        let weight: u128 = nests.iter().map(|n| n.iteration_count()).sum();
        let lane = request.priority;
        let job = Job { request, nests, admitted: Instant::now(), responder };
        if let Err((job, err)) = self.shared.queue.push(lane, weight, job) {
            let (kind, counter) = match err {
                PushError::Full { .. } => {
                    (ErrorKind::QueueFull, &self.shared.counters.rejected_full)
                }
                PushError::Shutdown => {
                    (ErrorKind::Shutdown, &self.shared.counters.rejected_shutdown)
                }
            };
            Counters::bump(counter);
            (job.responder)(Response::error(&job.request.id, kind, err.to_string()));
        }
    }

    /// Parses one protocol line and submits it; a malformed line is
    /// answered with a typed `bad_request` (correlated to the line's
    /// `id` when recoverable, to `fallback_id` otherwise).
    pub fn submit_line(&self, line: &str, fallback_id: &str, responder: Responder) {
        match Request::parse(line, fallback_id) {
            Ok(request) => self.submit(request, responder),
            Err(bad) => {
                Counters::bump(&self.shared.counters.bad_requests);
                let id = bad.id.as_deref().unwrap_or(fallback_id);
                responder(Response::error(id, ErrorKind::BadRequest, bad.message));
            }
        }
    }

    /// Graceful drain: close the queue, reject everything still pending
    /// with a typed shutdown error, let in-flight requests finish, join
    /// the workers, and return the final counters.
    pub fn shutdown(self) -> ServeStats {
        for job in self.shared.queue.close() {
            Counters::bump(&self.shared.counters.rejected_shutdown);
            (job.responder)(Response::error(
                &job.request.id,
                ErrorKind::Shutdown,
                "server draining: request was still queued",
            ));
        }
        let mut worker_panics = 0;
        for handle in self.workers {
            if handle.join().is_err() {
                worker_panics += 1;
            }
        }
        self.shared.counters.snapshot(worker_panics)
    }
}

/// A failure that earns one degraded retry: an injected fault, an
/// isolated panic, or an exhausted resource budget — conditions a
/// cleaner, cheaper second attempt can clear. A wall-clock deadline is
/// *not* transient (retrying cannot recover spent time), and genuine
/// IR/schedule errors would fail identically again.
fn transient(e: &PaloError) -> bool {
    matches!(
        e,
        PaloError::FaultInjected { .. }
            | PaloError::Panicked { .. }
            | PaloError::BudgetExceeded { .. }
    )
}

/// Remaining deadline at this instant; `Err` when already expired.
fn remaining(request: &Request, admitted: Instant) -> Result<Option<Duration>, Duration> {
    match request.deadline {
        None => Ok(None),
        Some(d) => {
            let spent = admitted.elapsed();
            match d.checked_sub(spent) {
                Some(left) if left > Duration::ZERO => Ok(Some(left)),
                _ => Err(d),
            }
        }
    }
}

fn run_all(
    session: &Session,
    nests: &[LoopNest],
    overrides: &RunOverrides,
) -> Result<Vec<PipelineOutcome>, PaloError> {
    nests
        .iter()
        .map(|nest| catch_panic("serve-request", || session.run_with(nest, overrides))?)
        .collect()
}

fn nest_result(nest: &LoopNest, out: &PipelineOutcome) -> NestResult {
    let d = out.decision.as_ref();
    NestResult {
        name: nest.name().to_string(),
        rung: out.report.rung.as_str().to_string(),
        class: d.map(|d| format!("{:?}", d.class)),
        tile: d.map(|d| d.tile.clone()).unwrap_or_default(),
        predicted_cost: d.map(|d| d.predicted_cost),
        breakdown: out
            .report
            .breakdown
            .as_ref()
            .map(|b| [b.cl1, b.cl2, b.cl2_lines, b.corder, b.pref_efficiency]),
        estimate_ms: out.report.estimate.as_ref().map(|e| e.ms),
        passes: out
            .report
            .pass_totals()
            .into_iter()
            .map(|(pass, dur, requests, cached)| crate::protocol::PassTotal {
                pass: pass.to_string(),
                ms: dur.as_secs_f64() * 1e3,
                requests,
                cached,
            })
            .collect(),
        replay: out.report.estimate.as_ref().map(|e| {
            let r = &e.replay;
            [r.runs, r.run_lines, r.cycles_skipped, r.lines_skipped]
        }),
        failures: out
            .report
            .failures
            .iter()
            .map(|f| format!("{} rung: {}", f.rung, f.error))
            .collect(),
    }
}

/// How the shedding ladder answered this request: the fidelity served,
/// the level and pressure reading that drove it, and whether the answer
/// came from the degraded retry.
#[derive(Clone, Copy)]
struct Served {
    fidelity: Fidelity,
    level: ShedLevel,
    pressure: f64,
    retried: bool,
}

fn respond_ok(
    shared: &Shared,
    job_request: &Request,
    admitted: Instant,
    nests: &[LoopNest],
    outcomes: &[PipelineOutcome],
    served: Served,
) -> Response {
    if served.fidelity < job_request.fidelity {
        Counters::bump(&shared.counters.shed);
    }
    if served.retried {
        Counters::bump(&shared.counters.retried);
    }
    Counters::bump(&shared.counters.served);
    let mut cache = CacheStats::default();
    for out in outcomes {
        cache.absorb(&out.report.cache);
    }
    Response {
        id: job_request.id.clone(),
        body: ResponseBody::Ok(OkResponse {
            kernel: job_request.kernel.clone(),
            nests: nests.iter().zip(outcomes).map(|(n, out)| nest_result(n, out)).collect(),
            fidelity: served.fidelity,
            shed_level: served.level,
            pressure: served.pressure,
            retried: served.retried,
            cache,
            elapsed: admitted.elapsed(),
        }),
    }
}

fn serve_one(shared: &Shared, job: Job) {
    let Job { request, nests, admitted, responder } = job;

    // The pressure reading is taken once, at dequeue, and both the
    // reading and the level derived from it are reported — so a client
    // (and the soak) can check level == policy.level(pressure).
    let pressure = shared.queue.pressure();
    let level = shared.shed.level(pressure);
    Counters::bump(&shared.counters.levels[level as usize]);
    let fidelity = shared.shed.fidelity(level, request.priority, request.fidelity);

    let left = match remaining(&request, admitted) {
        Ok(left) => left,
        Err(deadline) => {
            Counters::bump(&shared.counters.expired);
            responder(Response::error(
                &request.id,
                ErrorKind::DeadlineExpired,
                format!("deadline of {deadline:?} expired while queued"),
            ));
            return;
        }
    };

    let overrides = request.overrides(left, fidelity);
    let served = Served { fidelity, level, pressure, retried: false };
    let response = match run_all(&shared.session, &nests, &overrides) {
        Ok(outcomes) => respond_ok(shared, &request, admitted, &nests, &outcomes, served),
        Err(first) if transient(&first) => {
            // One retry: faults disarmed, analytic fidelity, whatever
            // deadline is left. A second failure is terminal.
            let degraded = RunOverrides {
                deadline: remaining(&request, admitted).unwrap_or(Some(Duration::ZERO)),
                max_trace_lines: request.max_trace_lines,
                faults: Some(FaultPlan::default()),
                simulate: Some(false),
            };
            let served = Served { fidelity: Fidelity::Analytic, retried: true, ..served };
            match run_all(&shared.session, &nests, &degraded) {
                Ok(outcomes) => {
                    respond_ok(shared, &request, admitted, &nests, &outcomes, served)
                }
                Err(second) => {
                    Counters::bump(&shared.counters.failed);
                    Response::error(
                        &request.id,
                        ErrorKind::Failed,
                        format!("pipeline failed: {first}; retry failed: {second}"),
                    )
                }
            }
        }
        Err(e) => {
            Counters::bump(&shared.counters.failed);
            Response::error(&request.id, ErrorKind::Failed, format!("pipeline failed: {e}"))
        }
    };
    responder(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_core::Priority;
    use std::sync::mpsc;

    fn server(config: ServeConfig) -> Server {
        Server::start(&presets::intel_i7_6700(), config).unwrap()
    }

    fn collect(tx: &mpsc::Sender<Response>) -> Responder {
        let tx = tx.clone();
        Box::new(move |r| {
            let _ = tx.send(r);
        })
    }

    fn request(line: &str) -> Request {
        Request::parse(line, "#0").unwrap()
    }

    #[test]
    fn serves_a_small_batch_with_decisions_and_cache_stats() {
        let srv = server(ServeConfig { workers: Some(2), ..ServeConfig::default() });
        let (tx, rx) = mpsc::channel();
        for (id, kernel) in [("a", "matmul"), ("b", "tp"), ("c", "matmul")] {
            srv.submit(
                request(&format!(r#"{{"id":"{id}","kernel":"{kernel}","size":32}}"#)),
                collect(&tx),
            );
        }
        let responses: Vec<Response> = rx.iter().take(3).collect();
        assert_eq!(responses.len(), 3);
        for r in &responses {
            let ok = r.ok().unwrap_or_else(|| panic!("{}: {:?}", r.id, r.body));
            assert_eq!(ok.nests[0].rung, "proposed");
            assert_eq!(ok.fidelity, Fidelity::Full);
            assert!(ok.nests[0].estimate_ms.is_some());
        }
        // The repeated matmul must decide identically to the first one.
        let by_id = |id: &str| {
            responses
                .iter()
                .find(|r| r.id == id)
                .and_then(Response::ok)
                .map(OkResponse::decision_signature)
        };
        assert_eq!(by_id("a"), by_id("c"));
        let stats = srv.shutdown();
        assert_eq!(stats.served, 3);
        assert_eq!(stats.responses(), 3);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn unknown_kernel_and_bad_line_are_typed_rejections() {
        let srv = server(ServeConfig::default());
        let (tx, rx) = mpsc::channel();
        srv.submit(request(r#"{"id":"u","kernel":"nope"}"#), collect(&tx));
        srv.submit_line("{not json", "#5", collect(&tx));
        let responses: Vec<Response> = rx.iter().take(2).collect();
        for r in &responses {
            assert_eq!(r.error_kind(), Some(ErrorKind::BadRequest), "{:?}", r.body);
        }
        assert!(responses.iter().any(|r| r.id == "u"));
        assert!(responses.iter().any(|r| r.id == "#5"));
        assert_eq!(srv.shutdown().bad_requests, 2);
    }

    #[test]
    fn expired_deadline_is_rejected_without_running() {
        let srv = server(ServeConfig::default());
        let (tx, rx) = mpsc::channel();
        srv.submit(
            request(r#"{"id":"d","kernel":"matmul","size":64,"deadline_ms":0}"#),
            collect(&tx),
        );
        let r = rx.recv().unwrap();
        assert_eq!(r.error_kind(), Some(ErrorKind::DeadlineExpired));
        let stats = srv.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn transient_fault_earns_one_degraded_retry() {
        let srv = server(ServeConfig::default());
        let (tx, rx) = mpsc::channel();
        // fail_first_lowerings=4 exhausts the whole ladder → transient
        // FaultInjected error → the retry (faults disarmed, analytic)
        // answers.
        srv.submit(
            request(
                r#"{"id":"f","kernel":"matmul","size":16,
                    "faults":{"fail_first_lowerings":4}}"#,
            ),
            collect(&tx),
        );
        let r = rx.recv().unwrap();
        let ok = r.ok().unwrap_or_else(|| panic!("{:?}", r.body));
        assert!(ok.retried);
        assert_eq!(ok.fidelity, Fidelity::Analytic);
        assert_eq!(ok.nests[0].rung, "proposed");
        assert_eq!(ok.nests[0].estimate_ms, None);
        let stats = srv.shutdown();
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn red_policy_sheds_every_request_to_analytic() {
        let srv = server(ServeConfig {
            shed: ShedPolicy { yellow: 0.0, red: 0.0 },
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        srv.submit(
            request(r#"{"id":"s","kernel":"copy","size":64,"priority":"interactive"}"#),
            collect(&tx),
        );
        let r = rx.recv().unwrap();
        let ok = r.ok().unwrap_or_else(|| panic!("{:?}", r.body));
        assert_eq!(ok.shed_level, ShedLevel::Red);
        assert_eq!(ok.fidelity, Fidelity::Analytic);
        assert_eq!(ok.nests[0].estimate_ms, None);
        // The decision itself is full quality — only the estimate is shed.
        assert_eq!(ok.nests[0].rung, "proposed");
        let stats = srv.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.levels, [0, 0, 1]);
    }

    #[test]
    fn shutdown_rejects_pending_and_later_submissions() {
        let (tx, rx) = mpsc::channel();
        let srv = server(ServeConfig::default());
        let shared = Arc::clone(&srv.shared);
        let stats = srv.shutdown();
        assert_eq!(stats.responses(), 0);
        // Submissions after shutdown (e.g. from a still-open socket)
        // get a typed rejection through the same responder path.
        let req = request(r#"{"id":"late","kernel":"matmul"}"#);
        let nests = Benchmark::Matmul.build_scaled().unwrap();
        let job =
            Job { request: req, nests, admitted: Instant::now(), responder: collect(&tx) };
        if let Err((job, err)) = shared.queue.push(Priority::Batch, 1, job) {
            assert_eq!(err, crate::queue::PushError::Shutdown);
            (job.responder)(Response::error(
                &job.request.id,
                ErrorKind::Shutdown,
                err.to_string(),
            ));
        } else {
            panic!("closed queue admitted a job");
        }
        let r = rx.recv().unwrap();
        assert_eq!(r.id, "late");
        assert_eq!(r.error_kind(), Some(ErrorKind::Shutdown));
    }
}
