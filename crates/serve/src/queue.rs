//! Bounded two-lane admission queue.
//!
//! The daemon's first robustness line: work is *admitted* or *rejected*,
//! never buffered without bound. The queue holds at most `capacity`
//! entries across both lanes; a push beyond that returns the entry to
//! the caller with a typed [`PushError::Full`] so the rejection can be
//! answered, not dropped.
//!
//! Scheduling is lane-then-size: the interactive lane always goes before
//! the batch lane, and within a lane the *smallest* entry goes first
//! (shortest-job-first — the latency-optimal order for a service queue;
//! contrast [`BatchDriver`](palo_core::BatchDriver), which claims
//! largest-first to minimize the makespan of a closed batch). Ties fall
//! back to arrival order. Starvation of the batch lane is bounded by the
//! queue bound itself: admission control keeps the interactive lane from
//! growing without limit.
//!
//! [`AdmissionQueue::close`] flips the queue into drain mode: every
//! *pending* entry is handed back to the caller (to be rejected with a
//! typed shutdown error), blocked poppers wake up and see `None`, and
//! further pushes fail with [`PushError::Shutdown`]. In-flight work —
//! entries already popped — is unaffected; finishing it is the worker's
//! business.

use palo_core::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused. The entry itself is returned alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; admit later or shed.
    Full {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The queue is closed (server draining); nothing is admitted.
    Shutdown,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            PushError::Shutdown => f.write_str("admission queue closed (server draining)"),
        }
    }
}

impl std::error::Error for PushError {}

struct Entry<T> {
    item: T,
    weight: u128,
    seq: u64,
}

struct Inner<T> {
    interactive: VecDeque<Entry<T>>,
    batch: VecDeque<Entry<T>>,
    closed: bool,
    next_seq: u64,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Removes and returns the scheduled-next entry: interactive lane
    /// first, smallest weight first within the lane, arrival order on
    /// ties.
    fn take_next(&mut self) -> Option<T> {
        for lane in [&mut self.interactive, &mut self.batch] {
            let best =
                lane.iter().enumerate().min_by_key(|(_, e)| (e.weight, e.seq)).map(|(i, _)| i);
            if let Some(i) = best {
                return lane.remove(i).map(|e| e.item);
            }
        }
        None
    }
}

/// A bounded, closeable, two-lane blocking queue.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
                next_seq: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoned lock means a panic while holding it; the queue's
        // state is still structurally sound (no invariant spans the
        // critical sections), so keep serving rather than wedging every
        // worker.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Entries currently queued (not in-flight ones).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy in `[0, 1]` — the shedding ladder's input.
    pub fn pressure(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Admits `item` into `lane` with scheduling weight `weight`
    /// (smaller pops sooner within the lane).
    ///
    /// # Errors
    ///
    /// Returns the item back with [`PushError::Full`] at capacity and
    /// [`PushError::Shutdown`] after close — the caller owns answering
    /// the rejection.
    pub fn push(&self, lane: Priority, weight: u128, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Shutdown));
        }
        if inner.len() >= self.capacity {
            return Err((item, PushError::Full { capacity: self.capacity }));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let entry = Entry { item, weight, seq };
        match lane {
            Priority::Interactive => inner.interactive.push_back(entry),
            Priority::Batch => inner.batch.push_back(entry),
        }
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an entry is schedulable and returns it; `None` once
    /// the queue is closed and empty (the worker's signal to exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.take_next() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pushes start failing with
    /// [`PushError::Shutdown`], blocked [`AdmissionQueue::pop`] calls
    /// drain out, and every still-pending entry is returned (in schedule
    /// order) for the caller to reject. Idempotent; later calls return
    /// nothing.
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let mut pending = Vec::with_capacity(inner.len());
        while let Some(item) = inner.take_next() {
            pending.push(item);
        }
        drop(inner);
        self.ready.notify_all();
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn schedules_lane_first_then_smallest_then_fifo() {
        let q = AdmissionQueue::new(8);
        q.push(Priority::Batch, 100, "b-big").unwrap();
        q.push(Priority::Batch, 1, "b-small").unwrap();
        q.push(Priority::Interactive, 50, "i-mid").unwrap();
        q.push(Priority::Interactive, 50, "i-mid-2").unwrap();
        q.push(Priority::Interactive, 9, "i-small").unwrap();
        let order: Vec<_> =
            std::iter::from_fn(|| if q.is_empty() { None } else { q.pop() }).collect();
        assert_eq!(order, ["i-small", "i-mid", "i-mid-2", "b-small", "b-big"]);
    }

    #[test]
    fn rejects_at_capacity_with_the_item_back() {
        let q = AdmissionQueue::new(2);
        q.push(Priority::Batch, 1, 10).unwrap();
        q.push(Priority::Interactive, 1, 20).unwrap();
        assert_eq!(q.pressure(), 1.0);
        let (item, err) = q.push(Priority::Batch, 1, 30).unwrap_err();
        assert_eq!(item, 30);
        assert_eq!(err, PushError::Full { capacity: 2 });
        // Popping frees a slot.
        q.pop();
        q.push(Priority::Batch, 1, 30).unwrap();
    }

    #[test]
    fn close_drains_pending_wakes_poppers_and_rejects_pushes() {
        let q = Arc::new(AdmissionQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close with two queued.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(Priority::Batch, 2, "late").unwrap();
        q.push(Priority::Batch, 1, "later").unwrap();
        // The blocked popper may race close for the first entry; close
        // returns whatever is still pending, in schedule order.
        let popped = {
            let pending = q.close();
            let mut seen: Vec<&str> = pending;
            if let Some(got) = waiter.join().map_err(|_| "popper panicked").unwrap() {
                seen.push(got);
            }
            seen.sort_unstable();
            seen
        };
        assert_eq!(popped, ["late", "later"], "an entry was lost at close");
        assert!(q.is_closed());
        let (_, err) = q.push(Priority::Interactive, 1, "nope").unwrap_err();
        assert_eq!(err, PushError::Shutdown);
        // Pop on a closed empty queue returns None immediately.
        assert_eq!(q.pop(), None);
        // A second close returns nothing.
        assert!(q.close().is_empty());
    }
}
