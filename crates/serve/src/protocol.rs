//! The newline-delimited JSON protocol of `palo-serve`.
//!
//! One request per line in, one response per line out, correlated by
//! `id`. A request names a suite kernel and optionally a size, a lane,
//! a deadline, a trace-line budget, a fault plan and whether a simulated
//! time estimate is wanted:
//!
//! ```json
//! {"id":"r1","kernel":"matmul","size":256,"priority":"interactive",
//!  "deadline_ms":250,"estimate":true}
//! ```
//!
//! Every submitted request receives exactly one response — success,
//! degradation and rejection alike — so a client can account for each
//! line it wrote. A success reports the decision per nest (multi-stage
//! kernels like `3mm` produce several), the degradation-ladder rung each
//! nest landed on, the fidelity and shedding level the request was
//! served at, the queue pressure that drove them, and the run's
//! artifact-cache counter movement. A rejection is typed
//! ([`ErrorKind`]), never a dropped line.

use crate::json::{push_json_f64, push_json_str, Json};
use crate::shed::{Fidelity, ShedLevel};
use palo_core::{CacheStats, FaultPlan, Priority, RunOverrides};
use std::time::Duration;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Correlation id echoed in the response.
    pub id: String,
    /// Suite kernel name (`matmul`, `3mm`, `tp`, …).
    pub kernel: String,
    /// Problem size; the suite's scaled default when absent.
    pub size: Option<usize>,
    /// Scheduling lane.
    pub priority: Priority,
    /// Wall-clock deadline, measured from admission.
    pub deadline: Option<Duration>,
    /// Trace-line budget override for the simulation stage.
    pub max_trace_lines: Option<u64>,
    /// Requested fidelity (`"estimate": false` asks for analytic only).
    pub fidelity: Fidelity,
    /// Per-request fault plan (chaos testing); bypasses the artifact
    /// cache while armed.
    pub faults: Option<FaultPlan>,
}

/// A request line that could not be parsed: the id when one was
/// recoverable, and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// The request's `id`, when the line was well-formed enough to have
    /// one (so the rejection can still be correlated).
    pub id: Option<String>,
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BadRequest {}

impl Request {
    /// Parses one request line. `fallback_id` names the response when
    /// the request carries no `id` of its own (the server passes a
    /// per-connection sequence number).
    ///
    /// Unknown fields are ignored (forward compatibility); known fields
    /// of the wrong type are errors.
    ///
    /// # Errors
    ///
    /// [`BadRequest`] on malformed JSON, a missing `kernel`, or a
    /// mistyped field.
    pub fn parse(line: &str, fallback_id: &str) -> Result<Request, BadRequest> {
        let v =
            Json::parse(line).map_err(|e| BadRequest { id: None, message: e.to_string() })?;
        let id = match v.get("id") {
            None => fallback_id.to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(_) => {
                return Err(BadRequest { id: None, message: "id must be a string".into() })
            }
        };
        let fail = |message: &str| BadRequest { id: Some(id.clone()), message: message.into() };

        let kernel = match v.get("kernel") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err(fail("kernel must be a string")),
            None => return Err(fail("missing kernel")),
        };
        let size = match v.get("size") {
            None | Some(Json::Null) => None,
            Some(s) => match s.as_u64() {
                Some(n) if n > 0 => Some(n as usize),
                _ => return Err(fail("size must be a positive integer")),
            },
        };
        let priority = match v.get("priority") {
            None => Priority::Batch,
            Some(Json::Str(s)) if s == "interactive" => Priority::Interactive,
            Some(Json::Str(s)) if s == "batch" => Priority::Batch,
            Some(_) => return Err(fail("priority must be \"interactive\" or \"batch\"")),
        };
        let deadline = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(d) => match d.as_f64() {
                Some(ms) if ms >= 0.0 && ms.is_finite() => {
                    Some(Duration::from_secs_f64(ms / 1e3))
                }
                _ => return Err(fail("deadline_ms must be a non-negative number")),
            },
        };
        let max_trace_lines = match v.get("max_trace_lines") {
            None | Some(Json::Null) => None,
            Some(m) => match m.as_u64() {
                Some(n) => Some(n),
                None => return Err(fail("max_trace_lines must be a non-negative integer")),
            },
        };
        let fidelity = match v.get("estimate") {
            None => Fidelity::Full,
            Some(Json::Bool(true)) => Fidelity::Full,
            Some(Json::Bool(false)) => Fidelity::Analytic,
            Some(_) => return Err(fail("estimate must be a boolean")),
        };
        let faults = match v.get("faults") {
            None | Some(Json::Null) => None,
            Some(f @ Json::Obj(_)) => {
                let mut plan = FaultPlan::default();
                if let Some(n) = f.get("fail_first_lowerings") {
                    plan.fail_first_lowerings = n
                        .as_u64()
                        .ok_or_else(|| fail("fail_first_lowerings must be an integer"))?;
                }
                if let Some(b) = f.get("trace_overflow") {
                    plan.trace_overflow =
                        b.as_bool().ok_or_else(|| fail("trace_overflow must be a boolean"))?;
                }
                if let Some(b) = f.get("panic_in_optimizer") {
                    plan.panic_in_optimizer = b
                        .as_bool()
                        .ok_or_else(|| fail("panic_in_optimizer must be a boolean"))?;
                }
                Some(plan)
            }
            Some(_) => return Err(fail("faults must be an object")),
        };

        Ok(Request { id, kernel, size, priority, deadline, max_trace_lines, fidelity, faults })
    }

    /// The [`RunOverrides`] this request layers over the session config,
    /// given the deadline *remaining* at dequeue time and the fidelity
    /// the shedding ladder granted.
    pub fn overrides(&self, remaining: Option<Duration>, served: Fidelity) -> RunOverrides {
        RunOverrides {
            deadline: remaining,
            max_trace_lines: self.max_trace_lines,
            // A request that carries no faults explicitly *disarms* any
            // session-wide plan: chaos belongs to the request that asked
            // for it.
            faults: Some(self.faults.unwrap_or_default()),
            simulate: Some(served == Fidelity::Full),
        }
    }

    /// Serializes the request back to one protocol line (used by clients
    /// and the test harnesses).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        push_json_str(&mut out, &self.id);
        out.push_str(",\"kernel\":");
        push_json_str(&mut out, &self.kernel);
        if let Some(size) = self.size {
            out.push_str(&format!(",\"size\":{size}"));
        }
        out.push_str(&format!(",\"priority\":\"{}\"", self.priority));
        if let Some(d) = self.deadline {
            out.push_str(",\"deadline_ms\":");
            push_json_f64(&mut out, d.as_secs_f64() * 1e3);
        }
        if let Some(m) = self.max_trace_lines {
            out.push_str(&format!(",\"max_trace_lines\":{m}"));
        }
        out.push_str(&format!(",\"estimate\":{}", self.fidelity == Fidelity::Full));
        if let Some(f) = self.faults {
            out.push_str(&format!(
                ",\"faults\":{{\"fail_first_lowerings\":{},\"trace_overflow\":{},\
                 \"panic_in_optimizer\":{}}}",
                f.fail_first_lowerings, f.trace_overflow, f.panic_in_optimizer
            ));
        }
        out.push('}');
        out
    }
}

/// Why a request was rejected or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The request line was malformed (bad JSON, unknown kernel, bad
    /// field).
    BadRequest,
    /// The admission queue was full: the request was rejected at the
    /// door rather than buffered without bound.
    QueueFull,
    /// The server is draining: the request was not admitted (or was
    /// still queued when shutdown began).
    Shutdown,
    /// The deadline expired before the request reached a worker.
    DeadlineExpired,
    /// The pipeline failed outright (every ladder rung failed), even
    /// after the retry-with-degradation.
    Failed,
}

impl ErrorKind {
    /// Stable machine-readable name (the `error` field of the response).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::DeadlineExpired => "deadline_expired",
            ErrorKind::Failed => "failed",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Aggregated wall-clock of one pass across a run (the profile line a
/// warm daemon exposes instead of a `--profile` rerun).
#[derive(Debug, Clone, PartialEq)]
pub struct PassTotal {
    /// Pass name (`classify`, `optimize`, `lower`, …).
    pub pass: String,
    /// Total wall-clock milliseconds across the run's requests.
    pub ms: f64,
    /// Pass requests issued by the run.
    pub requests: u32,
    /// How many were served from the artifact cache.
    pub cached: u32,
}

/// The decision for one nest of the request's kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct NestResult {
    /// The nest's name.
    pub name: String,
    /// The degradation-ladder rung whose schedule was accepted.
    pub rung: String,
    /// The classifier's verdict (`Temporal`, `Spatial`, `ContiguousOnly`),
    /// when the optimizer ran.
    pub class: Option<String>,
    /// Tile size per loop variable (empty when the optimizer failed).
    pub tile: Vec<usize>,
    /// The winning candidate's model cost, when the optimizer ran.
    pub predicted_cost: Option<f64>,
    /// Cost-model terms of the winning candidate `[cl1, cl2, cl2_lines,
    /// corder, pref_efficiency]`, when the optimizer ran.
    pub breakdown: Option<[f64; 5]>,
    /// Simulated milliseconds; `None` when simulation was shed, failed,
    /// or not requested.
    pub estimate_ms: Option<f64>,
    /// Per-pass wall-clock totals of this run.
    pub passes: Vec<PassTotal>,
    /// Replay-engine telemetry of the simulation, when it ran:
    /// `[runs, run_lines, cycles_skipped, lines_skipped]`.
    pub replay: Option<[u64; 4]>,
    /// Failures recorded while descending the ladder (rendered).
    pub failures: Vec<String>,
}

/// A successfully served request (possibly degraded — check
/// [`OkResponse::fidelity`] and the per-nest rungs).
#[derive(Debug, Clone, PartialEq)]
pub struct OkResponse {
    /// The kernel served.
    pub kernel: String,
    /// One decision per nest of the kernel.
    pub nests: Vec<NestResult>,
    /// The fidelity the request was *served* at (≤ the requested one).
    pub fidelity: Fidelity,
    /// The shedding-ladder level in force when the request was dequeued.
    pub shed_level: ShedLevel,
    /// The queue-pressure reading that produced that level.
    pub pressure: f64,
    /// Whether the answer came from the degraded retry after a transient
    /// first-attempt failure.
    pub retried: bool,
    /// Artifact-cache counter movement of this run.
    pub cache: CacheStats,
    /// Wall-clock from admission to response.
    pub elapsed: Duration,
}

impl OkResponse {
    /// A canonical rendering of the decision alone — rungs, classes,
    /// tiles and model costs, with timing, caching and load artifacts
    /// excluded. Two runs of the same fault-free request must agree on
    /// this byte-for-byte regardless of worker count, cache state or
    /// load (the soak's determinism assertion).
    pub fn decision_signature(&self) -> String {
        let mut sig = String::new();
        for n in &self.nests {
            sig.push_str(&format!(
                "{}:{}:{}:{:?}:{:?};",
                n.name,
                n.rung,
                n.class.as_deref().unwrap_or("-"),
                n.tile,
                n.predicted_cost
            ));
        }
        sig
    }
}

/// What came back for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Served (possibly at reduced fidelity).
    Ok(OkResponse),
    /// Rejected or failed, with the reason typed.
    Err {
        /// The rejection/failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// One response line, correlated to its request by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: String,
    /// Outcome.
    pub body: ResponseBody,
}

impl Response {
    /// A typed rejection/failure response.
    pub fn error(id: &str, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            body: ResponseBody::Err { kind, message: message.into() },
        }
    }

    /// Whether this is a success.
    pub fn is_ok(&self) -> bool {
        matches!(self.body, ResponseBody::Ok(_))
    }

    /// The success body, when there is one.
    pub fn ok(&self) -> Option<&OkResponse> {
        match &self.body {
            ResponseBody::Ok(ok) => Some(ok),
            ResponseBody::Err { .. } => None,
        }
    }

    /// The error kind, when this is a rejection/failure.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match &self.body {
            ResponseBody::Ok(_) => None,
            ResponseBody::Err { kind, .. } => Some(*kind),
        }
    }

    /// Serializes to one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        push_json_str(&mut out, &self.id);
        match &self.body {
            ResponseBody::Err { kind, message } => {
                out.push_str(",\"ok\":false,\"error\":");
                push_json_str(&mut out, kind.as_str());
                out.push_str(",\"message\":");
                push_json_str(&mut out, message);
            }
            ResponseBody::Ok(ok) => {
                out.push_str(",\"ok\":true,\"kernel\":");
                push_json_str(&mut out, &ok.kernel);
                out.push_str(&format!(
                    ",\"fidelity\":\"{}\",\"shed_level\":\"{}\",\"pressure\":",
                    ok.fidelity, ok.shed_level
                ));
                push_json_f64(&mut out, ok.pressure);
                out.push_str(&format!(",\"retried\":{},\"nests\":[", ok.retried));
                for (i, n) in ok.nests.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, &n.name);
                    out.push_str(",\"rung\":");
                    push_json_str(&mut out, &n.rung);
                    if let Some(class) = &n.class {
                        out.push_str(",\"class\":");
                        push_json_str(&mut out, class);
                    }
                    out.push_str(",\"tile\":[");
                    for (j, t) in n.tile.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&t.to_string());
                    }
                    out.push(']');
                    if let Some(cost) = n.predicted_cost {
                        out.push_str(",\"predicted_cost\":");
                        push_json_f64(&mut out, cost);
                    }
                    if let Some(bd) = n.breakdown {
                        out.push_str(",\"breakdown\":[");
                        for (j, term) in bd.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            push_json_f64(&mut out, *term);
                        }
                        out.push(']');
                    }
                    if let Some(ms) = n.estimate_ms {
                        out.push_str(",\"estimate_ms\":");
                        push_json_f64(&mut out, ms);
                    }
                    out.push_str(",\"passes\":[");
                    for (j, p) in n.passes.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"pass\":");
                        push_json_str(&mut out, &p.pass);
                        out.push_str(",\"ms\":");
                        push_json_f64(&mut out, p.ms);
                        out.push_str(&format!(
                            ",\"requests\":{},\"cached\":{}}}",
                            p.requests, p.cached
                        ));
                    }
                    out.push(']');
                    if let Some(r) = n.replay {
                        out.push_str(&format!(
                            ",\"replay\":[{},{},{},{}]",
                            r[0], r[1], r[2], r[3]
                        ));
                    }
                    out.push_str(",\"failures\":[");
                    for (j, f) in n.failures.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        push_json_str(&mut out, f);
                    }
                    out.push_str("]}");
                }
                let tier = |t: &palo_core::TierStats| {
                    format!(
                        "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bytes_written\":{}}}",
                        t.hits, t.misses, t.evictions, t.bytes_written
                    )
                };
                out.push_str(&format!(
                    "],\"cache\":{{\"hits\":{},\"misses\":{},\"bypasses\":{},\
                     \"anomalies\":{},\"mem\":{},\"disk\":{}}},\"elapsed_ms\":",
                    ok.cache.hits,
                    ok.cache.misses,
                    ok.cache.bypasses,
                    ok.cache.anomalies,
                    tier(&ok.cache.mem),
                    tier(&ok.cache.disk)
                ));
                push_json_f64(&mut out, ok.elapsed.as_secs_f64() * 1e3);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request {
            id: "r-1".into(),
            kernel: "3mm".into(),
            size: Some(128),
            priority: Priority::Interactive,
            deadline: Some(Duration::from_millis(250)),
            max_trace_lines: Some(1_000_000),
            fidelity: Fidelity::Full,
            faults: Some(FaultPlan { fail_first_lowerings: 2, ..FaultPlan::default() }),
        };
        assert_eq!(Request::parse(&req.to_json(), "fallback"), Ok(req));
    }

    #[test]
    fn minimal_request_gets_defaults_and_fallback_id() {
        let req = Request::parse(r#"{"kernel":"matmul"}"#, "#7").unwrap();
        assert_eq!(req.id, "#7");
        assert_eq!(req.kernel, "matmul");
        assert_eq!(req.size, None);
        assert_eq!(req.priority, Priority::Batch);
        assert_eq!(req.deadline, None);
        assert_eq!(req.fidelity, Fidelity::Full);
        assert_eq!(req.faults, None);
    }

    #[test]
    fn bad_requests_are_typed_and_keep_the_id_when_recoverable() {
        // No id recoverable from broken JSON.
        assert_eq!(Request::parse("{oops", "#1").unwrap_err().id, None);
        // Id recoverable from a well-formed line with a bad field.
        let err = Request::parse(r#"{"id":"x","kernel":"tp","size":-3}"#, "#1").unwrap_err();
        assert_eq!(err.id.as_deref(), Some("x"));
        assert!(err.message.contains("size"));
        // Missing kernel.
        let err = Request::parse(r#"{"id":"y"}"#, "#1").unwrap_err();
        assert_eq!(err.id.as_deref(), Some("y"));
        assert!(err.message.contains("kernel"));
        // Unknown fields are ignored.
        assert!(Request::parse(r#"{"kernel":"tp","future_field":1}"#, "#1").is_ok());
    }

    #[test]
    fn overrides_carry_remaining_deadline_and_shed_fidelity() {
        let req = Request::parse(r#"{"kernel":"copy","deadline_ms":100}"#, "#1").unwrap();
        let o = req.overrides(Some(Duration::from_millis(40)), Fidelity::Analytic);
        assert_eq!(o.deadline, Some(Duration::from_millis(40)));
        assert_eq!(o.simulate, Some(false));
        // No explicit faults → the request *disarms* session-wide chaos.
        assert_eq!(o.faults, Some(FaultPlan::default()));
    }

    #[test]
    fn responses_serialize_to_parseable_lines() {
        let ok = Response {
            id: "r1".into(),
            body: ResponseBody::Ok(OkResponse {
                kernel: "matmul".into(),
                nests: vec![NestResult {
                    name: "matmul".into(),
                    rung: "proposed".into(),
                    class: Some("Temporal".into()),
                    tile: vec![64, 512, 16],
                    predicted_cost: Some(1.25e6),
                    breakdown: Some([1.0, 2.0, 3.0, 4.0, 0.5]),
                    estimate_ms: Some(3.5),
                    passes: vec![PassTotal {
                        pass: "optimize".into(),
                        ms: 1.25,
                        requests: 1,
                        cached: 0,
                    }],
                    replay: Some([4, 100, 0, 0]),
                    failures: vec![],
                }],
                fidelity: Fidelity::Full,
                shed_level: ShedLevel::Green,
                pressure: 0.25,
                retried: false,
                cache: CacheStats { hits: 5, misses: 1, ..CacheStats::default() },
                elapsed: Duration::from_millis(12),
            }),
        };
        let v = Json::parse(&ok.to_json()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("fidelity").and_then(Json::as_str), Some("full"));
        let nest = match v.get("nests") {
            Some(Json::Arr(items)) => &items[0],
            other => panic!("nests missing: {other:?}"),
        };
        assert_eq!(nest.get("rung").and_then(Json::as_str), Some("proposed"));
        assert_eq!(nest.get("estimate_ms").and_then(Json::as_f64), Some(3.5));
        let pass = match nest.get("passes") {
            Some(Json::Arr(items)) => &items[0],
            other => panic!("passes missing: {other:?}"),
        };
        assert_eq!(pass.get("pass").and_then(Json::as_str), Some("optimize"));
        assert_eq!(pass.get("requests").and_then(Json::as_u64), Some(1));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(5));
        assert_eq!(cache.get("anomalies").and_then(Json::as_u64), Some(0));
        let mem = cache.get("mem").expect("per-tier counters must serialize");
        assert_eq!(mem.get("evictions").and_then(Json::as_u64), Some(0));
        assert!(cache.get("disk").is_some());

        let err = Response::error("r2", ErrorKind::QueueFull, "queue at capacity (64)");
        let v = Json::parse(&err.to_json()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(err.error_kind(), Some(ErrorKind::QueueFull));
    }

    #[test]
    fn decision_signature_ignores_load_artifacts() {
        let nest = NestResult {
            name: "tp".into(),
            rung: "proposed".into(),
            class: Some("Spatial".into()),
            tile: vec![64, 64],
            predicted_cost: Some(10.0),
            breakdown: None,
            estimate_ms: Some(1.0),
            passes: vec![],
            replay: None,
            failures: vec![],
        };
        let mk = |pressure: f64, level: ShedLevel, hits: u64| OkResponse {
            kernel: "tp".into(),
            nests: vec![nest.clone()],
            fidelity: Fidelity::Full,
            shed_level: level,
            pressure,
            retried: false,
            cache: CacheStats { hits, ..CacheStats::default() },
            elapsed: Duration::from_millis(7),
        };
        assert_eq!(
            mk(0.1, ShedLevel::Green, 0).decision_signature(),
            mk(0.9, ShedLevel::Red, 12).decision_signature()
        );
    }
}
