//! Bounds-checked little-endian byte cursor primitives under [`Codec`].
//!
//! [`Codec`]: crate::Codec

use std::fmt;

/// A failed decode: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid artifact encoding at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for DecodeError {}

/// An append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn write_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (NaN payloads
    /// included).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes without a length prefix (frame payloads).
    pub fn write_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked read cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// A [`DecodeError`] at the current offset.
    pub fn invalid(&self, what: &str) -> DecodeError {
        DecodeError { at: self.pos, what: what.to_string() }
    }

    /// Fails unless every input byte has been consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when trailing bytes remain.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.invalid("trailing bytes after value"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.invalid("unexpected end of input"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input (as for every `read_*`).
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap_or_default()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap_or_default()))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap_or_default()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap_or_default()))
    }

    /// Reads a `usize` encoded as `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input or a value beyond this
    /// platform's `usize`.
    pub fn read_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| self.invalid("usize value exceeds platform width"))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input or a non-boolean byte.
    pub fn read_bool(&mut self) -> Result<bool, DecodeError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.invalid("invalid bool byte")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input or invalid UTF-8.
    pub fn read_str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.read_usize()?;
        if len > self.remaining() {
            return Err(self.invalid("string length exceeds input"));
        }
        let at = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| DecodeError { at, what: "invalid UTF-8 in string".to_string() })
    }

    /// Reads exactly `n` raw bytes (frame payloads).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input.
    pub fn read_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_primitive_round_trips_through_the_cursor() {
        let mut w = ByteWriter::new();
        w.write_u8(0xAB);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX - 1);
        w.write_u128(u128::MAX / 3);
        w.write_i64(-42);
        w.write_usize(123_456);
        w.write_f64(-0.0);
        w.write_bool(true);
        w.write_str("palo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.read_i64().unwrap(), -42);
        assert_eq!(r.read_usize().unwrap(), 123_456);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_str().unwrap(), "palo");
        r.expect_end().unwrap();
    }

    #[test]
    fn reads_past_the_end_fail_with_the_offset() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.read_u8().unwrap(), 1);
        let err = r.read_u64().unwrap_err();
        assert_eq!(err.at, 1);
    }

    #[test]
    fn bad_utf8_and_bad_bool_are_rejected() {
        let mut w = ByteWriter::new();
        w.write_usize(2);
        w.write_raw(&[0xFF, 0xFE]);
        assert!(ByteReader::new(&w.into_bytes()).read_str().is_err());
        assert!(ByteReader::new(&[7]).read_bool().is_err());
    }
}
