//! The versioned, checksummed envelope around one encoded artifact.
//!
//! Every artifact a store persists (and every artifact a bounded memory
//! tier accounts by bytes) is wrapped in a frame:
//!
//! ```text
//! magic     8 bytes  b"PALOART\0"
//! format    u32 LE   FORMAT_VERSION of this envelope layout
//! pass      len-prefixed UTF-8 — the producing pass's stable name
//! pass_ver  u32 LE   the producing pass's schema version
//! length    u64 LE   payload byte count
//! checksum  u64 LE   FNV-1a 64 of the payload bytes
//! payload   `length` bytes — the artifact's [`Codec`] encoding
//! ```
//!
//! [`decode_frame`] validates everything before handing the payload
//! back: magic, envelope format, pass-name sanity, the declared length
//! against the actual byte count (both truncation *and* trailing
//! garbage), and the checksum. Every failure is a typed [`FrameError`]
//! — a store treats any of them as a cache miss plus a recorded
//! anomaly, never as a hard error, because a corrupt or torn on-disk
//! entry must cost a recompute, not an outage.
//!
//! [`Codec`]: crate::Codec

use crate::bytes::{ByteReader, ByteWriter};
use std::fmt;

/// The frame magic: identifies a palo artifact file.
pub const MAGIC: [u8; 8] = *b"PALOART\0";

/// Version of the envelope layout itself (not of any payload schema —
/// those are the per-pass versions folded into cache keys and stamped in
/// the frame header).
pub const FORMAT_VERSION: u32 = 1;

/// Longest accepted pass name; anything larger is header corruption.
const MAX_PASS_NAME: usize = 256;

/// Why a frame failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended inside the header or the declared payload.
    Truncated,
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The envelope format version is not [`FORMAT_VERSION`].
    UnsupportedFormat(u32),
    /// The pass-name field is unreadable (bad length or invalid UTF-8).
    CorruptHeader,
    /// The declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Bytes the header declared.
        declared: u64,
        /// Bytes actually present after the header.
        present: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated artifact frame"),
            FrameError::BadMagic => write!(f, "not an artifact frame (bad magic)"),
            FrameError::UnsupportedFormat(v) => {
                write!(f, "unsupported frame format {v} (expected {FORMAT_VERSION})")
            }
            FrameError::CorruptHeader => write!(f, "corrupt artifact frame header"),
            FrameError::LengthMismatch { declared, present } => {
                write!(f, "frame length mismatch: declared {declared}, present {present}")
            }
            FrameError::ChecksumMismatch => write!(f, "artifact frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A validated frame borrowed from its raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The producing pass's stable name.
    pub pass: &'a str,
    /// The producing pass's schema version.
    pub pass_version: u32,
    /// The artifact's encoded payload (checksum already verified).
    pub payload: &'a [u8],
}

/// FNV-1a 64 over `bytes` — the frame checksum. Not cryptographic; it
/// guards against torn writes and bit rot, not adversaries (the cache
/// directory is as trusted as the binary reading it).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in a validated envelope.
pub fn encode_frame(pass: &str, pass_version: u32, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.write_raw(&MAGIC);
    w.write_u32(FORMAT_VERSION);
    w.write_str(pass);
    w.write_u32(pass_version);
    w.write_u64(payload.len() as u64);
    w.write_u64(checksum(payload));
    w.write_raw(payload);
    w.into_bytes()
}

/// Validates an envelope and returns the borrowed frame.
///
/// # Errors
///
/// A typed [`FrameError`] for every way bytes can fail to be a frame;
/// callers degrade all of them to a cache miss.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame<'_>, FrameError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.read_raw(MAGIC.len()).map_err(|_| FrameError::Truncated)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let format = r.read_u32().map_err(|_| FrameError::Truncated)?;
    if format != FORMAT_VERSION {
        return Err(FrameError::UnsupportedFormat(format));
    }
    // The name length doubles as a corruption tripwire: a huge value
    // means the header itself is damaged, not that a pass has a long
    // name. A sane length with too few bytes behind it is truncation.
    let pass_len = r.read_usize().map_err(|_| FrameError::Truncated)?;
    if pass_len > MAX_PASS_NAME {
        return Err(FrameError::CorruptHeader);
    }
    if pass_len > r.remaining() {
        return Err(FrameError::Truncated);
    }
    let pass_bytes = r.read_raw(pass_len).map_err(|_| FrameError::Truncated)?;
    let pass = std::str::from_utf8(pass_bytes).map_err(|_| FrameError::CorruptHeader)?;
    let pass_version = r.read_u32().map_err(|_| FrameError::Truncated)?;
    let declared = r.read_u64().map_err(|_| FrameError::Truncated)?;
    let sum = r.read_u64().map_err(|_| FrameError::Truncated)?;
    let present = r.remaining() as u64;
    if declared != present {
        return Err(FrameError::LengthMismatch { declared, present });
    }
    let payload = r.read_raw(present as usize).map_err(|_| FrameError::Truncated)?;
    if checksum(payload) != sum {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(Frame { pass, pass_version, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let bytes = encode_frame("optimize", 3, b"payload bytes");
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.pass, "optimize");
        assert_eq!(frame.pass_version, 3);
        assert_eq!(frame.payload, b"payload bytes");

        let empty = encode_frame("validate", 1, b"");
        assert_eq!(decode_frame(&empty).unwrap().payload, b"");
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = encode_frame("simulate", 2, &[7; 32]);
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::LengthMismatch { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn garbage_and_wrong_magic_are_rejected() {
        assert_eq!(
            decode_frame(b"not an artifact frame!!!").unwrap_err(),
            FrameError::BadMagic
        );
        assert_eq!(decode_frame(&[0xFF; 64]).unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn wrong_format_version_is_typed() {
        let mut bytes = encode_frame("lower", 1, b"x");
        bytes[8] = 0xEE; // format version field
        assert!(matches!(decode_frame(&bytes).unwrap_err(), FrameError::UnsupportedFormat(_)));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut bytes = encode_frame("classify", 1, &[1, 2, 3, 4]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(decode_frame(&bytes).unwrap_err(), FrameError::ChecksumMismatch);
    }

    #[test]
    fn trailing_garbage_is_a_length_mismatch() {
        let mut bytes = encode_frame("degrade", 1, b"abc");
        bytes.push(0);
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            FrameError::LengthMismatch { declared: 3, present: 4 }
        ));
    }

    #[test]
    fn corrupt_pass_name_length_is_header_corruption() {
        let mut bytes = encode_frame("optimize", 1, b"x");
        // The pass-name length field sits right after magic + format.
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        let err = decode_frame(&bytes).unwrap_err();
        assert!(matches!(err, FrameError::CorruptHeader | FrameError::Truncated), "{err:?}");
    }

    #[test]
    fn checksum_is_stable() {
        // Pinned: the on-disk contract depends on this exact function.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"palo"), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in b"palo" {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
    }
}
