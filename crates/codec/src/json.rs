//! A minimal, strict JSON reader/writer.
//!
//! The workspace's `serde` is an offline no-op stand-in (see
//! `vendor/README.md`), so the serve protocol's newline-delimited JSON
//! is parsed and emitted by hand. This module began life in
//! `palo-serve` and was promoted here so every crate shares one JSON
//! dialect. The dialect is standard JSON restricted to what
//! the protocol needs: objects, arrays, strings (with escapes and BMP
//! `\uXXXX` including surrogate pairs), `f64` numbers, booleans and
//! `null`. Parsing is strict — trailing garbage, unterminated strings
//! and malformed numbers are errors, never silently accepted — because a
//! daemon that guesses at half-parsed requests is a daemon that serves
//! the wrong nest.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always read as `f64`).
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses exactly one JSON value spanning the whole input.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed input or trailing non-whitespace.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError { at: self.pos, what: what.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so the
                    // next char boundary is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if c.is_control() {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` to `out` as a quoted JSON string with escapes.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in shortest round-trip form (`null` for non-finite
/// values, which JSON cannot express).
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"id":"r1","kernel":"matmul","size":64,"priority":"interactive",
                "deadline_ms":250.0,"faults":{"fail_first_lowerings":2},
                "tags":[1,-2.5,true,null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(v.get("size").and_then(Json::as_u64), Some(64));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        let faults = v.get("faults").unwrap();
        assert_eq!(faults.get("fail_first_lowerings").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("tags"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Bool(true),
                Json::Null
            ]))
        );
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let v = Json::parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\"\\ud800\"",
            "01a",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));

        let mut num = String::new();
        push_json_f64(&mut num, 1.5e300);
        assert_eq!(Json::parse(&num).unwrap().as_f64(), Some(1.5e300));
        let mut nan = String::new();
        push_json_f64(&mut nan, f64::NAN);
        assert_eq!(nan, "null");
    }
}
