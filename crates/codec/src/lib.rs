//! The workspace's serialization layer.
//!
//! The vendored `serde` is an offline no-op stand-in (see
//! `vendor/README.md`), so every byte that leaves a process — the serve
//! protocol's newline-delimited JSON and the persistent artifact store's
//! binary entries — goes through this crate instead:
//!
//! * [`json`] — the strict JSON reader/writer (promoted here from
//!   `palo-serve`, which re-exports it);
//! * [`Codec`] + [`ByteWriter`]/[`ByteReader`] — a deterministic,
//!   little-endian binary encoding for artifact payloads. Every cached
//!   pass artifact implements [`Codec`] in its owning crate;
//! * [`frame`] — the versioned, checksummed envelope around an encoded
//!   artifact. A frame that fails *any* validation (magic, format
//!   version, declared length, checksum) is reported as a typed
//!   [`FrameError`](frame::FrameError) so stores can degrade corrupt
//!   entries to cache misses instead of surfacing errors.
//!
//! The binary encoding is part of the on-disk cache contract: changing
//! how any type encodes invalidates every persisted artifact, so format
//! changes must bump [`frame::FORMAT_VERSION`] (or the owning pass's
//! version) and are pinned by golden-byte tests in
//! `tests/codec_golden.rs`.

mod bytes;
pub mod frame;
pub mod json;

pub use bytes::{ByteReader, ByteWriter, DecodeError};

use std::time::Duration;

/// A type with a deterministic binary encoding.
///
/// # Contract
///
/// * `decode(encode(x)) == x` bit-exactly (floats round-trip through
///   [`f64::to_bits`], so NaN payloads survive);
/// * the encoding is a pure function of the value — no addresses, no
///   hash-map iteration order, no timestamps;
/// * decode never panics on malformed input: every read is
///   bounds-checked and fails with a [`DecodeError`].
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Reads one value back.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;

    /// This value encoded as a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes one value spanning exactly the whole input.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input or trailing bytes.
    fn decode_from_slice(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! int_codec {
    ($($t:ty => $w:ident / $r:ident),* $(,)?) => {$(
        impl Codec for $t {
            fn encode(&self, w: &mut ByteWriter) {
                w.$w(*self);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                r.$r()
            }
        }
    )*};
}

int_codec! {
    u8 => write_u8 / read_u8,
    u32 => write_u32 / read_u32,
    u64 => write_u64 / read_u64,
    u128 => write_u128 / read_u128,
    i64 => write_i64 / read_i64,
    usize => write_usize / read_usize,
    f64 => write_f64 / read_f64,
    bool => write_bool / read_bool,
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_str(self);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.read_str()?.to_string())
    }
}

impl Codec for Duration {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_u64(self.as_secs());
        w.write_u32(self.subsec_nanos());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let secs = r.read_u64()?;
        let nanos = r.read_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(r.invalid("subsecond nanos out of range"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(r.invalid("invalid Option tag")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.read_usize()?;
        // Every element of every in-tree encoding occupies at least one
        // byte, so a length prefix beyond the remaining input is garbage
        // — reject it before reserving memory for it.
        if len > r.remaining() {
            return Err(r.invalid("length prefix exceeds input"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_vec();
        assert_eq!(T::decode_from_slice(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5e300f64);
        round_trip(String::from("héllo\n"));
        round_trip(Duration::new(7, 999_999_999));
        round_trip(Some(42u64));
        round_trip(None::<u64>);
        round_trip(vec![1u64, 2, 3]);
        round_trip((3u32, String::from("x")));
    }

    #[test]
    fn nan_payload_survives() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = v.encode_to_vec();
        assert_eq!(f64::decode_from_slice(&bytes).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u64.encode_to_vec();
        bytes.push(0);
        assert!(u64::decode_from_slice(&bytes).is_err());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = vec![1u64, 2, 3].encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(Vec::<u64>::decode_from_slice(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.write_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let err = Vec::<u64>::decode_from_slice(&bytes).unwrap_err();
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn option_rejects_unknown_tag() {
        assert!(Option::<u64>::decode_from_slice(&[2]).is_err());
    }

    #[test]
    fn duration_rejects_overflowing_nanos() {
        let mut w = ByteWriter::new();
        w.write_u64(1);
        w.write_u32(1_000_000_000);
        assert!(Duration::decode_from_slice(&w.into_bytes()).is_err());
    }
}
