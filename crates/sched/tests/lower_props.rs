//! Property tests: lowering covers the iteration space exactly, for
//! arbitrary split/reorder/fuse pipelines.

use palo_ir::{DType, LoopNest, NestBuilder};
use palo_sched::Schedule;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn nest3(ni: usize, nj: usize, nk: usize) -> LoopNest {
    let mut b = NestBuilder::new("p3", DType::F32);
    let i = b.var("i", ni);
    let j = b.var("j", nj);
    let k = b.var("k", nk);
    let a = b.array("A", &[ni, nk]);
    let bm = b.array("B", &[nk, nj]);
    let c = b.array("C", &[ni, nj]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any combination of (possibly non-dividing) splits visits every
    /// iteration point exactly once.
    #[test]
    fn splits_cover_iteration_space(
        ni in 1usize..9, nj in 1usize..9, nk in 1usize..9,
        ti in 1usize..9, tj in 1usize..9, tk in 1usize..9,
    ) {
        let nest = nest3(ni, nj, nk);
        let mut s = Schedule::new();
        s.split("i", "io", "ii", ti)
            .split("j", "jo", "ji", tj)
            .split("k", "ko", "ki", tk);
        let low = s.lower(&nest).expect("legal");
        let mut seen = BTreeSet::new();
        let mut dup = false;
        low.for_each_point(|p| {
            if !seen.insert(p.to_vec()) {
                dup = true;
            }
        });
        prop_assert!(!dup, "duplicate iteration point");
        prop_assert_eq!(seen.len() as u128, nest.iteration_count());
    }

    /// Fusing two adjacent loops preserves the visited set.
    #[test]
    fn fuse_preserves_points(
        ni in 1usize..8, nj in 1usize..8,
        ti in 1usize..8, tj in 1usize..8,
    ) {
        let nest = nest3(ni, nj, 2);
        let mut s = Schedule::new();
        s.split("i", "io", "ii", ti)
            .split("j", "jo", "ji", tj)
            .reorder(&["io", "jo", "k", "ii", "ji"]);
        let mut fused = s.clone();
        fused.fuse("io", "jo", "f");

        let collect = |s: &Schedule| {
            let mut v = BTreeSet::new();
            s.lower(&nest).expect("legal").for_each_point(|p| {
                v.insert(p.to_vec());
            });
            v
        };
        prop_assert_eq!(collect(&s), collect(&fused));
    }

    /// Reorders never change the visited set, only the order.
    #[test]
    fn reorder_preserves_points(perm in 0usize..6) {
        let nest = nest3(3, 4, 5);
        let orders = [
            ["i", "j", "k"], ["i", "k", "j"], ["j", "i", "k"],
            ["j", "k", "i"], ["k", "i", "j"], ["k", "j", "i"],
        ];
        let mut s = Schedule::new();
        s.reorder(&orders[perm]);
        let low = s.lower(&nest).expect("legal");
        let mut count = 0u128;
        low.for_each_point(|_| count += 1);
        prop_assert_eq!(count, nest.iteration_count());
    }
}
