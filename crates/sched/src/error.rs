//! Scheduling errors.

use std::error::Error;
use std::fmt;

/// Error produced while lowering a [`crate::Schedule`] onto a nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A directive names a loop that does not (or no longer does) exist.
    UnknownLoop {
        /// The missing loop name.
        name: String,
    },
    /// A split/fuse would create a loop name that already exists.
    DuplicateLoop {
        /// The clashing name.
        name: String,
    },
    /// A reorder does not name every live loop exactly once.
    BadReorder {
        /// Diagnostic detail.
        detail: String,
    },
    /// Fuse operands are not adjacent (outer immediately outside inner).
    NotAdjacent {
        /// The outer loop name.
        outer: String,
        /// The inner loop name.
        inner: String,
    },
    /// A split factor or vector width of zero.
    ZeroFactor {
        /// The directive kind that carried the zero.
        what: &'static str,
    },
    /// Vectorize applied to a loop that is not innermost at the end of
    /// lowering.
    VectorizeNotInnermost {
        /// The loop name.
        name: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownLoop { name } => write!(f, "unknown loop {name:?}"),
            SchedError::DuplicateLoop { name } => {
                write!(f, "loop name {name:?} already exists")
            }
            SchedError::BadReorder { detail } => write!(f, "invalid reorder: {detail}"),
            SchedError::NotAdjacent { outer, inner } => {
                write!(f, "loops {outer:?} and {inner:?} are not adjacent; cannot fuse")
            }
            SchedError::ZeroFactor { what } => write!(f, "{what} factor must be nonzero"),
            SchedError::VectorizeNotInnermost { name } => {
                write!(f, "vectorized loop {name:?} is not the innermost loop")
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SchedError::UnknownLoop { name: "z".into() }.to_string().contains("z"));
        assert!(SchedError::BadReorder { detail: "dup".into() }.to_string().contains("dup"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SchedError>();
    }
}
