//! Schedule language and lowering for the palo optimizer.
//!
//! Halide separates an algorithm from its *schedule* — the set of loop
//! transformations applied to it. This crate is the schedule half of the
//! substitution: a list of [`Directive`]s (`split`, `reorder`,
//! `vectorize`, `parallel`, `fuse`, and the paper's new `store_nt`
//! non-temporal-store directive) that is *lowered* onto a
//! [`palo_ir::LoopNest`] to produce a [`LoweredNest`] — the concrete loop
//! structure that the executor walks.
//!
//! # Examples
//!
//! The schedule of the paper's Listing 3 (matmul split 512×32, reordered,
//! vectorized by 8, parallelized):
//!
//! ```
//! use palo_ir::{DType, NestBuilder};
//! use palo_sched::Schedule;
//!
//! let mut b = NestBuilder::new("matmul", DType::F32);
//! let i = b.var("i", 2048);
//! let j = b.var("j", 2048);
//! let k = b.var("k", 2048);
//! let a = b.array("A", &[2048, 2048]);
//! let bm = b.array("B", &[2048, 2048]);
//! let c = b.array("C", &[2048, 2048]);
//! b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
//! let nest = b.build()?;
//!
//! let mut s = Schedule::new();
//! s.split("j", "j_o", "j_i", 512)
//!     .split("i", "i_o", "i_i", 32)
//!     .reorder(&["j_o", "i_o", "k", "i_i", "j_i"])
//!     .vectorize("j_i", 8)
//!     .parallel("j_o");
//! let lowered = s.lower(&nest)?;
//! assert_eq!(lowered.loops().len(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod codec;
mod directive;
mod error;
mod fingerprint;
mod lower;
mod print;

pub use directive::{Directive, Schedule};
pub use error::SchedError;
pub use lower::{Contribution, LoopKind, LoweredLoop, LoweredNest};
