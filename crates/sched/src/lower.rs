//! Lowering a schedule onto a nest.

use crate::directive::{Directive, Schedule};
use crate::error::SchedError;
use palo_ir::{LoopNest, VarId};
use serde::{Deserialize, Serialize};

/// How a lowered loop's index contributes to an original loop variable.
///
/// The value added to `var` is `((idx / divisor) % modulus) * stride`.
/// Plain (unfused) loops have `divisor == 1` and `modulus == trip`, so the
/// contribution reduces to `idx * stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contribution {
    /// The original loop variable this contributes to.
    pub var: VarId,
    /// Multiplier applied to the (divided, wrapped) index.
    pub stride: usize,
    /// Pre-division (used by fused loops).
    pub divisor: usize,
    /// Wrap-around modulus (used by fused loops).
    pub modulus: usize,
}

impl Contribution {
    /// The contribution of this loop at index `idx`.
    pub fn value(&self, idx: usize) -> usize {
        ((idx / self.divisor) % self.modulus) * self.stride
    }
}

/// Execution strategy of one lowered loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Distributed over worker threads.
    Parallel,
    /// Executed with SIMD vectors of the given lane count.
    Vectorized(usize),
}

/// One concrete loop of the lowered nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredLoop {
    /// Loop name (schedule-visible).
    pub name: String,
    /// Trip count.
    pub trip: usize,
    /// Execution strategy.
    pub kind: LoopKind,
    /// Contributions to original loop variables.
    pub contribs: Vec<Contribution>,
}

impl LoweredLoop {
    fn simple(name: String, var: VarId, trip: usize, stride: usize) -> Self {
        LoweredLoop {
            name,
            trip,
            kind: LoopKind::Serial,
            contribs: vec![Contribution { var, stride, divisor: 1, modulus: trip }],
        }
    }
}

/// The result of lowering: a concrete loop structure over the original
/// statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredNest {
    pub(crate) loops: Vec<LoweredLoop>,
    pub(crate) nt_store: bool,
    pub(crate) needs_guard: bool,
    pub(crate) extents: Vec<usize>,
}

impl LoweredNest {
    /// The loops, outermost first.
    pub fn loops(&self) -> &[LoweredLoop] {
        &self.loops
    }

    /// Whether output stores carry the non-temporal hint.
    pub fn nt_store(&self) -> bool {
        self.nt_store
    }

    /// Whether some split does not divide its extent, so iteration points
    /// must be guarded against the original bounds.
    pub fn needs_guard(&self) -> bool {
        self.needs_guard
    }

    /// Extents of the original loop variables (indexed by [`VarId`]).
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total lowered iteration points (including guarded-out tail points).
    pub fn total_points(&self) -> u128 {
        self.loops.iter().map(|l| l.trip as u128).product()
    }

    /// Reconstructs original variable values for one lowered index vector
    /// (`indices[d]` is the index of loop `d`). Returns `false` when the
    /// point lies in a guarded-out tail.
    pub fn point(&self, indices: &[usize], out: &mut [i64]) -> bool {
        debug_assert_eq!(indices.len(), self.loops.len());
        debug_assert_eq!(out.len(), self.extents.len());
        out.fill(0);
        for (l, &idx) in self.loops.iter().zip(indices) {
            for c in &l.contribs {
                out[c.var.index()] += c.value(idx) as i64;
            }
        }
        out.iter().zip(&self.extents).all(|(&v, &e)| (v as usize) < e)
    }

    /// Visits every in-bounds iteration point in lowered order.
    ///
    /// Intended for tests and small problems; the executor implements its
    /// own walker with per-loop batching.
    pub fn for_each_point(&self, mut f: impl FnMut(&[i64])) {
        if let Err(e) = self.try_for_each_point::<std::convert::Infallible, _>(|p| {
            f(p);
            Ok(())
        }) {
            match e {}
        }
    }

    /// [`Self::for_each_point`] with a fallible visitor: stops at the
    /// first error and propagates it.
    ///
    /// # Errors
    ///
    /// Whatever the visitor returns.
    pub fn try_for_each_point<E, F: FnMut(&[i64]) -> Result<(), E>>(
        &self,
        mut f: F,
    ) -> Result<(), E> {
        let n = self.loops.len();
        let mut idx = vec![0usize; n];
        let mut point = vec![0i64; self.extents.len()];
        if n == 0 {
            if self.point(&idx, &mut point) {
                f(&point)?;
            }
            return Ok(());
        }
        'outer: loop {
            if self.point(&idx, &mut point) {
                f(&point)?;
            }
            // odometer increment
            let mut d = n;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.loops[d].trip {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(())
    }

    /// The innermost loop's vector lanes, or 1 when not vectorized.
    pub fn vector_lanes(&self) -> usize {
        match self.loops.last().map(|l| l.kind) {
            Some(LoopKind::Vectorized(lanes)) => lanes,
            _ => 1,
        }
    }

    /// Index of the outermost parallel loop, if any.
    pub fn parallel_loop(&self) -> Option<usize> {
        self.loops.iter().position(|l| l.kind == LoopKind::Parallel)
    }
}

impl Schedule {
    /// Applies the schedule to `nest`, producing the concrete loop
    /// structure.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when a directive names an unknown loop,
    /// introduces a duplicate name, reorders with a non-permutation, fuses
    /// non-adjacent loops, uses a zero factor, or vectorizes a loop that
    /// does not end up innermost.
    pub fn lower(&self, nest: &LoopNest) -> Result<LoweredNest, SchedError> {
        let mut loops: Vec<LoweredLoop> = nest
            .vars()
            .iter()
            .enumerate()
            .map(|(i, v)| LoweredLoop::simple(v.name.clone(), VarId(i), v.extent, 1))
            .collect();
        let mut nt_store = false;
        let mut needs_guard = false;

        let find = |loops: &[LoweredLoop], name: &str| -> Result<usize, SchedError> {
            loops
                .iter()
                .position(|l| l.name == name)
                .ok_or_else(|| SchedError::UnknownLoop { name: name.to_string() })
        };
        let check_free = |loops: &[LoweredLoop], name: &str| -> Result<(), SchedError> {
            if loops.iter().any(|l| l.name == name) {
                Err(SchedError::DuplicateLoop { name: name.to_string() })
            } else {
                Ok(())
            }
        };

        for d in self.directives() {
            match d {
                Directive::Split { var, outer, inner, factor } => {
                    if *factor == 0 {
                        return Err(SchedError::ZeroFactor { what: "split" });
                    }
                    let pos = find(&loops, var)?;
                    if outer != var {
                        check_free(&loops, outer)?;
                    }
                    if inner != var || inner == outer {
                        check_free(&loops, inner)?;
                    }
                    let old = loops[pos].clone();
                    if old.contribs.len() != 1 || old.contribs[0].divisor != 1 {
                        return Err(SchedError::BadReorder {
                            detail: format!("cannot split fused loop {var:?}"),
                        });
                    }
                    let c = old.contribs[0];
                    let outer_trip = old.trip.div_ceil(*factor);
                    if outer_trip * factor != old.trip {
                        needs_guard = true;
                    }
                    let outer_loop = LoweredLoop::simple(
                        outer.clone(),
                        c.var,
                        outer_trip,
                        c.stride * factor,
                    );
                    let inner_loop =
                        LoweredLoop::simple(inner.clone(), c.var, *factor, c.stride);
                    loops.splice(pos..=pos, [outer_loop, inner_loop]);
                }
                Directive::Reorder { order } => {
                    if order.len() != loops.len() {
                        return Err(SchedError::BadReorder {
                            detail: format!(
                                "order names {} loops but nest has {}",
                                order.len(),
                                loops.len()
                            ),
                        });
                    }
                    let mut new_loops = Vec::with_capacity(loops.len());
                    let mut taken = vec![false; loops.len()];
                    for name in order {
                        let pos = find(&loops, name)?;
                        if taken[pos] {
                            return Err(SchedError::BadReorder {
                                detail: format!("loop {name:?} appears twice"),
                            });
                        }
                        taken[pos] = true;
                        new_loops.push(loops[pos].clone());
                    }
                    loops = new_loops;
                }
                Directive::Fuse { outer, inner, fused } => {
                    let po = find(&loops, outer)?;
                    let pi = find(&loops, inner)?;
                    if pi != po + 1 {
                        return Err(SchedError::NotAdjacent {
                            outer: outer.clone(),
                            inner: inner.clone(),
                        });
                    }
                    if fused != outer && fused != inner {
                        check_free(&loops, fused)?;
                    }
                    let (lo, li) = (loops[po].clone(), loops[pi].clone());
                    let mut contribs = Vec::new();
                    for c in &lo.contribs {
                        contribs.push(Contribution { divisor: c.divisor * li.trip, ..*c });
                    }
                    contribs.extend(li.contribs.iter().copied());
                    let fused_loop = LoweredLoop {
                        name: fused.clone(),
                        trip: lo.trip * li.trip,
                        kind: LoopKind::Serial,
                        contribs,
                    };
                    loops.splice(po..=pi, [fused_loop]);
                }
                Directive::Vectorize { var, lanes } => {
                    if *lanes == 0 {
                        return Err(SchedError::ZeroFactor { what: "vectorize" });
                    }
                    let pos = find(&loops, var)?;
                    loops[pos].kind = LoopKind::Vectorized(*lanes);
                }
                Directive::Parallel { var } => {
                    let pos = find(&loops, var)?;
                    loops[pos].kind = LoopKind::Parallel;
                }
                Directive::StoreNt => nt_store = true,
            }
        }

        // A vectorized loop must be innermost in the final order.
        for (i, l) in loops.iter().enumerate() {
            if matches!(l.kind, LoopKind::Vectorized(_)) && i + 1 != loops.len() {
                return Err(SchedError::VectorizeNotInnermost { name: l.name.clone() });
            }
        }

        Ok(LoweredNest { loops, nt_store, needs_guard, extents: nest.extents() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn empty_schedule_is_program_order() {
        let nest = matmul(8);
        let low = Schedule::new().lower(&nest).unwrap();
        assert_eq!(low.loops().len(), 3);
        assert_eq!(low.loops()[0].name, "i");
        assert!(!low.needs_guard());
        assert_eq!(low.total_points(), 512);
    }

    #[test]
    fn split_reorder_roundtrip_counts() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("i", "ii", "it", 4)
            .split("j", "jj", "jt", 2)
            .reorder(&["ii", "jj", "k", "it", "jt"]);
        let low = s.lower(&nest).unwrap();
        assert_eq!(low.total_points(), 512);
        let mut count = 0usize;
        low.for_each_point(|_| count += 1);
        assert_eq!(count, 512);
    }

    #[test]
    fn split_preserves_visited_points() {
        let nest = matmul(4);
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 3); // non-dividing: guard needed
        let low = s.lower(&nest).unwrap();
        assert!(low.needs_guard());
        let mut pts = Vec::new();
        low.for_each_point(|p| pts.push(p.to_vec()));
        assert_eq!(pts.len(), 64); // guarded points skipped
        let mut sorted = pts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn fuse_covers_same_points() {
        let nest = matmul(4);
        let mut s = Schedule::new();
        s.split("i", "ii", "it", 2)
            .split("j", "jj", "jt", 2)
            .reorder(&["ii", "jj", "k", "it", "jt"])
            .fuse("ii", "jj", "f");
        let low = s.lower(&nest).unwrap();
        assert_eq!(low.loops().len(), 4);
        assert_eq!(low.loops()[0].trip, 4);
        let mut pts = Vec::new();
        low.for_each_point(|p| pts.push(p.to_vec()));
        pts.sort();
        pts.dedup();
        assert_eq!(pts.len(), 64);
    }

    #[test]
    fn vectorize_must_be_innermost() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.vectorize("i", 8);
        assert!(matches!(s.lower(&nest), Err(SchedError::VectorizeNotInnermost { .. })));

        let mut s = Schedule::new();
        s.vectorize("k", 8);
        let low = s.lower(&nest).unwrap();
        assert_eq!(low.vector_lanes(), 8);
    }

    #[test]
    fn parallel_is_tracked() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.parallel("i");
        let low = s.lower(&nest).unwrap();
        assert_eq!(low.parallel_loop(), Some(0));
        assert_eq!(Schedule::new().lower(&nest).unwrap().parallel_loop(), None);
    }

    #[test]
    fn unknown_loop_errors() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("z", "a", "b", 2);
        assert!(matches!(s.lower(&nest), Err(SchedError::UnknownLoop { .. })));
    }

    #[test]
    fn duplicate_name_errors() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("i", "j", "i2", 2); // "j" exists
        assert!(matches!(s.lower(&nest), Err(SchedError::DuplicateLoop { .. })));
    }

    #[test]
    fn bad_reorder_errors() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.reorder(&["i", "j"]);
        assert!(matches!(s.lower(&nest), Err(SchedError::BadReorder { .. })));
        let mut s = Schedule::new();
        s.reorder(&["i", "j", "j"]);
        assert!(matches!(s.lower(&nest), Err(SchedError::BadReorder { .. })));
    }

    #[test]
    fn fuse_non_adjacent_errors() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.fuse("i", "k", "f");
        assert!(matches!(s.lower(&nest), Err(SchedError::NotAdjacent { .. })));
    }

    #[test]
    fn zero_factor_errors() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("i", "a", "b", 0);
        assert!(matches!(s.lower(&nest), Err(SchedError::ZeroFactor { .. })));
    }

    #[test]
    fn nt_store_flag_propagates() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.store_nt();
        assert!(s.lower(&nest).unwrap().nt_store());
    }

    #[test]
    fn nested_split_values_reconstruct() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("i", "io", "it", 4).split("it", "itm", "iti", 2);
        let low = s.lower(&nest).unwrap();
        // loops: io (trip 2, stride 4), itm (trip 2, stride 2), iti (trip 2, stride 1), j, k
        let mut pts = std::collections::BTreeSet::new();
        low.for_each_point(|p| {
            pts.insert(p[0]);
        });
        assert_eq!(pts.len(), 8);
        assert_eq!(pts.into_iter().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    }
}
