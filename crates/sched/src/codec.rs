//! [`Codec`] implementations for the schedule language and lowered
//! nests, so optimizer decisions and lowering artifacts can live in the
//! persistent artifact store.
//!
//! Enum variants encode as a leading `u8` tag followed by the variant's
//! fields in declaration order; unknown tags are decode errors (a store
//! written by a newer schema reads as corrupt, which callers degrade to
//! a cache miss). These encodings are part of the on-disk contract —
//! changing one requires bumping the owning pass's version.

use crate::directive::{Directive, Schedule};
use crate::lower::{Contribution, LoopKind, LoweredLoop, LoweredNest};
use palo_codec::{ByteReader, ByteWriter, Codec, DecodeError};
use palo_ir::VarId;

impl Codec for Directive {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Directive::Split { var, outer, inner, factor } => {
                w.write_u8(0);
                w.write_str(var);
                w.write_str(outer);
                w.write_str(inner);
                w.write_usize(*factor);
            }
            Directive::Reorder { order } => {
                w.write_u8(1);
                order.encode(w);
            }
            Directive::Fuse { outer, inner, fused } => {
                w.write_u8(2);
                w.write_str(outer);
                w.write_str(inner);
                w.write_str(fused);
            }
            Directive::Vectorize { var, lanes } => {
                w.write_u8(3);
                w.write_str(var);
                w.write_usize(*lanes);
            }
            Directive::Parallel { var } => {
                w.write_u8(4);
                w.write_str(var);
            }
            Directive::StoreNt => w.write_u8(5),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => Directive::Split {
                var: r.read_str()?.to_string(),
                outer: r.read_str()?.to_string(),
                inner: r.read_str()?.to_string(),
                factor: r.read_usize()?,
            },
            1 => Directive::Reorder { order: Vec::decode(r)? },
            2 => Directive::Fuse {
                outer: r.read_str()?.to_string(),
                inner: r.read_str()?.to_string(),
                fused: r.read_str()?.to_string(),
            },
            3 => {
                Directive::Vectorize { var: r.read_str()?.to_string(), lanes: r.read_usize()? }
            }
            4 => Directive::Parallel { var: r.read_str()?.to_string() },
            5 => Directive::StoreNt,
            _ => return Err(r.invalid("unknown Directive tag")),
        })
    }
}

impl Codec for Schedule {
    fn encode(&self, w: &mut ByteWriter) {
        self.directives.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Schedule { directives: Vec::decode(r)? })
    }
}

impl Codec for Contribution {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_usize(self.var.index());
        w.write_usize(self.stride);
        w.write_usize(self.divisor);
        w.write_usize(self.modulus);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Contribution {
            var: VarId(r.read_usize()?),
            stride: r.read_usize()?,
            divisor: r.read_usize()?,
            modulus: r.read_usize()?,
        })
    }
}

impl Codec for LoopKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            LoopKind::Serial => w.write_u8(0),
            LoopKind::Parallel => w.write_u8(1),
            LoopKind::Vectorized(lanes) => {
                w.write_u8(2);
                w.write_usize(*lanes);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => LoopKind::Serial,
            1 => LoopKind::Parallel,
            2 => LoopKind::Vectorized(r.read_usize()?),
            _ => return Err(r.invalid("unknown LoopKind tag")),
        })
    }
}

impl Codec for LoweredLoop {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_str(&self.name);
        w.write_usize(self.trip);
        self.kind.encode(w);
        self.contribs.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(LoweredLoop {
            name: r.read_str()?.to_string(),
            trip: r.read_usize()?,
            kind: LoopKind::decode(r)?,
            contribs: Vec::decode(r)?,
        })
    }
}

impl Codec for LoweredNest {
    fn encode(&self, w: &mut ByteWriter) {
        self.loops.encode(w);
        w.write_bool(self.nt_store);
        w.write_bool(self.needs_guard);
        self.extents.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(LoweredNest {
            loops: Vec::decode(r)?,
            nt_store: r.read_bool()?,
            needs_guard: r.read_bool()?,
            extents: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_vec();
        assert_eq!(T::decode_from_slice(&bytes).unwrap(), v);
    }

    #[test]
    fn schedules_round_trip() {
        let mut s = Schedule::new();
        s.split("j", "j_o", "j_i", 512)
            .split("i", "i_o", "i_i", 32)
            .reorder(&["j_o", "i_o", "i_i", "j_i"])
            .fuse("j_o", "i_o", "t")
            .vectorize("j_i", 8)
            .parallel("t")
            .store_nt();
        round_trip(s);
        round_trip(Schedule::new());
    }

    #[test]
    fn lowered_nests_round_trip() {
        use palo_ir::{DType, NestBuilder};
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 100);
        let a = b.array("A", &[100]);
        let c = b.array("C", &[100]);
        let rhs = b.load(a, &[i]);
        b.store(c, &[i], rhs);
        let nest = b.build().unwrap();

        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 7).vectorize("i_i", 4).store_nt();
        let lowered = s.lower(&nest).unwrap();
        assert!(lowered.needs_guard());
        round_trip(lowered);
    }

    #[test]
    fn unknown_tags_are_decode_errors() {
        assert!(Directive::decode_from_slice(&[9]).is_err());
        assert!(LoopKind::decode_from_slice(&[7]).is_err());
    }

    #[test]
    fn truncated_schedules_are_errors_not_panics() {
        let mut s = Schedule::new();
        s.split("i", "o", "n", 3).parallel("o");
        let bytes = s.encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(Schedule::decode_from_slice(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
