//! Schedule directives.

use serde::{Deserialize, Serialize};

/// A single scheduling transformation, in the spirit of Halide's
/// scheduling language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directive {
    /// Split loop `var` into `outer` and `inner` with `inner` of size
    /// `factor`. Non-dividing factors are legal: the lowered nest guards
    /// the tail iterations.
    Split {
        /// Name of the loop being split.
        var: String,
        /// Name for the new outer (inter-tile) loop.
        outer: String,
        /// Name for the new inner (intra-tile) loop.
        inner: String,
        /// Inner extent (tile size).
        factor: usize,
    },
    /// Reorder the loops so that `order` (outermost first) is the new
    /// nesting. Must name every current loop exactly once.
    Reorder {
        /// New loop order, outermost first.
        order: Vec<String>,
    },
    /// Fuse two *adjacent* loops `outer` and `inner` into one loop named
    /// `fused` with the product trip count — used by the paper to merge
    /// outer inter-tile loops before parallelizing.
    Fuse {
        /// The outer of the two adjacent loops.
        outer: String,
        /// The inner of the two adjacent loops.
        inner: String,
        /// Name of the fused loop.
        fused: String,
    },
    /// Execute the named loop with SIMD vectors of `lanes` lanes.
    Vectorize {
        /// Loop to vectorize (must be the innermost loop at lowering).
        var: String,
        /// Vector lanes.
        lanes: usize,
    },
    /// Distribute the named loop over worker threads.
    Parallel {
        /// Loop to parallelize.
        var: String,
    },
    /// Emit the output's stores with a non-temporal hint, bypassing the
    /// cache (the scheduling directive this paper adds to Halide).
    StoreNt,
}

/// An ordered list of [`Directive`]s applied to a loop nest.
///
/// Built with the fluent methods below, then applied with
/// [`Schedule::lower`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    pub(crate) directives: Vec<Directive>,
}

impl Schedule {
    /// An empty schedule (lowers to the program-order nest).
    pub fn new() -> Self {
        Schedule::default()
    }

    /// The directive list in application order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Appends a [`Directive::Split`].
    pub fn split(&mut self, var: &str, outer: &str, inner: &str, factor: usize) -> &mut Self {
        self.directives.push(Directive::Split {
            var: var.into(),
            outer: outer.into(),
            inner: inner.into(),
            factor,
        });
        self
    }

    /// Appends a [`Directive::Reorder`].
    pub fn reorder(&mut self, order: &[&str]) -> &mut Self {
        self.directives
            .push(Directive::Reorder { order: order.iter().map(|s| s.to_string()).collect() });
        self
    }

    /// Appends a [`Directive::Fuse`].
    pub fn fuse(&mut self, outer: &str, inner: &str, fused: &str) -> &mut Self {
        self.directives.push(Directive::Fuse {
            outer: outer.into(),
            inner: inner.into(),
            fused: fused.into(),
        });
        self
    }

    /// Appends a [`Directive::Vectorize`].
    pub fn vectorize(&mut self, var: &str, lanes: usize) -> &mut Self {
        self.directives.push(Directive::Vectorize { var: var.into(), lanes });
        self
    }

    /// Appends a [`Directive::Parallel`].
    pub fn parallel(&mut self, var: &str) -> &mut Self {
        self.directives.push(Directive::Parallel { var: var.into() });
        self
    }

    /// Appends a [`Directive::StoreNt`].
    pub fn store_nt(&mut self) -> &mut Self {
        self.directives.push(Directive::StoreNt);
        self
    }

    /// Whether the schedule requests non-temporal stores.
    pub fn uses_nt_stores(&self) -> bool {
        self.directives.iter().any(|d| matches!(d, Directive::StoreNt))
    }

    /// A copy with every execution hint removed — `vectorize`,
    /// `parallel`, and `store_nt` are dropped, while the loop-structure
    /// directives (`split`, `reorder`, `fuse`) are kept.
    ///
    /// This is the first fallback rung of a degradation ladder: the hint
    /// directives affect how iterations execute but never which points
    /// are visited, so stripping them preserves semantics while removing
    /// the most failure-prone part of a proposed schedule.
    pub fn without_execution_hints(&self) -> Schedule {
        Schedule {
            directives: self
                .directives
                .iter()
                .filter(|d| {
                    !matches!(
                        d,
                        Directive::Vectorize { .. }
                            | Directive::Parallel { .. }
                            | Directive::StoreNt
                    )
                })
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_building() {
        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 32).reorder(&["i_o", "i_i"]).parallel("i_o").store_nt();
        assert_eq!(s.directives().len(), 4);
        assert!(s.uses_nt_stores());
    }

    #[test]
    fn empty_schedule_has_no_nt() {
        assert!(!Schedule::new().uses_nt_stores());
    }

    #[test]
    fn without_execution_hints_keeps_structure() {
        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 32)
            .reorder(&["i_o", "i_i"])
            .vectorize("i_i", 8)
            .parallel("i_o")
            .store_nt();
        let stripped = s.without_execution_hints();
        assert_eq!(stripped.directives().len(), 2);
        assert!(!stripped.uses_nt_stores());
        assert!(stripped
            .directives()
            .iter()
            .all(|d| matches!(d, Directive::Split { .. } | Directive::Reorder { .. })));
        // Already-bare schedules are returned unchanged.
        assert_eq!(stripped.without_execution_hints(), stripped);
    }
}
