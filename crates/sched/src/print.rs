//! Pseudo-Halide rendering of schedules (Listing-3 style) and lowered
//! nest rendering.

use crate::directive::{Directive, Schedule};
use crate::lower::{LoopKind, LoweredNest};
use std::fmt;

impl fmt::Display for Schedule {
    /// Renders the schedule in the chained-directive style of the paper's
    /// Listing 3, e.g.
    /// `F.split(j, j_o, j_i, 512).reorder(j_i, i_i, j_o, i_o).vectorize(j_i, 8).parallel(i_o);`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F")?;
        for d in self.directives() {
            match d {
                Directive::Split { var, outer, inner, factor } => {
                    write!(f, ".split({var}, {outer}, {inner}, {factor})")?
                }
                Directive::Reorder { order } => write!(f, ".reorder({})", order.join(", "))?,
                Directive::Fuse { outer, inner, fused } => {
                    write!(f, ".fuse({outer}, {inner}, {fused})")?
                }
                Directive::Vectorize { var, lanes } => write!(f, ".vectorize({var}, {lanes})")?,
                Directive::Parallel { var } => write!(f, ".parallel({var})")?,
                Directive::StoreNt => write!(f, ".store_nt()")?,
            }
        }
        write!(f, ";")
    }
}

impl fmt::Display for LoweredNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (depth, l) in self.loops().iter().enumerate() {
            let pad = "  ".repeat(depth);
            let marker = match l.kind {
                LoopKind::Serial => String::new(),
                LoopKind::Parallel => " // parallel".into(),
                LoopKind::Vectorized(n) => format!(" // vectorize x{n}"),
            };
            writeln!(f, "{pad}for {} in 0..{} {{{marker}", l.name, l.trip)?;
        }
        let pad = "  ".repeat(self.loops().len());
        let nt = if self.nt_store() { " [nt-store]" } else { "" };
        writeln!(f, "{pad}<statement>{nt}")?;
        for depth in (0..self.loops().len()).rev() {
            writeln!(f, "{}}}", "  ".repeat(depth))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{DType, NestBuilder};

    #[test]
    fn listing3_style() {
        let mut s = Schedule::new();
        s.split("j", "j_o", "j_i", 512)
            .split("i", "i_o", "i_i", 32)
            .reorder(&["j_o", "i_o", "i_i", "j_i"])
            .vectorize("j_i", 8)
            .parallel("i_o");
        let out = s.to_string();
        assert!(out.starts_with("F.split(j, j_o, j_i, 512)"));
        assert!(out.contains(".vectorize(j_i, 8)"));
        assert!(out.contains(".parallel(i_o)"));
        assert!(out.ends_with(';'));
    }

    #[test]
    fn lowered_nest_prints_markers() {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 8);
        let src = b.array("s", &[8]);
        let dst = b.array("d", &[8]);
        let ld = b.load(src, &[i]);
        b.store(dst, &[i], ld);
        let nest = b.build().unwrap();
        let mut s = Schedule::new();
        s.vectorize("i", 4).store_nt();
        let low = s.lower(&nest).unwrap();
        let out = low.to_string();
        assert!(out.contains("vectorize x4"));
        assert!(out.contains("[nt-store]"));
    }
}
