//! Stable fingerprints for schedule-layer artifacts.
//!
//! The pass framework in `palo-core` content-addresses its artifact
//! cache; schedules are both cache *inputs* (the Lower pass is keyed by
//! the schedule it lowers) and cache *outputs* (the Optimize pass emits
//! one), so [`Schedule`] and [`LoweredNest`] implement
//! [`palo_ir::StableHash`] here, next to their definitions.

use crate::directive::{Directive, Schedule};
use crate::lower::{Contribution, LoopKind, LoweredLoop, LoweredNest};
use palo_ir::{StableHash, StableHasher};

impl StableHash for Directive {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Directive::Split { var, outer, inner, factor } => {
                h.write_u8(0);
                h.write_str(var);
                h.write_str(outer);
                h.write_str(inner);
                h.write_usize(*factor);
            }
            Directive::Reorder { order } => {
                h.write_u8(1);
                order.stable_hash(h);
            }
            Directive::Fuse { outer, inner, fused } => {
                h.write_u8(2);
                h.write_str(outer);
                h.write_str(inner);
                h.write_str(fused);
            }
            Directive::Vectorize { var, lanes } => {
                h.write_u8(3);
                h.write_str(var);
                h.write_usize(*lanes);
            }
            Directive::Parallel { var } => {
                h.write_u8(4);
                h.write_str(var);
            }
            Directive::StoreNt => h.write_u8(5),
        }
    }
}

impl StableHash for Schedule {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.directives().stable_hash(h);
    }
}

impl StableHash for Contribution {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.var.stable_hash(h);
        h.write_usize(self.stride);
        h.write_usize(self.divisor);
        h.write_usize(self.modulus);
    }
}

impl StableHash for LoopKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            LoopKind::Serial => h.write_u8(0),
            LoopKind::Parallel => h.write_u8(1),
            LoopKind::Vectorized(lanes) => {
                h.write_u8(2);
                h.write_usize(*lanes);
            }
        }
    }
}

impl StableHash for LoweredLoop {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        h.write_usize(self.trip);
        self.kind.stable_hash(h);
        self.contribs.stable_hash(h);
    }
}

impl StableHash for LoweredNest {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.loops().stable_hash(h);
        self.nt_store().stable_hash(h);
        self.needs_guard().stable_hash(h);
        self.extents().stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{DType, NestBuilder};

    fn schedule() -> Schedule {
        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 32).reorder(&["i_o", "i_i"]).vectorize("i_i", 8);
        s
    }

    #[test]
    fn schedule_digest_tracks_directives() {
        let base = schedule().digest();
        assert_eq!(base, schedule().digest());
        let mut other = schedule();
        other.parallel("i_o");
        assert_ne!(base, other.digest());
        // A different split factor is a different schedule.
        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 64).reorder(&["i_o", "i_i"]).vectorize("i_i", 8);
        assert_ne!(base, s.digest());
    }

    #[test]
    fn lowered_nest_digest_tracks_structure() {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 64);
        let src = b.array("src", &[64]);
        let dst = b.array("dst", &[64]);
        let ld = b.load(src, &[i]);
        b.store(dst, &[i], ld);
        let nest = b.build().unwrap();

        let plain = Schedule::new().lower(&nest).unwrap().digest();
        let mut s = Schedule::new();
        s.split("i", "i_o", "i_i", 8);
        let split = s.lower(&nest).unwrap().digest();
        assert_ne!(plain, split);
        assert_eq!(plain, Schedule::new().lower(&nest).unwrap().digest());
    }
}
