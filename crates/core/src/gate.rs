//! [`SimGate`]: a counting gate bounding *concurrent simulations*
//! independently of the batch worker count.
//!
//! Simulation is the one pass whose footprint scales with the modeled
//! hierarchy (flat LRU arrays per cache level) rather than with the nest,
//! so a wide [`BatchDriver`](crate::BatchDriver) can oversubscribe memory
//! even when every other stage runs happily on all workers. The gate is a
//! semaphore in permit semantics: at most
//! [`PipelineConfig::max_concurrent_sims`](crate::PipelineConfig::max_concurrent_sims)
//! runs may sit inside the simulate stage at once; excess workers block
//! *only* for that stage and keep classify/optimize/lower/validate fully
//! parallel.
//!
//! A poisoned gate (a panic while holding a permit unwinds through the
//! mutex) degrades to *unbounded* rather than deadlocking the batch —
//! consistent with the crate's fail-soft posture.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A counting gate over the simulate stage.
#[derive(Debug, Default)]
pub(crate) struct SimGate {
    /// Maximum concurrent permit holders; `None` means unbounded (the
    /// gate never blocks and only tracks the high-water mark).
    cap: Option<usize>,
    in_flight: Mutex<usize>,
    freed: Condvar,
    high_water: AtomicUsize,
}

/// An acquired permit; releases (and wakes one waiter) on drop.
#[derive(Debug)]
pub(crate) struct SimPermit<'g> {
    gate: &'g SimGate,
}

impl SimGate {
    /// A gate admitting at most `cap` concurrent simulations (`None` =
    /// unbounded). A cap of `0` is treated as `1` — a gate nothing can
    /// pass would wedge every run.
    pub(crate) fn new(cap: Option<usize>) -> Self {
        SimGate {
            cap: cap.map(|c| c.max(1)),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Blocks until a permit is free, then takes it.
    pub(crate) fn acquire(&self) -> SimPermit<'_> {
        if let Ok(mut held) = self.in_flight.lock() {
            if let Some(cap) = self.cap {
                while *held >= cap {
                    match self.freed.wait(held) {
                        Ok(h) => held = h,
                        // Poisoned: degrade to unbounded, not deadlock.
                        Err(_) => return self.admit(None),
                    }
                }
            }
            *held += 1;
            let now = *held;
            drop(held);
            return self.admit(Some(now));
        }
        self.admit(None)
    }

    fn admit(&self, now: Option<usize>) -> SimPermit<'_> {
        if let Some(now) = now {
            self.high_water.fetch_max(now, Ordering::Relaxed);
        }
        SimPermit { gate: self }
    }

    /// The most simulations ever in flight at once through this gate.
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

impl Drop for SimPermit<'_> {
    fn drop(&mut self) {
        if let Ok(mut held) = self.gate.in_flight.lock() {
            *held = held.saturating_sub(1);
        }
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_gate_never_blocks_and_tracks_high_water() {
        let gate = SimGate::new(None);
        let a = gate.acquire();
        let b = gate.acquire();
        assert_eq!(gate.high_water(), 2);
        drop(a);
        drop(b);
        assert_eq!(gate.high_water(), 2);
    }

    #[test]
    fn capped_gate_bounds_concurrency_across_threads() {
        let gate = Arc::new(SimGate::new(Some(2)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            handles.push(thread::spawn(move || {
                let _permit = gate.acquire();
                thread::sleep(Duration::from_millis(5));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(gate.high_water() >= 1);
        assert!(gate.high_water() <= 2, "cap exceeded: {}", gate.high_water());
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let gate = SimGate::new(Some(0));
        let permit = gate.acquire(); // would deadlock if the cap stayed 0
        assert_eq!(gate.high_water(), 1);
        drop(permit);
    }
}
