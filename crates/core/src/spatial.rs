//! Algorithm 3: the spatial-locality optimizer (candidate-enumeration
//! driver).
//!
//! For kernels with no temporal reuse but a transposed input (Fig. 2),
//! tiling targets *cache-line* reuse: scoring — the per-tile row counts
//! weighted by the prefetching efficiency `Twidth / lc` (Eqs. 14–17) and
//! the working-set feasibility of Eqs. 18–19 — is delegated to the active
//! [`CostModel`]; this module only enumerates the `(Twidth, Theight)`
//! space, with Algorithm 1 bounding the tile height against the L2
//! (stride-prefetch tests enabled) via [`TileContext::l2_cap`].

use crate::candidates::tile_candidates;
use crate::classify::Class;
use crate::config::OptimizerConfig;
use crate::decision::Decision;
use crate::footprint::Footprints;
use crate::model::{self, CandidatePoint, CostBreakdown, CostModel, TileContext};
use crate::post;
use crate::search::{self, cost_bits, resolve_threads, Candidate, SearchCounters, SearchStats};
use palo_arch::Architecture;
use palo_ir::{AccessPattern, LoopNest, NestInfo};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// One evaluated `(Twidth, Theight)` point, ranked by cost then linear
/// index — the index tie-break reproduces the sequential first-best rule.
struct SpatialCand {
    bd: CostBreakdown,
    tile: Vec<usize>,
    key: [usize; 1],
}

impl Candidate for SpatialCand {
    fn cost_key(&self) -> (u64, u64) {
        (cost_bits(self.bd.total), cost_bits(self.bd.tie))
    }
    fn tie_key(&self) -> &[usize] {
        &self.key
    }
}

/// Runs the spatial optimizer on a nest classified [`Class::Spatial`].
pub fn optimize(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> Decision {
    optimize_with_stats(nest, info, arch, config).0
}

/// [`optimize`], also reporting what the candidate search did.
///
/// Resolves `config.model` into a [`CostModel`] plus the effective
/// `(arch, config)` pair exactly once, then drives
/// [`optimize_with_model`].
pub fn optimize_with_stats(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> (Decision, SearchStats) {
    let resolved = model::resolve(config, arch);
    optimize_with_model(nest, info, &resolved.arch, &resolved.config, resolved.model.as_ref())
}

/// The Algorithm-3 driver under an explicit [`CostModel`] and an
/// already-*effective* `(arch, config)` pair.
///
/// The spatial space is a few hundred points at most, so the driver
/// never consults [`CostModel::lower_bound`] for pruning (DESIGN.md §11).
pub fn optimize_with_model(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
    cost_model: &dyn CostModel,
) -> (Decision, SearchStats) {
    let start = Instant::now();
    let Some(col) = nest.column_var().map(|v| v.index()) else {
        return (post::passthrough(nest, info, arch, config), SearchStats::default());
    };
    let extents = nest.extents();
    let n = extents.len();
    // The row dimension: the output variable just outside the column
    // subscript (2-D kernels in the paper; extra dims stay untiled).
    let out_order = nest.statement().output.var_order();
    let Some(row) = out_order.iter().rev().map(|v| v.index()).find(|&v| v != col) else {
        return (post::passthrough(nest, info, arch, config), SearchStats::default());
    };

    let dts = nest.dtype().size_bytes();
    let fp = Footprints::new(nest, arch.l1().line_size);
    let lanes = arch.vector_lanes(dts);
    let use_nti = post::nti_eligible(info, arch, config);

    let counters = SearchCounters::default();
    let ctx =
        TileContext::spatial(nest, &fp, &extents, arch, config, col, row, use_nti, &counters);

    let width_cands =
        tile_candidates(extents[col], extents[col], config.max_candidates_per_dim, lanes);

    // Flatten the (width, height) space: one plan per width, heights
    // bounded by Algorithm 1 (L2 variant, stride-prefetch tests on).
    struct Plan {
        tw: usize,
        heights: Vec<usize>,
        offset: usize,
    }
    let mut plans: Vec<Plan> = Vec::with_capacity(width_cands.len());
    let mut total = 0usize;
    for &tw in &width_cands {
        let cap = ctx.l2_cap(tw, extents[col], extents[row]);
        let heights = tile_candidates(extents[row], cap, config.max_candidates_per_dim, 1);
        let len = heights.len();
        plans.push(Plan { tw, heights, offset: total });
        total += len;
    }

    let workers = resolve_threads(config.search.threads);
    let best = search::search_min(workers, total, |i, _incumbent| {
        let p = &plans[plans.partition_point(|pl| pl.offset <= i) - 1];
        let (tw, th) = (p.tw, p.heights[i - p.offset]);
        let mut tile = extents.clone();
        tile[col] = tw;
        tile[row] = th;

        let point = CandidatePoint { tile: &tile, x: None, u: None };
        let bd = cost_model.evaluate(&ctx, &point)?;
        counters.evaluated.fetch_add(1, Ordering::Relaxed);
        Some(SpatialCand { bd, tile, key: [i] })
    });
    let stats = counters.snapshot(workers, start.elapsed());

    let Some(SpatialCand { bd, tile, .. }) = best else {
        return (post::passthrough(nest, info, arch, config), stats);
    };

    // Order per Listing 2: untiled outer vars, then row_o, col_o,
    // row_i, col_i — intra walks the output tile row-major so that stores
    // stream and the transposed input is swept column-by-column.
    let inter_order: Vec<usize> =
        (0..n).filter(|&v| v != row && v != col).chain([row, col]).collect();
    let intra_order = inter_order.clone();
    let decision =
        post::emit(nest, arch, Class::Spatial, tile, inter_order, intra_order, use_nti, bd);
    (decision, stats)
}

/// Whether the nest has a transposed input (sanity helper used by tests
/// and the harness).
pub fn has_transposed_input(info: &NestInfo) -> bool {
    info.input_patterns.contains(&AccessPattern::Transposed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{BinOp, DType, Expr, NestBuilder, NestInfo};

    fn tpm(nm: usize) -> LoopNest {
        let mut b = NestBuilder::new("tpm", DType::I32);
        let y = b.var("y", nm);
        let x = b.var("x", nm);
        let a = b.array("A", &[nm, nm]);
        let m = b.array("B", &[nm, nm]);
        let out = b.array("out", &[nm, nm]);
        let rhs = Expr::bin(BinOp::And, b.load(a, &[x, y]), b.load(m, &[y, x]));
        b.store(out, &[y, x], rhs);
        b.build().unwrap()
    }

    fn tp(nm: usize) -> LoopNest {
        let mut b = NestBuilder::new("tp", DType::F32);
        let y = b.var("y", nm);
        let x = b.var("x", nm);
        let a = b.array("A", &[nm, nm]);
        let out = b.array("out", &[nm, nm]);
        let ld = b.load(a, &[x, y]);
        b.store(out, &[y, x], ld);
        b.build().unwrap()
    }

    #[test]
    fn tpm_tiles_tall_and_narrow() {
        let nest = tpm(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        assert_eq!(d.class, Class::Spatial);
        let (ty, tx) = (d.tile[0], d.tile[1]);
        // The model favors maximum height, minimum width (Eq. 15):
        assert!(ty >= tx, "tile height {ty} should be >= width {tx}");
        assert!(tx < 1024, "width must actually be tiled");
        assert!(d.use_nti, "write-only output on x86 should use NT stores");
        d.schedule().lower(&nest).unwrap();
    }

    #[test]
    fn tp_is_tiled_and_vectorized() {
        let nest = tp(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_6700();
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        assert!(d.vector_lanes > 1);
        assert!(d.parallel_var.is_some());
        let low = d.schedule().lower(&nest).unwrap();
        assert!(low.nt_store());
    }

    #[test]
    fn arm_tp_has_no_nti() {
        let nest = tp(512);
        let info = NestInfo::analyze(&nest);
        let d = optimize(&nest, &info, &presets::arm_cortex_a15(), &OptimizerConfig::default());
        assert!(!d.use_nti);
        d.schedule().lower(&nest).unwrap();
    }

    #[test]
    fn engine_matches_exhaustive_and_reports_stats() {
        use crate::config::SearchOptions;
        let nest = tp(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let exhaustive = OptimizerConfig {
            search: SearchOptions::exhaustive(),
            ..OptimizerConfig::default()
        };
        let engine = OptimizerConfig {
            search: SearchOptions { threads: Some(4), prune: true, memo: true },
            ..OptimizerConfig::default()
        };
        let (de, _) = optimize_with_stats(&nest, &info, &arch, &exhaustive);
        let (dg, sg) = optimize_with_stats(&nest, &info, &arch, &engine);
        assert_eq!(de, dg);
        assert!(sg.candidates_evaluated > 0);
    }

    #[test]
    fn spatial_breakdown_reports_efficiency() {
        let nest = tp(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        let lc = Footprints::new(&nest, arch.l1().line_size).lc();
        let expect = d.tile[1] as f64 / lc as f64;
        assert_eq!(d.breakdown.pref_efficiency.to_bits(), expect.to_bits());
        assert_eq!(d.breakdown.total.to_bits(), d.predicted_cost.to_bits());
    }

    #[test]
    fn width_is_a_multiple_of_lanes_when_possible() {
        let nest = tp(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_6700();
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        assert_eq!(d.tile[1] % 8, 0, "tile {:?}", d.tile);
    }
}
