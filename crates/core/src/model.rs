//! The pluggable cost-model layer.
//!
//! The paper's contribution is a *cost model* — prefetch-discounted cold
//! misses `Ctotal = a2·CL1 + a3·CL2` (Eqs. 1–11), the loop-distance cost
//! `Corder` (Eq. 12) and the prefetching efficiency `Twidth/lc`
//! (Eqs. 14–19). This module makes that model a first-class, swappable
//! component instead of arithmetic inlined in the optimizers:
//!
//! * [`CostModel`] — the trait every model implements: score one
//!   [`CandidatePoint`] under a [`TileContext`] into a per-term
//!   [`CostBreakdown`], plus an *admissible* [`CostModel::lower_bound`]
//!   hook so the search engine's branch-and-bound pruning stays sound
//!   per-model;
//! * [`PrefetchAwareModel`] — the paper's analytical model, hoisted
//!   bit-for-bit out of [`crate::temporal`] / [`crate::spatial`] (which
//!   are now thin candidate-enumeration drivers);
//! * [`SimulatedModel`] — a measurement-grade oracle: candidates are
//!   lowered onto a canonical schedule and *traced* on the
//!   `palo-cachesim` hierarchy, scoring by estimated milliseconds;
//! * [`ModelKind`] + [`resolve`] — config-level model selection: the TSS
//!   and TTS baselines are the same analytical machinery under an
//!   *effective* configuration (prefetch awareness off) and, for TTS, a
//!   shifted cache hierarchy ([`shift_hierarchy`]).
//!
//! # Pruning soundness
//!
//! [`CostModel::lower_bound`] must be **admissible**: for every feasible
//! point of the tile it must not exceed the point's
//! [`CostBreakdown::total`]. Returning `Some(0.0)` (never prune) is
//! always sound; returning `None` declares the whole tile infeasible.
//! The engine's strict incumbent comparison keeps cost-*tied* candidates
//! alive, so an admissible bound preserves the deterministic winner
//! exactly (DESIGN.md §10–§11).

use crate::classify::Class;
use crate::config::{ModelKind, OptimizerConfig};
use crate::decision::Decision;
use crate::emu::{emu, emu_cached, l1_params, l2_params, EmuParams};
use crate::error::{catch_panic, PaloError};
use crate::footprint::{Coverage, Footprints};
use crate::order::inter_trip;
use crate::post;
use crate::search::{MemoTable, SearchCounters};
use palo_arch::{Architecture, PrefetcherConfig, SharingScope};
use palo_exec::{estimate_time_with, TimeEstimate, TraceOptions};
use palo_ir::LoopNest;
use palo_sched::LoweredNest;
use serde::{Deserialize, Serialize};

/// Per-term decomposition of one candidate's model cost.
///
/// Which terms are populated depends on the model and the kernel class —
/// see the table in DESIGN.md §11. `total` is what the search ranks by
/// (ties broken by `tie`, then by the engine's lexicographic key);
/// `corder` is filled in by the driver *after* the reorder step, for the
/// winning candidate only (it breaks ties, it never changes `total`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// L1-targeted cold-miss term `CL1` (Eq. 5 generalized).
    pub cl1: f64,
    /// L2-targeted cold-miss term `CL2` (Eq. 10 generalized).
    pub cl2: f64,
    /// Line-granular memory traffic of the `CL2` term (the bandwidth
    /// term's multiplicand; see `OptimizerConfig::bandwidth_term`).
    pub cl2_lines: f64,
    /// Loop-distance cost of the chosen permutation (Eq. 12).
    pub corder: f64,
    /// Prefetching efficiency `Twidth / lc` (Eqs. 14–17) of the column
    /// tile; for [`SimulatedModel`], the fraction of demand accesses
    /// served from prefetched lines.
    pub pref_efficiency: f64,
    /// The ranked scalar: `a2·CL1 + a3·CL2 + am·CL2_lines` for the
    /// temporal model, the efficiency-weighted miss total for the
    /// spatial model, estimated milliseconds for [`SimulatedModel`].
    pub total: f64,
    /// Deterministic tie-breaker ranked after `total` (the undiscounted
    /// line-traffic cost; see `temporal`'s tie rationale).
    pub tie: f64,
}

/// One point of the candidate space handed to a [`CostModel`].
///
/// For [`Class::Temporal`] kernels a point is a tile plus the two
/// order-defining choices of Algorithm 2 — `x`, the outermost intra-tile
/// variable, and `u`, the innermost inter-tile variable. For
/// [`Class::Spatial`] kernels the tile alone defines the point and both
/// are `None`.
#[derive(Debug, Clone, Copy)]
pub struct CandidatePoint<'a> {
    /// Tile size per loop variable (`tile[v] == extent[v]` = untiled).
    pub tile: &'a [usize],
    /// Outermost intra-tile variable (temporal kernels only).
    pub x: Option<usize>,
    /// Innermost inter-tile variable (temporal kernels only).
    pub u: Option<usize>,
}

/// Capacity divisor of a cache level for one thread of a fully-parallel
/// run: private levels are shared by the core's hardware threads,
/// chip-shared levels by all cores (§5.1's ARM correction).
pub fn sharing_divisor(level: &palo_arch::CacheLevel, arch: &Architecture) -> usize {
    match level.sharing {
        SharingScope::Core => arch.threads_per_core.max(1),
        SharingScope::Chip => arch.cores.max(1),
    }
}

/// The prefetch [`Coverage`] regime the miss terms run under: derived
/// from the target's per-level prefetcher descriptions, gated by the
/// `prefetch_discount` ablation switch. Any stream-capable unit anywhere
/// in the hierarchy yields row coverage (Eq. 3, the paper's discount); a
/// hierarchy whose strongest unit is adjacent-pair yields pair coverage;
/// a prefetch-less target pays full line misses even with the discount
/// switch on — the a2/a3 terms follow the hardware, not the flag alone.
pub fn coverage_of(arch: &Architecture, config: &OptimizerConfig) -> Coverage {
    if !config.prefetch_discount {
        return Coverage::None;
    }
    if arch.caches.iter().any(|c| c.prefetcher.covers_streams()) {
        Coverage::Rows
    } else if arch.caches.iter().any(|c| matches!(c.prefetcher, PrefetcherConfig::AdjacentPair))
    {
        Coverage::Pairs
    } else {
        Coverage::None
    }
}

/// Everything a [`CostModel`] may consult about the nest under
/// optimization, shared read-only across the search worker pool.
///
/// The context owns the per-search memo for footprint terms (keyed by
/// `(shape, sizes projected onto the shape's variables)`) and holds the
/// derived weights and budgets the analytical model uses, so the
/// optimizers themselves contain no cost arithmetic.
pub struct TileContext<'a> {
    /// The nest being optimized.
    pub nest: &'a LoopNest,
    /// The (effective) target architecture.
    pub arch: &'a Architecture,
    /// The (effective) optimizer configuration.
    pub config: &'a OptimizerConfig,
    /// The classification the driver is running under.
    pub class: Class,
    /// Footprint machinery of the nest.
    pub fp: &'a Footprints,
    /// Loop extents per variable.
    pub extents: &'a [usize],
    /// The column (contiguous) variable.
    pub col: usize,
    /// The row variable (spatial kernels only).
    pub row: Option<usize>,
    /// Number of deduplicated access shapes.
    pub na: usize,
    /// Number of loop variables.
    pub n: usize,
    /// Data type size in bytes.
    pub dts: usize,
    /// L1 working-set budget in elements (Eq. 1's bound).
    pub l1_budget: f64,
    /// L2 working-set budget in elements (Eq. 6's bound).
    pub l2_budget: f64,
    /// `a2`: L2 access latency (weight of `CL1`).
    pub a2: f64,
    /// `a3`: L3 (or memory) access latency (weight of `CL2`).
    pub a3: f64,
    /// `am`: memory transfer cycles per line (weight of `CL2_lines`;
    /// zero when the bandwidth term is disabled).
    pub am: f64,
    /// Hardware threads of the target.
    pub threads: usize,
    /// Prefetch-coverage regime of the miss terms, derived from the
    /// target's prefetcher descriptions (see [`coverage_of`]).
    pub coverage: Coverage,
    /// Whether the emitted schedule will use non-temporal stores (the
    /// [`SimulatedModel`] scores candidates under the same hint).
    pub use_nti: bool,
    /// Per-search footprint-term memo: `(shape, sizes projected onto the
    /// shape's variables) → (elems, discounted misses, lines)`.
    fp_cache: MemoTable<(usize, Vec<usize>), (f64, f64, f64)>,
    pub(crate) counters: &'a SearchCounters,
}

impl<'a> TileContext<'a> {
    /// The context of a [`Class::Temporal`] search, with the budgets and
    /// weights of Algorithm 2 (Eqs. 1, 6, 11).
    #[allow(clippy::too_many_arguments)]
    pub fn temporal(
        nest: &'a LoopNest,
        fp: &'a Footprints,
        extents: &'a [usize],
        arch: &'a Architecture,
        config: &'a OptimizerConfig,
        col: usize,
        use_nti: bool,
        counters: &'a SearchCounters,
    ) -> Self {
        let dts = nest.dtype().size_bytes();
        let l1_budget = (arch.l1().size_bytes / dts / sharing_divisor(arch.l1(), arch)) as f64;
        let mut l2_budget =
            (arch.l2().size_bytes / dts / sharing_divisor(arch.l2(), arch)) as f64;
        if config.halve_l2_sets && arch.l2().prefetcher.covers_streams() {
            l2_budget /= 2.0;
        }
        Self::assemble(
            nest,
            fp,
            extents,
            arch,
            config,
            Class::Temporal,
            col,
            None,
            dts,
            l1_budget,
            l2_budget,
            use_nti,
            counters,
        )
    }

    /// The context of a [`Class::Spatial`] search, with the budgets of
    /// Algorithm 3 (Eqs. 18–19): the L1 budget is divided by the core's
    /// hardware threads (the column sweep is private per thread).
    #[allow(clippy::too_many_arguments)]
    pub fn spatial(
        nest: &'a LoopNest,
        fp: &'a Footprints,
        extents: &'a [usize],
        arch: &'a Architecture,
        config: &'a OptimizerConfig,
        col: usize,
        row: usize,
        use_nti: bool,
        counters: &'a SearchCounters,
    ) -> Self {
        let dts = nest.dtype().size_bytes();
        let l1_budget = (arch.l1().size_bytes / dts / arch.threads_per_core.max(1)) as f64;
        let mut l2_budget =
            (arch.l2().size_bytes / dts / sharing_divisor(arch.l2(), arch)) as f64;
        if config.halve_l2_sets && arch.l2().prefetcher.covers_streams() {
            l2_budget /= 2.0;
        }
        Self::assemble(
            nest,
            fp,
            extents,
            arch,
            config,
            Class::Spatial,
            col,
            Some(row),
            dts,
            l1_budget,
            l2_budget,
            use_nti,
            counters,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        nest: &'a LoopNest,
        fp: &'a Footprints,
        extents: &'a [usize],
        arch: &'a Architecture,
        config: &'a OptimizerConfig,
        class: Class,
        col: usize,
        row: Option<usize>,
        dts: usize,
        l1_budget: f64,
        l2_budget: f64,
        use_nti: bool,
        counters: &'a SearchCounters,
    ) -> Self {
        let a2 = arch.l2().latency_cycles;
        let a3 = arch.l3().map(|c| c.latency_cycles).unwrap_or(arch.timing.mem_latency_cycles);
        let am = if config.bandwidth_term { arch.timing.mem_transfer_cycles } else { 0.0 };
        TileContext {
            nest,
            arch,
            config,
            class,
            fp,
            extents,
            col,
            row,
            na: fp.shapes().len(),
            n: extents.len(),
            dts,
            l1_budget,
            l2_budget,
            a2,
            a3,
            am,
            threads: arch.total_threads(),
            coverage: coverage_of(arch, config),
            use_nti,
            fp_cache: MemoTable::new(32),
            counters,
        }
    }

    /// `(elems, prefetch-discounted misses, lines)` of shape `a` under
    /// `sizes`, through the per-search memo (bypassed when memoization is
    /// disabled, so the exhaustive reference sweep stays uncached).
    pub fn terms(&self, a: usize, sizes: &[usize]) -> (f64, f64, f64) {
        let compute = || {
            (
                self.fp.elems(a, sizes),
                self.fp.misses_for(a, sizes, self.coverage),
                self.fp.lines(a, sizes),
            )
        };
        if !self.config.search.memo {
            return compute();
        }
        let key: Vec<usize> = self.fp.shapes()[a].vars.iter().map(|&v| sizes[v]).collect();
        self.fp_cache.get_or_compute(
            (a, key),
            &self.counters.memo_hits,
            &self.counters.memo_misses,
            compute,
        )
    }

    /// Algorithm-1 bound of a tile dimension against the **L1** (next-line
    /// row inflation), for rows of `row_len` elements spaced `row_stride`
    /// apart, capped at `cap`.
    pub fn l1_cap(&self, row_len: usize, row_stride: usize, cap: usize) -> usize {
        self.bound(&l1_params(
            self.arch.l1(),
            self.dts,
            row_len,
            row_stride,
            self.arch.threads_per_core,
            cap,
        ))
    }

    /// Algorithm-1 bound of a tile dimension against the **L2** (halved
    /// sets, stride-prefetch tests), capped at `cap`. The set halving
    /// reserves capacity for stream prefetches, so it only applies when
    /// the L2's declared unit actually runs streams; the injected test
    /// lines likewise follow the unit's degree and run-ahead distance.
    pub fn l2_cap(&self, row_len: usize, row_stride: usize, cap: usize) -> usize {
        let l2_pref = &self.arch.l2().prefetcher;
        self.bound(&l2_params(
            self.arch.l2(),
            self.dts,
            row_len,
            row_stride,
            self.arch.threads_per_core,
            if l2_pref.covers_streams() { l2_pref.degree() } else { 0 },
            l2_pref.max_distance(),
            self.config.halve_l2_sets && l2_pref.covers_streams(),
            cap,
        ))
    }

    fn bound(&self, p: &EmuParams<'_>) -> usize {
        if self.config.search.memo {
            emu_cached(p, self.counters)
        } else {
            emu(p)
        }
    }
}

/// A cost model: scores candidate points of the tile-size search.
///
/// Implementations must be deterministic pure functions of
/// `(context, point)` — the engine shares them across its worker pool and
/// the bit-determinism contract (same winner for any worker count)
/// depends on every evaluation returning identical bits every time.
pub trait CostModel: Send + Sync {
    /// Short machine-readable name (`"paper"`, `"tss"`, `"tts"`,
    /// `"sim"`).
    fn name(&self) -> &'static str;

    /// An admissible lower bound on the cost of *every* point of `tile`,
    /// or `None` when the whole tile is infeasible (e.g. its working set
    /// overflows the L2 budget). `Some(0.0)` is always sound and simply
    /// disables pruning for this model.
    fn lower_bound(&self, ctx: &TileContext<'_>, tile: &[usize]) -> Option<f64>;

    /// Scores one candidate point, or `None` when the point is
    /// infeasible (working-set, parallel-grain or structural
    /// constraints).
    fn evaluate(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown>;
}

/// The paper's analytical model (Eqs. 1–19), bit-for-bit the arithmetic
/// previously inlined in the temporal and spatial optimizers.
///
/// The TSS and TTS baselines are this same machinery running under an
/// effective configuration with the prefetch awareness switched off (and,
/// for TTS, a shifted hierarchy) — see [`resolve`] and
/// `palo_baselines::models`.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchAwareModel {
    label: &'static str,
}

impl PrefetchAwareModel {
    /// The paper's model under the context's own configuration.
    pub fn paper() -> Self {
        PrefetchAwareModel { label: "paper" }
    }

    /// The same analytical machinery reporting under a baseline's name
    /// (the baseline's knobs live in the *effective* config/arch of the
    /// context, per [`ModelKind::effective_config`]).
    pub fn named(label: &'static str) -> Self {
        PrefetchAwareModel { label }
    }

    /// Temporal scoring (Algorithm 2's inner loop): feasibility
    /// (Eqs. 1, 6, 13) then `Ctotal = a2·CL1 + a3·CL2 + am·CL2_lines`
    /// (Eqs. 10–11). The float-operation order matches the pre-refactor
    /// optimizer exactly: the golden-decision snapshots assert the
    /// decisions stay bit-identical.
    fn evaluate_temporal(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        let tile = point.tile;
        let (x, u) = (point.x?, point.u?);
        if x == ctx.col || tile[x] <= 1 {
            return None;
        }

        // Working set of the whole tile (Eq. 6).
        let mut ws_l2 = 0.0;
        let mut rows_tile = vec![0.0f64; ctx.na];
        let mut lines_tile = vec![0.0f64; ctx.na];
        for a in 0..ctx.na {
            let (elems, rows, lines) = ctx.terms(a, tile);
            ws_l2 += elems;
            rows_tile[a] = rows;
            lines_tile[a] = lines;
        }
        if ws_l2 > ctx.l2_budget {
            return None;
        }

        let trips: Vec<f64> = (0..ctx.n).map(|v| inter_trip(v, tile, ctx.extents)).collect();
        let ntiles: f64 = trips.iter().product();
        let cl1: f64 = rows_tile.iter().sum::<f64>() * ntiles;
        let cl1_lines: f64 = lines_tile.iter().sum::<f64>() * ntiles;

        // Working set of one iteration of the outermost intra loop
        // (Eq. 1).
        let mut slice = tile.to_vec();
        slice[x] = 1;
        let ws_l1: f64 = (0..ctx.na).map(|a| ctx.terms(a, &slice).0).sum();
        if ws_l1 > ctx.l1_budget {
            return None;
        }

        if ctx.config.parallel_grain_constraint {
            // Eq. 13: the parallelizable outer inter-tile loops (all but
            // the innermost-inter `u` and the column loop) must provide
            // at least one iteration per hardware thread.
            let outer_cap: f64 =
                (0..ctx.n).filter(|&v| v != u && v != ctx.col).map(|v| trips[v]).product();
            if outer_cap < ctx.threads as f64 {
                return None;
            }
        }

        // Eq. 10 generalized.
        let mut cl2 = 0.0;
        let mut cl2_lines = 0.0;
        for a in 0..ctx.na {
            let reuse = if ctx.fp.uses_var(a, u) { 1.0 } else { trips[u] };
            cl2 += rows_tile[a] * ntiles / reuse;
            cl2_lines += lines_tile[a] * ntiles / reuse;
        }
        let total = ctx.a2 * cl1 + ctx.a3 * cl2 + ctx.am * cl2_lines;
        // Undiscounted (line-granular) variant of the cost, used to break
        // ties: the prefetch-discounted model (Eq. 3) makes row cost
        // independent of row length, so candidates that differ only in
        // memory-bus traffic score identically; the line footprint is
        // exactly that traffic.
        let tie = ctx.a2 * cl1_lines + ctx.a3 * cl2_lines;
        Some(CostBreakdown {
            cl1,
            cl2,
            cl2_lines,
            corder: 0.0,
            pref_efficiency: tile[ctx.col] as f64 / ctx.fp.lc() as f64,
            total,
            tie,
        })
    }

    /// Spatial scoring (Algorithm 3): working sets of Eqs. 18–19, then
    /// `CTotal = Σ inputs misses(tile) × ntiles × (Twidth / lc)`
    /// (Eqs. 15, 17).
    fn evaluate_spatial(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        let tile = point.tile;
        let row = ctx.row?;
        let (tw, th) = (tile[ctx.col], tile[row]);
        let lc = ctx.fp.lc();
        let inputs: Vec<usize> =
            (0..ctx.na).filter(|&a| !ctx.fp.shapes()[a].is_output).collect();

        // Working sets (Eqs. 18–19 generalized): transposed inputs pay
        // a full line per row they touch in one column sweep.
        let mut col_slice = vec![1usize; ctx.n];
        col_slice[ctx.col] = tw;
        let ws_l1: f64 = inputs.iter().map(|&a| ctx.fp.lines(a, &col_slice) * lc as f64).sum();
        let ws_l2: f64 = inputs.iter().map(|&a| ctx.fp.elems(a, tile)).sum();
        if ws_l1 > ctx.l1_budget || ws_l2 > ctx.l2_budget {
            return None;
        }
        if ctx.config.parallel_grain_constraint {
            let trips = (ctx.extents[row] as f64 / th as f64).ceil()
                * (ctx.extents[ctx.col] as f64 / tw as f64).ceil();
            if trips < ctx.threads as f64 {
                return None;
            }
        }

        // CTotal = Σ inputs rows(tile) × ntiles × (Tw / lc) (Eqs. 15, 17).
        let ntiles: f64 =
            (0..ctx.n).map(|v| (ctx.extents[v] as f64 / tile[v] as f64).ceil()).product();
        let eff = tw as f64 / lc as f64;
        let c_total: f64 = inputs
            .iter()
            .map(|&a| ctx.fp.misses_for(a, tile, ctx.coverage) * ntiles * eff)
            .sum();
        Some(CostBreakdown {
            cl1: 0.0,
            cl2: 0.0,
            cl2_lines: 0.0,
            corder: 0.0,
            pref_efficiency: eff,
            total: c_total,
            tie: 0.0,
        })
    }
}

impl CostModel for PrefetchAwareModel {
    fn name(&self) -> &'static str {
        self.label
    }

    /// Temporal tiles: feasibility of Eq. 6, then `a2·CL1` — admissible
    /// because `Ctotal = a2·CL1 + a3·CL2 + am·CL2_lines` with every term
    /// non-negative. Spatial tiles never prune (the candidate space is a
    /// few hundred points at most).
    fn lower_bound(&self, ctx: &TileContext<'_>, tile: &[usize]) -> Option<f64> {
        match ctx.class {
            Class::Temporal => {
                let mut ws_l2 = 0.0;
                let mut rows_sum = 0.0;
                for a in 0..ctx.na {
                    let (elems, rows, _) = ctx.terms(a, tile);
                    ws_l2 += elems;
                    rows_sum += rows;
                }
                if ws_l2 > ctx.l2_budget {
                    return None;
                }
                let ntiles: f64 =
                    (0..ctx.n).map(|v| inter_trip(v, tile, ctx.extents)).product();
                Some(ctx.a2 * (rows_sum * ntiles))
            }
            _ => Some(0.0),
        }
    }

    fn evaluate(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        match ctx.class {
            Class::Temporal => self.evaluate_temporal(ctx, point),
            _ => self.evaluate_spatial(ctx, point),
        }
    }
}

/// A measurement-grade oracle behind the same trait: each candidate point
/// is materialized as a canonical schedule (the driver's default orders),
/// lowered, and *traced* on the cache simulator; the score is the
/// estimated wall-clock milliseconds.
///
/// Orders of magnitude more expensive per point than the analytical
/// model — intended for the autotuner's measurement loop and for small
/// problem sizes ([`resolve`] thins the candidate grid accordingly). Its
/// lower bound is `Some(0.0)`: trivially admissible, so branch-and-bound
/// never fires and every enumerated point is measured.
#[derive(Debug, Clone, Default)]
pub struct SimulatedModel {
    /// Trace options of each measurement (budget/deadline guards).
    pub trace: TraceOptions,
}

impl SimulatedModel {
    /// Scores an already-lowered schedule — the shared measurement path
    /// used by both [`CostModel::evaluate`] and the autotuner.
    ///
    /// # Errors
    ///
    /// Returns the trace failure ([`PaloError::Trace`]-convertible) or
    /// [`PaloError::Panicked`] when the simulator panics.
    pub fn score_lowered(
        &self,
        nest: &LoopNest,
        arch: &Architecture,
        lowered: &LoweredNest,
    ) -> Result<CostBreakdown, PaloError> {
        let opts = self.trace;
        let est =
            catch_panic("simulated-model", || estimate_time_with(nest, lowered, arch, &opts))?
                .map_err(PaloError::from)?;
        Ok(Self::breakdown_of(&est))
    }

    /// Maps a simulated [`TimeEstimate`] onto the shared breakdown: the
    /// analytical miss terms become *measured* demand misses.
    fn breakdown_of(est: &TimeEstimate) -> CostBreakdown {
        let stats = &est.stats;
        let mem_lines = stats.mem_traffic_lines() as f64;
        let pref_hits = stats.levels.first().map(|l| l.prefetch_hits).unwrap_or(0) as f64;
        CostBreakdown {
            cl1: stats.levels.first().map(|l| l.demand_misses).unwrap_or(0) as f64,
            cl2: stats.levels.get(1).map(|l| l.demand_misses).unwrap_or(0) as f64,
            cl2_lines: mem_lines,
            corder: 0.0,
            pref_efficiency: if stats.total_accesses > 0 {
                pref_hits / stats.total_accesses as f64
            } else {
                0.0
            },
            total: est.ms,
            tie: mem_lines,
        }
    }
}

impl CostModel for SimulatedModel {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn lower_bound(&self, _ctx: &TileContext<'_>, _tile: &[usize]) -> Option<f64> {
        Some(0.0)
    }

    fn evaluate(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        let decision = canonical_decision(ctx, point)?;
        let lowered = decision.schedule().lower(ctx.nest).ok()?;
        self.score_lowered(ctx.nest, ctx.arch, &lowered).ok()
    }
}

/// Materializes a candidate point as the driver's *default* schedule
/// (the orders Algorithm 2/3 emit before the `Corder` reorder step), so
/// the simulated score measures the tile choice, not an arbitrary
/// permutation.
fn canonical_decision(ctx: &TileContext<'_>, point: &CandidatePoint<'_>) -> Option<Decision> {
    let n = ctx.n;
    let col = ctx.col;
    let tile = point.tile.to_vec();
    let (inter, intra) = match ctx.class {
        Class::Temporal => {
            let (x, u) = (point.x?, point.u?);
            if x == col || point.tile[x] <= 1 {
                return None;
            }
            let intra: Vec<usize> = std::iter::once(x)
                .chain((0..n).filter(|&v| v != x && v != col))
                .chain(std::iter::once(col))
                .collect();
            let mut inter: Vec<usize> = (0..n).filter(|&v| v != u && v != col).collect();
            if col != u {
                inter.push(col);
            }
            inter.push(u);
            (inter, intra)
        }
        _ => {
            let row = ctx.row?;
            let inter: Vec<usize> =
                (0..n).filter(|&v| v != row && v != col).chain([row, col]).collect();
            let intra = inter.clone();
            (inter, intra)
        }
    };
    Some(post::emit(
        ctx.nest,
        ctx.arch,
        ctx.class,
        tile,
        inter,
        intra,
        ctx.use_nti,
        CostBreakdown::default(),
    ))
}

/// Builds a pseudo-architecture whose first two levels are the real L2
/// and L3 (so the level-generic search optimizes one level further out,
/// as TurboTiling does). On two-level platforms the L2 doubles as both.
pub fn shift_hierarchy(arch: &Architecture) -> Architecture {
    let mut shifted = arch.clone();
    let caches = &arch.caches;
    shifted.caches = if caches.len() >= 3 {
        caches[1..].to_vec()
    } else {
        vec![caches[1].clone(), caches[1].clone()]
    };
    shifted
}

/// A [`ModelKind`] resolved into a model instance plus the *effective*
/// architecture and configuration the drivers must run under.
pub struct ResolvedModel {
    /// The model implementation.
    pub model: Box<dyn CostModel>,
    /// The effective architecture (shifted for [`ModelKind::Tts`]).
    pub arch: Architecture,
    /// The effective configuration (prefetch awareness off for the
    /// TSS/TTS baselines, candidate grid thinned for
    /// [`ModelKind::Simulated`]).
    pub config: OptimizerConfig,
}

/// Resolves `config.model` into the model instance and the effective
/// `(arch, config)` pair. Called exactly once per optimization, at the
/// driver entry — the drivers themselves never re-resolve.
pub fn resolve(config: &OptimizerConfig, arch: &Architecture) -> ResolvedModel {
    let kind = config.model;
    ResolvedModel {
        model: match kind {
            ModelKind::Paper => Box::new(PrefetchAwareModel::paper()),
            ModelKind::Tss => Box::new(PrefetchAwareModel::named("tss")),
            ModelKind::Tts => Box::new(PrefetchAwareModel::named("tts")),
            ModelKind::Simulated => Box::new(SimulatedModel::default()),
        },
        arch: kind.effective_arch(arch),
        config: kind.effective_config(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(nm: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", nm);
        let j = b.var("j", nm);
        let k = b.var("k", nm);
        let a = b.array("A", &[nm, nm]);
        let bm = b.array("B", &[nm, nm]);
        let c = b.array("C", &[nm, nm]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    fn ctx_parts(nm: usize) -> (LoopNest, Architecture, OptimizerConfig) {
        (matmul(nm), presets::intel_i7_5930k(), OptimizerConfig::default())
    }

    #[test]
    fn lower_bound_is_admissible_for_the_paper_model() {
        let (nest, arch, config) = ctx_parts(128);
        let fp = Footprints::new(&nest, arch.l1().line_size);
        let extents = nest.extents();
        let counters = SearchCounters::default();
        let ctx =
            TileContext::temporal(&nest, &fp, &extents, &arch, &config, 1, false, &counters);
        let model = PrefetchAwareModel::paper();
        for tile in [vec![8, 64, 16], vec![16, 128, 8], vec![128, 128, 128]] {
            let Some(lb) = model.lower_bound(&ctx, &tile) else { continue };
            for x in 0..3 {
                for u in 0..3 {
                    let point = CandidatePoint { tile: &tile, x: Some(x), u: Some(u) };
                    if let Some(bd) = model.evaluate(&ctx, &point) {
                        assert!(
                            lb <= bd.total,
                            "bound {lb} > total {} for tile {tile:?} x={x} u={u}",
                            bd.total
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_tile_has_no_bound() {
        let (nest, arch, config) = ctx_parts(2048);
        let fp = Footprints::new(&nest, arch.l1().line_size);
        let extents = nest.extents();
        let counters = SearchCounters::default();
        let ctx =
            TileContext::temporal(&nest, &fp, &extents, &arch, &config, 1, false, &counters);
        // The full problem cannot fit the L2 working-set budget.
        let tile = vec![2048, 2048, 2048];
        assert!(PrefetchAwareModel::paper().lower_bound(&ctx, &tile).is_none());
    }

    #[test]
    fn structural_invalid_points_score_none() {
        let (nest, arch, config) = ctx_parts(64);
        let fp = Footprints::new(&nest, arch.l1().line_size);
        let extents = nest.extents();
        let counters = SearchCounters::default();
        let ctx =
            TileContext::temporal(&nest, &fp, &extents, &arch, &config, 1, false, &counters);
        let model = PrefetchAwareModel::paper();
        let tile = vec![16, 64, 16];
        // x on the column loop is structurally invalid.
        assert!(model
            .evaluate(&ctx, &CandidatePoint { tile: &tile, x: Some(1), u: Some(2) })
            .is_none());
        // x on a degenerate (size-1) dimension too.
        let thin = vec![1, 64, 16];
        assert!(model
            .evaluate(&ctx, &CandidatePoint { tile: &thin, x: Some(0), u: Some(2) })
            .is_none());
    }

    #[test]
    fn simulated_model_scores_real_milliseconds() {
        let (nest, arch, config) = ctx_parts(24);
        let fp = Footprints::new(&nest, arch.l1().line_size);
        let extents = nest.extents();
        let counters = SearchCounters::default();
        let ctx =
            TileContext::temporal(&nest, &fp, &extents, &arch, &config, 1, false, &counters);
        let model = SimulatedModel::default();
        let tile = vec![8, 24, 8];
        let bd = model
            .evaluate(&ctx, &CandidatePoint { tile: &tile, x: Some(0), u: Some(2) })
            .expect("simulated score");
        assert!(bd.total > 0.0);
        assert!(bd.cl1 > 0.0, "a 24^3 matmul must miss in L1 at least once");
        assert!((0.0..=1.0).contains(&bd.pref_efficiency));
    }

    #[test]
    fn resolve_shifts_arch_only_for_tts() {
        let arch = presets::intel_i7_5930k();
        let base = OptimizerConfig::default();
        for (kind, name) in [
            (ModelKind::Paper, "paper"),
            (ModelKind::Tss, "tss"),
            (ModelKind::Tts, "tts"),
            (ModelKind::Simulated, "sim"),
        ] {
            let r = resolve(&OptimizerConfig { model: kind, ..base.clone() }, &arch);
            assert_eq!(r.model.name(), name);
            let shifted = kind == ModelKind::Tts;
            assert_eq!(r.arch.l1().size_bytes != arch.l1().size_bytes, shifted);
        }
    }

    #[test]
    fn shift_hierarchy_on_arm_reuses_l2() {
        let arm = presets::arm_cortex_a15();
        let shifted = shift_hierarchy(&arm);
        assert_eq!(shifted.caches.len(), 2);
        assert_eq!(shifted.caches[0].size_bytes, arm.l2().size_bytes);
    }
}
