//! The unified error type of the optimization pipeline.
//!
//! Every fallible stage — IR construction, schedule lowering, trace and
//! compute execution, cache-simulator configuration, the optimizer itself
//! — reports through [`PaloError`], so callers of
//! [`Pipeline::run`](crate::Pipeline::run) handle one type instead of a
//! zoo of per-crate errors.

use palo_cachesim::SimConfigError;
use palo_exec::{ExecError, TraceError};
use palo_ir::IrError;
use palo_sched::SchedError;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Any failure the optimization pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum PaloError {
    /// Building or validating a loop nest failed.
    Ir(IrError),
    /// Lowering a schedule onto a nest failed (illegal directive list).
    Sched(SchedError),
    /// Compute-mode execution failed (out-of-bounds access or reference
    /// lowering failure).
    Exec(ExecError),
    /// Trace-mode execution failed for a reason other than a resource
    /// guard (an internally inconsistent lowered nest).
    Trace(TraceError),
    /// The cache simulator rejected the architecture description.
    Sim(SimConfigError),
    /// The architecture description failed validation.
    Arch(String),
    /// The persistent artifact store could not be opened (unwritable
    /// cache directory). Corrupt *entries* never raise this — they
    /// degrade to cache misses; only a store that can never persist
    /// anything surfaces an error, at session construction.
    Store {
        /// What failed, including the offending path.
        detail: String,
    },
    /// A resource budget (e.g. trace-line budget, autotuner evaluation
    /// budget) was exhausted before the stage finished.
    BudgetExceeded {
        /// What ran out, e.g. `"trace lines"`.
        what: &'static str,
        /// The configured limit.
        limit: u64,
    },
    /// A wall-clock deadline expired before the stage finished.
    DeadlineExceeded {
        /// The configured wall-clock budget.
        budget: Duration,
    },
    /// A pipeline stage panicked; the panic was caught and isolated.
    Panicked {
        /// Which stage panicked, e.g. `"optimizer"`.
        context: &'static str,
        /// The panic payload rendered as a string, when it was one.
        message: String,
    },
    /// A configured [`FaultPlan`](crate::FaultPlan) injection point fired.
    FaultInjected {
        /// Which injection site fired, e.g. `"lowering"`.
        site: &'static str,
    },
    /// Compute-mode validation found the optimized schedule produced
    /// different values than the program-order reference.
    SemanticsMismatch {
        /// Human-readable description of the first divergence.
        detail: String,
    },
}

impl fmt::Display for PaloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaloError::Ir(e) => write!(f, "IR error: {e}"),
            PaloError::Sched(e) => write!(f, "schedule error: {e}"),
            PaloError::Exec(e) => write!(f, "execution error: {e}"),
            PaloError::Trace(e) => write!(f, "trace error: {e}"),
            PaloError::Sim(e) => write!(f, "cache simulator config error: {e}"),
            PaloError::Arch(msg) => write!(f, "invalid architecture: {msg}"),
            PaloError::Store { detail } => write!(f, "artifact store error: {detail}"),
            PaloError::BudgetExceeded { what, limit } => {
                write!(f, "resource budget exhausted: {what} limit {limit}")
            }
            PaloError::DeadlineExceeded { budget } => {
                write!(f, "deadline of {budget:?} exceeded")
            }
            PaloError::Panicked { context, message } => {
                write!(f, "{context} panicked: {message}")
            }
            PaloError::FaultInjected { site } => {
                write!(f, "injected fault fired at {site}")
            }
            PaloError::SemanticsMismatch { detail } => {
                write!(f, "optimized schedule changed program semantics: {detail}")
            }
        }
    }
}

impl Error for PaloError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PaloError::Ir(e) => Some(e),
            PaloError::Sched(e) => Some(e),
            PaloError::Exec(e) => Some(e),
            PaloError::Trace(e) => Some(e),
            PaloError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for PaloError {
    fn from(e: IrError) -> Self {
        PaloError::Ir(e)
    }
}

impl From<SchedError> for PaloError {
    fn from(e: SchedError) -> Self {
        PaloError::Sched(e)
    }
}

impl From<ExecError> for PaloError {
    fn from(e: ExecError) -> Self {
        PaloError::Exec(e)
    }
}

impl From<SimConfigError> for PaloError {
    fn from(e: SimConfigError) -> Self {
        PaloError::Sim(e)
    }
}

impl From<TraceError> for PaloError {
    fn from(e: TraceError) -> Self {
        match e {
            // Resource-guard aborts map onto the pipeline-level guard
            // variants so callers match one variant regardless of which
            // stage hit the guard.
            TraceError::LineBudgetExceeded { limit } => {
                PaloError::BudgetExceeded { what: "trace lines", limit }
            }
            TraceError::DeadlineExceeded { budget } => PaloError::DeadlineExceeded { budget },
            other => PaloError::Trace(other),
        }
    }
}

impl PaloError {
    /// Whether the error is a resource-guard abort (budget or deadline)
    /// rather than a genuine failure.
    pub fn is_resource_guard(&self) -> bool {
        matches!(self, PaloError::BudgetExceeded { .. } | PaloError::DeadlineExceeded { .. })
    }
}

/// Runs `f` with panics caught and converted to
/// [`PaloError::Panicked`], so one misbehaving stage (or autotuner
/// candidate) cannot take down the whole pipeline.
pub fn catch_panic<T>(context: &'static str, f: impl FnOnce() -> T) -> Result<T, PaloError> {
    // The closures passed here only touch owned/cloned state, so
    // observing state after an unwound panic is not a concern.
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        PaloError::Panicked { context, message }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_guard_errors_map_to_pipeline_guards() {
        let e: PaloError = TraceError::LineBudgetExceeded { limit: 7 }.into();
        assert_eq!(e, PaloError::BudgetExceeded { what: "trace lines", limit: 7 });
        assert!(e.is_resource_guard());

        let budget = Duration::from_millis(3);
        let e: PaloError = TraceError::DeadlineExceeded { budget }.into();
        assert_eq!(e, PaloError::DeadlineExceeded { budget });
        assert!(e.is_resource_guard());

        let e: PaloError = TraceError::MissingLoopDelta { loop_name: "i".into() }.into();
        assert!(matches!(e, PaloError::Trace(_)));
        assert!(!e.is_resource_guard());
    }

    #[test]
    fn catch_panic_reports_str_and_string_payloads() {
        let e = catch_panic("stage", || panic!("boom")).unwrap_err();
        assert_eq!(e, PaloError::Panicked { context: "stage", message: "boom".into() });
        let e = catch_panic("stage", || panic!("{}", format!("id {}", 42))).unwrap_err();
        assert_eq!(e, PaloError::Panicked { context: "stage", message: "id 42".into() });
        assert_eq!(catch_panic("stage", || 5).unwrap(), 5);
    }

    #[test]
    fn display_is_prefixed_by_stage() {
        let e = PaloError::Arch("no caches".into());
        assert!(e.to_string().contains("invalid architecture"));
        let e = PaloError::FaultInjected { site: "lowering" };
        assert!(e.to_string().contains("lowering"));
    }
}
