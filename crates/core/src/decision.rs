//! The optimizer's output.

use crate::classify::Class;
use crate::model::CostBreakdown;
use palo_sched::Schedule;
use serde::{Deserialize, Serialize};

/// Everything the optimizer decided for one nest: the classification, the
/// tile, the loop orders, the standard optimizations, the predicted model
/// cost, and the emitted [`Schedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Outcome of the classification step.
    pub class: Class,
    /// Tile size per original loop variable (`tile[v] == extent[v]` means
    /// the loop is untiled).
    pub tile: Vec<usize>,
    /// Inter-tile loop order, outermost first (variable indices). Empty
    /// when no loop was tiled.
    pub inter_order: Vec<usize>,
    /// Intra-tile loop order, outermost first (variable indices).
    pub intra_order: Vec<usize>,
    /// Whether non-temporal stores were selected.
    pub use_nti: bool,
    /// Vector lanes of the innermost loop (1 = not vectorized).
    pub vector_lanes: usize,
    /// Variable whose (inter-tile) loop is parallelized, if any.
    pub parallel_var: Option<usize>,
    /// The model cost of the winning candidate (`Ctotal`, or the spatial
    /// `CTotal`; 0 for contiguous-only kernels). Always equals
    /// `breakdown.total`.
    pub predicted_cost: f64,
    /// Per-term decomposition of the winning candidate's cost under the
    /// model that scored the search (all-zero for contiguous-only
    /// kernels, which skip the search).
    pub breakdown: CostBreakdown,
    /// The emitted schedule.
    pub(crate) sched: Schedule,
}

impl Decision {
    /// The schedule to lower and execute.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Consumes the decision, returning the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.sched
    }
}
