//! The fault-tolerant optimization pipeline.
//!
//! [`Pipeline`] runs the full optimize → lower → validate → simulate flow
//! as a *guarded* computation: every stage reports through
//! [`PaloError`](crate::PaloError) instead of panicking, and when the
//! proposed schedule cannot be used the pipeline walks a **degradation
//! ladder** instead of failing outright:
//!
//! 1. [`Rung::Proposed`] — the optimizer's (or caller's) schedule;
//! 2. [`Rung::Stripped`] — the same schedule with the execution hints
//!    (`vectorize`, `parallel`, `store_nt`) removed, keeping the loop
//!    structure ([`Schedule::without_execution_hints`]);
//! 3. [`Rung::Baseline`] — the paper's §5.1 baseline (column loop rotated
//!    innermost, vectorized, outer loop parallelized, nothing tiled);
//! 4. [`Rung::Naive`] — the empty schedule, i.e. the program-order nest,
//!    which every valid nest can lower.
//!
//! The achieved rung and every failure encountered on the way down are
//! recorded in the [`PipelineReport`], so degradation is observable, not
//! silent. Resource guards ([`ResourceBudget`]) bound the cache
//! simulation in both trace lines and wall-clock time, and a
//! [`FaultPlan`] can inject failures at each guarded site to exercise the
//! ladder in tests.

use crate::config::ModelKind;
use crate::decision::Decision;
use crate::error::{catch_panic, PaloError};
use crate::model::CostBreakdown;
use crate::search::SearchStats;
use crate::Optimizer;
use crate::OptimizerConfig;
use palo_arch::Architecture;
use palo_cachesim::Hierarchy;
use palo_exec::{estimate_time_with, run, run_reference, Buffers, TimeEstimate, TraceOptions};
use palo_ir::LoopNest;
use palo_sched::{LoweredNest, Schedule};
use std::time::{Duration, Instant};

/// A rung of the degradation ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The optimizer's (or caller's) proposed schedule was used.
    Proposed,
    /// The proposed schedule with execution hints stripped.
    Stripped,
    /// The basic developer baseline schedule.
    Baseline,
    /// The untransformed program-order nest.
    Naive,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rung::Proposed => "proposed",
            Rung::Stripped => "stripped",
            Rung::Baseline => "baseline",
            Rung::Naive => "naive",
        };
        f.write_str(s)
    }
}

/// One failure encountered while descending the ladder (or while
/// simulating the accepted schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct RungFailure {
    /// The rung that was being attempted when the failure occurred.
    pub rung: Rung,
    /// What went wrong.
    pub error: PaloError,
}

/// Resource guards for the expensive stages of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum cache-line accesses the trace simulation may issue before
    /// aborting with [`PaloError::BudgetExceeded`] (`None` = unlimited).
    pub max_trace_lines: Option<u64>,
    /// Wall-clock budget for one whole [`Pipeline::run`] call; the
    /// remainder at simulation time bounds the trace walk
    /// (`None` = unlimited).
    pub deadline: Option<Duration>,
}

/// Deterministic fault injection for exercising the degradation ladder.
///
/// All sites default to off; enabling them is a *runtime* configuration
/// choice so the release pipeline and the fault tests run the same code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the first `n` schedule-lowering attempts with
    /// [`PaloError::FaultInjected`]. With a distinct proposed schedule,
    /// `1` forces [`Rung::Stripped`], `2` forces [`Rung::Baseline`],
    /// `3` forces [`Rung::Naive`] and `4` exhausts the ladder.
    pub fail_first_lowerings: u64,
    /// Force a zero trace-line budget so the simulation stage aborts with
    /// [`PaloError::BudgetExceeded`].
    pub trace_overflow: bool,
    /// Panic inside the optimizer stage; the pipeline must catch it and
    /// degrade to [`Rung::Baseline`].
    pub panic_in_optimizer: bool,
}

impl FaultPlan {
    /// Whether any injection site is armed.
    pub fn armed(&self) -> bool {
        *self != FaultPlan::default()
    }
}

/// Configuration of a [`Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Switches forwarded to the [`Optimizer`].
    pub optimizer: OptimizerConfig,
    /// Resource guards for simulation.
    pub budget: ResourceBudget,
    /// Ladder candidates are validated bit-exactly against the
    /// program-order interpreter when the nest's iteration count is below
    /// this bound (compute-mode execution is too slow beyond it).
    pub validate_semantics_below: u128,
    /// Run the cache simulation of the accepted schedule and attach a
    /// [`TimeEstimate`] to the report.
    pub simulate: bool,
    /// Fault injection sites (all off by default).
    pub faults: FaultPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            optimizer: OptimizerConfig::default(),
            budget: ResourceBudget::default(),
            validate_semantics_below: 4096,
            simulate: true,
            faults: FaultPlan::default(),
        }
    }
}

/// What happened during one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The ladder rung whose schedule was accepted.
    pub rung: Rung,
    /// Every failure encountered on the way (ladder descents and
    /// simulation-stage failures). Empty on a clean run.
    pub failures: Vec<RungFailure>,
    /// The simulated time estimate of the accepted schedule; `None` when
    /// simulation was disabled or failed (the failure is recorded).
    pub estimate: Option<TimeEstimate>,
    /// What the optimizer's candidate search did (workers, candidates
    /// evaluated/pruned, memo hit rates, wall time); `None` when the
    /// optimizer stage was skipped ([`Pipeline::run_schedule`]) or
    /// failed.
    pub search: Option<SearchStats>,
    /// Which cost model scored the candidate search
    /// ([`OptimizerConfig::model`]).
    pub model: ModelKind,
    /// Per-term cost decomposition of the winning schedule under that
    /// model; `None` when the optimizer stage was skipped or failed.
    pub breakdown: Option<CostBreakdown>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Whether the pipeline had to fall back below [`Rung::Proposed`].
    pub fn fallback_fired(&self) -> bool {
        self.rung != Rung::Proposed
    }
}

/// The result of a successful (possibly degraded) pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The optimizer's decision; `None` when the optimizer itself failed
    /// or when the caller supplied the schedule via
    /// [`Pipeline::run_schedule`].
    pub decision: Option<Decision>,
    /// The accepted schedule (of the reported rung).
    pub schedule: Schedule,
    /// The accepted schedule lowered onto the nest, ready to execute.
    pub lowered: LoweredNest,
    /// The run's report: achieved rung, recorded failures, estimate.
    pub report: PipelineReport,
}

/// The guarded optimize → lower → validate → simulate flow.
///
/// # Examples
///
/// ```
/// use palo_arch::presets;
/// use palo_core::{Pipeline, Rung};
/// use palo_ir::{DType, NestBuilder};
///
/// let mut b = NestBuilder::new("copy", DType::F32);
/// let i = b.var("i", 64);
/// let j = b.var("j", 64);
/// let src = b.array("src", &[64, 64]);
/// let dst = b.array("dst", &[64, 64]);
/// let ld = b.load(src, &[i, j]);
/// b.store(dst, &[i, j], ld);
/// let nest = b.build()?;
///
/// let out = Pipeline::new(&presets::intel_i7_6700()).run(&nest)?;
/// assert_eq!(out.report.rung, Rung::Proposed);
/// assert!(out.report.estimate.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    arch: Architecture,
    config: PipelineConfig,
}

/// Internal per-run mutable state (fault counters, failure log).
struct RunState {
    lowerings_attempted: u64,
    failures: Vec<RungFailure>,
}

impl Pipeline {
    /// A pipeline for `arch` with default configuration.
    pub fn new(arch: &Architecture) -> Self {
        Pipeline { arch: arch.clone(), config: PipelineConfig::default() }
    }

    /// A pipeline with an explicit configuration.
    pub fn with_config(arch: &Architecture, config: PipelineConfig) -> Self {
        Pipeline { arch: arch.clone(), config }
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the optimizer on `nest` and executes the degradation ladder.
    ///
    /// # Errors
    ///
    /// Returns an error only when the nest cannot be processed at all:
    /// the architecture fails validation, the cache simulator rejects it,
    /// or every ladder rung — including the program-order nest — fails.
    /// An optimizer failure alone is *not* an error: the pipeline
    /// degrades and records the failure in the report.
    pub fn run(&self, nest: &LoopNest) -> Result<PipelineOutcome, PaloError> {
        let start = Instant::now();
        self.validate_arch()?;
        let mut state = RunState { lowerings_attempted: 0, failures: Vec::new() };

        let optimizer = Optimizer::with_config(&self.arch, self.config.optimizer.clone());
        let faults = self.config.faults;
        let (decision, search) = match catch_panic("optimizer", || {
            if faults.panic_in_optimizer {
                panic!("injected optimizer fault");
            }
            optimizer.optimize_with_stats(nest)
        }) {
            Ok((d, s)) => (Some(d), Some(s)),
            Err(e) => {
                state.failures.push(RungFailure { rung: Rung::Proposed, error: e });
                (None, None)
            }
        };

        let proposed = decision.as_ref().map(|d| d.schedule().clone());
        self.finish(nest, decision, proposed, search, state, start)
    }

    /// Executes the degradation ladder for a caller-supplied schedule
    /// (skipping the optimizer stage).
    ///
    /// The schedule may be arbitrary — even illegal for `nest`; an
    /// illegal schedule simply fails its rung and the ladder continues.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_schedule(
        &self,
        nest: &LoopNest,
        proposed: &Schedule,
    ) -> Result<PipelineOutcome, PaloError> {
        let start = Instant::now();
        self.validate_arch()?;
        let state = RunState { lowerings_attempted: 0, failures: Vec::new() };
        self.finish(nest, None, Some(proposed.clone()), None, state, start)
    }

    fn validate_arch(&self) -> Result<(), PaloError> {
        self.arch.validate().map_err(PaloError::Arch)?;
        // Reject architectures the simulator cannot model before any
        // stage constructs a hierarchy (which would panic).
        Hierarchy::try_from_architecture(&self.arch)?;
        Ok(())
    }

    /// Walks the ladder, simulates the accepted schedule, and assembles
    /// the outcome.
    fn finish(
        &self,
        nest: &LoopNest,
        decision: Option<Decision>,
        proposed: Option<Schedule>,
        search: Option<SearchStats>,
        mut state: RunState,
        start: Instant,
    ) -> Result<PipelineOutcome, PaloError> {
        let mut ladder: Vec<(Rung, Schedule)> = Vec::new();
        if let Some(p) = &proposed {
            ladder.push((Rung::Proposed, p.clone()));
            let stripped = p.without_execution_hints();
            if stripped != *p {
                ladder.push((Rung::Stripped, stripped));
            }
        }
        ladder.push((Rung::Baseline, baseline_schedule(nest, &self.arch)));
        ladder.push((Rung::Naive, Schedule::new()));

        let mut accepted: Option<(Rung, Schedule, LoweredNest)> = None;
        for (rung, schedule) in ladder {
            match self.attempt_rung(nest, &schedule, &mut state) {
                Ok(lowered) => {
                    accepted = Some((rung, schedule, lowered));
                    break;
                }
                Err(error) => state.failures.push(RungFailure { rung, error }),
            }
        }
        let Some((rung, schedule, lowered)) = accepted else {
            // Even the program-order nest failed; surface the last error.
            return Err(state
                .failures
                .last()
                .map(|f| f.error.clone())
                .unwrap_or(PaloError::FaultInjected { site: "ladder" }));
        };

        let estimate = if self.config.simulate {
            match self.simulate(nest, &lowered, start) {
                Ok(est) => Some(est),
                Err(error) => {
                    state.failures.push(RungFailure { rung, error });
                    None
                }
            }
        } else {
            None
        };

        let breakdown = decision.as_ref().map(|d| d.breakdown.clone());
        Ok(PipelineOutcome {
            decision,
            schedule,
            lowered,
            report: PipelineReport {
                rung,
                failures: state.failures,
                estimate,
                search,
                model: self.config.optimizer.model,
                breakdown,
                elapsed: start.elapsed(),
            },
        })
    }

    /// Lowers and (when cheap enough) semantically validates one ladder
    /// candidate.
    fn attempt_rung(
        &self,
        nest: &LoopNest,
        schedule: &Schedule,
        state: &mut RunState,
    ) -> Result<LoweredNest, PaloError> {
        state.lowerings_attempted += 1;
        if state.lowerings_attempted <= self.config.faults.fail_first_lowerings {
            return Err(PaloError::FaultInjected { site: "lowering" });
        }
        let lowered = catch_panic("lowering", || schedule.lower(nest))??;

        if nest.iteration_count() < self.config.validate_semantics_below {
            // Buffers hold small integers, so any legal schedule of a
            // reduction is bit-exact against the program-order reference.
            let mut got = Buffers::for_nest(nest, 0x5EED);
            let mut want = got.clone();
            catch_panic("compute-mode validation", || run(nest, &lowered, &mut got))??;
            run_reference(nest, &mut want)?;
            if got != want {
                return Err(PaloError::SemanticsMismatch {
                    detail: first_divergence(nest, &got, &want),
                });
            }
        }
        Ok(lowered)
    }

    /// Simulates the accepted schedule under the remaining budget.
    fn simulate(
        &self,
        nest: &LoopNest,
        lowered: &LoweredNest,
        start: Instant,
    ) -> Result<TimeEstimate, PaloError> {
        let budget = self.config.budget;
        let deadline = budget.deadline.map(|d| d.saturating_sub(start.elapsed()));
        let max_lines =
            if self.config.faults.trace_overflow { Some(0) } else { budget.max_trace_lines };
        let opts = TraceOptions { flush_first: true, max_lines, deadline };
        let est =
            catch_panic("simulator", || estimate_time_with(nest, lowered, &self.arch, &opts))??;
        Ok(est)
    }
}

/// The §5.1 developer-baseline schedule: column loop rotated innermost
/// and vectorized, outermost loop parallelized, nothing tiled.
///
/// This mirrors `palo_baselines::basic::baseline`; the copy lives here
/// because `palo-baselines` depends on this crate, so the ladder cannot
/// call into it.
fn baseline_schedule(nest: &LoopNest, arch: &Architecture) -> Schedule {
    let mut s = Schedule::new();
    let names: Vec<&str> = nest.vars().iter().map(|v| v.name.as_str()).collect();
    let n = names.len();
    let col = nest.column_var().map(|v| v.index());

    let order: Vec<&str> = match col {
        Some(c) => {
            let mut o: Vec<&str> = (0..n).filter(|&v| v != c).map(|v| names[v]).collect();
            o.push(names[c]);
            o
        }
        None => names.clone(),
    };
    if n > 1 && order != names {
        s.reorder(&order);
    }
    if let Some(c) = col {
        let lanes = arch.vector_lanes(nest.dtype().size_bytes());
        if lanes > 1 && nest.extent(palo_ir::VarId(c)) >= lanes {
            s.vectorize(names[c], lanes);
        }
    }
    if let Some(&outer) = order.first() {
        if n > 1 {
            s.parallel(outer);
        }
    }
    s
}

/// Describes the first array element where `got` and `want` differ.
fn first_divergence(nest: &LoopNest, got: &Buffers, want: &Buffers) -> String {
    for (ai, decl) in nest.arrays().iter().enumerate() {
        let id = palo_ir::ArrayId(ai);
        let (g, w) = (got.array(id), want.array(id));
        for (k, (gv, wv)) in g.iter().zip(w.iter()).enumerate() {
            if gv != wv {
                return format!("array {:?} element {k}: got {gv}, reference {wv}", decl.name);
            }
        }
    }
    "buffers differ".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn clean_run_uses_proposed_schedule() {
        let out = Pipeline::new(&presets::intel_i7_6700()).run(&matmul(16)).unwrap();
        assert_eq!(out.report.rung, Rung::Proposed);
        assert!(!out.report.fallback_fired());
        assert!(out.report.failures.is_empty());
        assert!(out.decision.is_some());
        assert!(out.report.estimate.is_some());
        let stats = out.report.search.as_ref().unwrap();
        assert!(stats.workers >= 1);
        assert!(stats.candidates_evaluated > 0);
        // The scoring model and its per-term breakdown are surfaced next
        // to the search stats.
        assert_eq!(out.report.model, ModelKind::Paper);
        let bd = out.report.breakdown.as_ref().unwrap();
        assert_eq!(bd.total, out.decision.as_ref().unwrap().predicted_cost);
    }

    #[test]
    fn run_schedule_has_no_search_stats() {
        let nest = matmul(8);
        let out = Pipeline::new(&presets::intel_i7_6700())
            .run_schedule(&nest, &Schedule::new())
            .unwrap();
        assert!(out.report.search.is_none());
        assert!(out.report.breakdown.is_none());
    }

    #[test]
    fn run_schedule_accepts_illegal_schedule_by_degrading() {
        let nest = matmul(8);
        let mut bad = Schedule::new();
        bad.reorder(&["nonexistent"]); // fails to lower
        let out = Pipeline::new(&presets::intel_i7_6700()).run_schedule(&nest, &bad).unwrap();
        assert!(out.report.fallback_fired());
        assert!(out
            .report
            .failures
            .iter()
            .any(|f| f.rung == Rung::Proposed && matches!(f.error, PaloError::Sched(_))));
    }

    #[test]
    fn invalid_architecture_is_a_hard_error() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1);
        let err = Pipeline::new(&arch).run(&matmul(4)).unwrap_err();
        assert!(matches!(err, PaloError::Arch(_)));
    }

    #[test]
    fn report_rung_display_names() {
        assert_eq!(Rung::Proposed.to_string(), "proposed");
        assert_eq!(Rung::Naive.to_string(), "naive");
    }
}
