//! The fault-tolerant optimization pipeline (facade).
//!
//! [`Pipeline`] runs the full optimize → lower → validate → simulate flow
//! as a *guarded* computation: every stage reports through
//! [`PaloError`](crate::PaloError) instead of panicking, and when the
//! proposed schedule cannot be used the pipeline walks a **degradation
//! ladder** instead of failing outright:
//!
//! 1. [`Rung::Proposed`] — the optimizer's (or caller's) schedule;
//! 2. [`Rung::Stripped`] — the same schedule with the execution hints
//!    (`vectorize`, `parallel`, `store_nt`) removed, keeping the loop
//!    structure ([`Schedule::without_execution_hints`]);
//! 3. [`Rung::Baseline`] — the paper's §5.1 baseline (column loop rotated
//!    innermost, vectorized, outer loop parallelized, nothing tiled);
//! 4. [`Rung::Naive`] — the empty schedule, i.e. the program-order nest,
//!    which every valid nest can lower.
//!
//! The achieved rung and every failure encountered on the way down are
//! recorded in the [`PipelineReport`], so degradation is observable, not
//! silent. Resource guards ([`ResourceBudget`]) bound the cache
//! simulation in both trace lines and wall-clock time, and a
//! [`FaultPlan`] can inject failures at each guarded site to exercise the
//! ladder in tests.
//!
//! Since the pass-framework refactor the stages live in [`crate::pass`]
//! and the execution engine is [`Session`](crate::Session): `Pipeline`
//! is a thin facade that opens a fresh single-use session per call. Use
//! a [`Session`](crate::Session) directly (or its
//! [`BatchDriver`](crate::BatchDriver)) to reuse the content-addressed
//! artifact cache across runs.

use crate::config::ModelKind;
use crate::decision::Decision;
use crate::error::PaloError;
use crate::model::CostBreakdown;
use crate::pass::{CacheStats, PassTiming};
use crate::search::SearchStats;
use crate::session::Session;
use crate::store::CacheConfig;
use crate::OptimizerConfig;
use palo_arch::Architecture;
use palo_exec::TimeEstimate;
use palo_ir::LoopNest;
use palo_sched::{LoweredNest, Schedule};
use std::time::Duration;

/// A rung of the degradation ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The optimizer's (or caller's) proposed schedule was used.
    Proposed,
    /// The proposed schedule with execution hints stripped.
    Stripped,
    /// The basic developer baseline schedule.
    Baseline,
    /// The untransformed program-order nest.
    Naive,
}

/// Error of parsing a [`Rung`] from a string: the rejected input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRungError(pub String);

impl std::fmt::Display for ParseRungError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown rung {:?} (expected one of ", self.0)?;
        for (i, r) in Rung::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(r.as_str())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseRungError {}

impl Rung {
    /// Every rung, best first.
    pub const ALL: [Rung; 4] = [Rung::Proposed, Rung::Stripped, Rung::Baseline, Rung::Naive];

    /// Stable machine-readable name. The single source of truth:
    /// [`std::fmt::Display`] and [`std::str::FromStr`] both go through
    /// it.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Proposed => "proposed",
            Rung::Stripped => "stripped",
            Rung::Baseline => "baseline",
            Rung::Naive => "naive",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Rung {
    type Err = ParseRungError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Rung::ALL
            .iter()
            .copied()
            .find(|r| r.as_str() == s)
            .ok_or_else(|| ParseRungError(s.to_string()))
    }
}

/// One failure encountered while descending the ladder (or while
/// simulating the accepted schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct RungFailure {
    /// The rung that was being attempted when the failure occurred.
    pub rung: Rung,
    /// What went wrong.
    pub error: PaloError,
}

/// Resource guards for the expensive stages of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum cache-line accesses the trace simulation may issue before
    /// aborting with [`PaloError::BudgetExceeded`] (`None` = unlimited).
    pub max_trace_lines: Option<u64>,
    /// Wall-clock budget for one whole [`Pipeline::run`] call; the
    /// remainder at simulation time bounds the trace walk
    /// (`None` = unlimited).
    pub deadline: Option<Duration>,
}

/// Deterministic fault injection for exercising the degradation ladder.
///
/// All sites default to off; enabling them is a *runtime* configuration
/// choice so the release pipeline and the fault tests run the same code.
/// While any site is armed, the [`Session`](crate::Session) bypasses its
/// artifact cache entirely: injected faults must fire on every run, and
/// a faulted run's artifacts must never be served to a clean one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the first `n` schedule-lowering attempts with
    /// [`PaloError::FaultInjected`]. With a distinct proposed schedule,
    /// `1` forces [`Rung::Stripped`], `2` forces [`Rung::Baseline`],
    /// `3` forces [`Rung::Naive`] and `4` exhausts the ladder.
    pub fail_first_lowerings: u64,
    /// Force a zero trace-line budget so the simulation stage aborts with
    /// [`PaloError::BudgetExceeded`].
    pub trace_overflow: bool,
    /// Panic inside the optimizer stage; the pipeline must catch it and
    /// degrade to [`Rung::Baseline`].
    pub panic_in_optimizer: bool,
}

impl FaultPlan {
    /// Whether any injection site is armed.
    pub fn armed(&self) -> bool {
        *self != FaultPlan::default()
    }
}

/// Per-request overrides layered over a [`Session`](crate::Session)'s
/// [`PipelineConfig`] for one run.
///
/// A long-lived session serves heterogeneous requests: an interactive
/// request may carry a tight wall-clock deadline, a chaos-test request
/// may arm a [`FaultPlan`] for itself only, and a load-shedding service
/// may skip the simulate stage under pressure — all without touching the
/// session-wide configuration (or other concurrent runs). Every field
/// defaults to "inherit from the session config".
///
/// The cache-safety rules are override-aware: a run whose *effective*
/// fault plan is armed bypasses the artifact cache wholesale, and a run
/// under an *effective* deadline keeps its simulate stage uncacheable —
/// so a per-request fault or deadline can never poison artifacts served
/// to clean runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOverrides {
    /// Wall-clock deadline for this run (replaces
    /// [`ResourceBudget::deadline`] when set). Measured from the start of
    /// the run; callers queueing requests should pass the *remaining*
    /// deadline at dequeue time.
    pub deadline: Option<Duration>,
    /// Trace-line budget for this run (replaces
    /// [`ResourceBudget::max_trace_lines`] when set).
    pub max_trace_lines: Option<u64>,
    /// Fault plan for this run (replaces [`PipelineConfig::faults`] when
    /// set — including `Some(FaultPlan::default())`, which *disarms*
    /// session-wide faults for this run).
    pub faults: Option<FaultPlan>,
    /// Whether to run the simulate stage (replaces
    /// [`PipelineConfig::simulate`] when set). `Some(false)` is the
    /// load-shedding lever: the request is answered from the analytical
    /// model alone.
    pub simulate: Option<bool>,
}

impl RunOverrides {
    /// The effective `(budget, faults, simulate)` triple of one run:
    /// `config` with this request's overrides layered on top.
    pub fn effective(&self, config: &PipelineConfig) -> (ResourceBudget, FaultPlan, bool) {
        let budget = ResourceBudget {
            max_trace_lines: self.max_trace_lines.or(config.budget.max_trace_lines),
            deadline: self.deadline.or(config.budget.deadline),
        };
        (budget, self.faults.unwrap_or(config.faults), self.simulate.unwrap_or(config.simulate))
    }
}

/// Configuration of a [`Pipeline`] (and of a [`Session`](crate::Session)).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Switches forwarded to the [`Optimizer`](crate::Optimizer).
    pub optimizer: OptimizerConfig,
    /// Resource guards for simulation.
    pub budget: ResourceBudget,
    /// Ladder candidates are validated bit-exactly against the
    /// program-order interpreter when the nest's iteration count is below
    /// this bound (compute-mode execution is too slow beyond it).
    pub validate_semantics_below: u128,
    /// Run the cache simulation of the accepted schedule and attach a
    /// [`TimeEstimate`] to the report.
    pub simulate: bool,
    /// Bound on *concurrent* simulate-stage executions across a
    /// [`Session`](crate::Session)'s runs (batch workers included),
    /// independent of the worker count. `None` (the default) leaves
    /// simulation as parallel as the batch; `Some(n)` admits at most `n`
    /// runs into the simulate stage at once — the other stages stay fully
    /// parallel. Zero is clamped to one.
    pub max_concurrent_sims: Option<usize>,
    /// Fault injection sites (all off by default).
    pub faults: FaultPlan,
    /// The session's artifact-store tiers (memory bounds, eviction
    /// policy, on-disk persistence). The default is the original
    /// unbounded in-process cache. **Never enters any cache key** — the
    /// store changes where artifacts live, not what is decided.
    pub cache: CacheConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            optimizer: OptimizerConfig::default(),
            budget: ResourceBudget::default(),
            validate_semantics_below: 4096,
            simulate: true,
            max_concurrent_sims: None,
            faults: FaultPlan::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// What happened during one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The ladder rung whose schedule was accepted.
    pub rung: Rung,
    /// Every failure encountered on the way (ladder descents and
    /// simulation-stage failures). Empty on a clean run.
    pub failures: Vec<RungFailure>,
    /// The simulated time estimate of the accepted schedule; `None` when
    /// simulation was disabled or failed (the failure is recorded).
    pub estimate: Option<TimeEstimate>,
    /// What the optimizer's candidate search did (workers, candidates
    /// evaluated/pruned, memo hit rates, wall time); `None` when the
    /// optimizer stage was skipped ([`Pipeline::run_schedule`]) or
    /// failed. A cache-served optimize artifact replays the *producing*
    /// search's stats.
    pub search: Option<SearchStats>,
    /// Which cost model scored the candidate search
    /// ([`OptimizerConfig::model`]).
    pub model: ModelKind,
    /// Per-term cost decomposition of the winning schedule under that
    /// model; `None` when the optimizer stage was skipped or failed.
    pub breakdown: Option<CostBreakdown>,
    /// Artifact-cache counter movement of this run (all misses/bypasses
    /// on a fresh [`Pipeline`] facade; hits when a warm
    /// [`Session`](crate::Session) replayed artifacts).
    pub cache: CacheStats,
    /// Per-pass wall-clock breakdown of this run, one entry per pass
    /// request in execution order (cache hits included, flagged).
    pub timings: Vec<PassTiming>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Whether the pipeline had to fall back below [`Rung::Proposed`].
    pub fn fallback_fired(&self) -> bool {
        self.rung != Rung::Proposed
    }

    /// Aggregates [`PipelineReport::timings`] per pass, in first-request
    /// order: `(pass name, total wall-clock, requests, cache hits)`.
    pub fn pass_totals(&self) -> Vec<(&'static str, Duration, u32, u32)> {
        let mut totals: Vec<(&'static str, Duration, u32, u32)> = Vec::new();
        for t in &self.timings {
            match totals.iter_mut().find(|(name, ..)| *name == t.pass) {
                Some((_, dur, n, hits)) => {
                    *dur += t.elapsed;
                    *n += 1;
                    *hits += u32::from(t.cached);
                }
                None => totals.push((t.pass, t.elapsed, 1, u32::from(t.cached))),
            }
        }
        totals
    }
}

/// The result of a successful (possibly degraded) pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The optimizer's decision; `None` when the optimizer itself failed
    /// or when the caller supplied the schedule via
    /// [`Pipeline::run_schedule`].
    pub decision: Option<Decision>,
    /// The accepted schedule (of the reported rung).
    pub schedule: Schedule,
    /// The accepted schedule lowered onto the nest, ready to execute.
    pub lowered: LoweredNest,
    /// The run's report: achieved rung, recorded failures, estimate.
    pub report: PipelineReport,
}

/// The guarded optimize → lower → validate → simulate flow.
///
/// Each call opens a fresh single-use [`Session`](crate::Session); hold
/// a session yourself to share its artifact cache across runs.
///
/// # Examples
///
/// ```
/// use palo_arch::presets;
/// use palo_core::{Pipeline, Rung};
/// use palo_ir::{DType, NestBuilder};
///
/// let mut b = NestBuilder::new("copy", DType::F32);
/// let i = b.var("i", 64);
/// let j = b.var("j", 64);
/// let src = b.array("src", &[64, 64]);
/// let dst = b.array("dst", &[64, 64]);
/// let ld = b.load(src, &[i, j]);
/// b.store(dst, &[i, j], ld);
/// let nest = b.build()?;
///
/// let out = Pipeline::new(&presets::intel_i7_6700()).run(&nest)?;
/// assert_eq!(out.report.rung, Rung::Proposed);
/// assert!(out.report.estimate.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    arch: Architecture,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline for `arch` with default configuration.
    pub fn new(arch: &Architecture) -> Self {
        Pipeline { arch: arch.clone(), config: PipelineConfig::default() }
    }

    /// A pipeline with an explicit configuration.
    pub fn with_config(arch: &Architecture, config: PipelineConfig) -> Self {
        Pipeline { arch: arch.clone(), config }
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the optimizer on `nest` and executes the degradation ladder.
    ///
    /// # Errors
    ///
    /// Returns an error only when the nest cannot be processed at all:
    /// the architecture fails validation, the cache simulator rejects it,
    /// or every ladder rung — including the program-order nest — fails.
    /// An optimizer failure alone is *not* an error: the pipeline
    /// degrades and records the failure in the report.
    pub fn run(&self, nest: &LoopNest) -> Result<PipelineOutcome, PaloError> {
        Session::new(&self.arch, self.config.clone())?.run(nest)
    }

    /// Executes the degradation ladder for a caller-supplied schedule
    /// (skipping the optimizer stage).
    ///
    /// The schedule may be arbitrary — even illegal for `nest`; an
    /// illegal schedule simply fails its rung and the ladder continues.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_schedule(
        &self,
        nest: &LoopNest,
        proposed: &Schedule,
    ) -> Result<PipelineOutcome, PaloError> {
        Session::new(&self.arch, self.config.clone())?.run_schedule(nest, proposed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn clean_run_uses_proposed_schedule() {
        let out = Pipeline::new(&presets::intel_i7_6700()).run(&matmul(16)).unwrap();
        assert_eq!(out.report.rung, Rung::Proposed);
        assert!(!out.report.fallback_fired());
        assert!(out.report.failures.is_empty());
        assert!(out.decision.is_some());
        assert!(out.report.estimate.is_some());
        let stats = out.report.search.as_ref().unwrap();
        assert!(stats.workers >= 1);
        assert!(stats.candidates_evaluated > 0);
        // The scoring model and its per-term breakdown are surfaced next
        // to the search stats.
        assert_eq!(out.report.model, ModelKind::Paper);
        let bd = out.report.breakdown.as_ref().unwrap();
        assert_eq!(bd.total, out.decision.as_ref().unwrap().predicted_cost);
        // A single-use facade session starts cold: misses only.
        assert_eq!(out.report.cache.hits, 0);
        assert!(out.report.cache.misses > 0);
    }

    #[test]
    fn run_schedule_has_no_search_stats() {
        let nest = matmul(8);
        let out = Pipeline::new(&presets::intel_i7_6700())
            .run_schedule(&nest, &Schedule::new())
            .unwrap();
        assert!(out.report.search.is_none());
        assert!(out.report.breakdown.is_none());
    }

    #[test]
    fn run_schedule_accepts_illegal_schedule_by_degrading() {
        let nest = matmul(8);
        let mut bad = Schedule::new();
        bad.reorder(&["nonexistent"]); // fails to lower
        let out = Pipeline::new(&presets::intel_i7_6700()).run_schedule(&nest, &bad).unwrap();
        assert!(out.report.fallback_fired());
        assert!(out
            .report
            .failures
            .iter()
            .any(|f| f.rung == Rung::Proposed && matches!(f.error, PaloError::Sched(_))));
    }

    #[test]
    fn invalid_architecture_is_a_hard_error() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1);
        let err = Pipeline::new(&arch).run(&matmul(4)).unwrap_err();
        assert!(matches!(err, PaloError::Arch(_)));
    }

    #[test]
    fn report_rung_display_names() {
        assert_eq!(Rung::Proposed.to_string(), "proposed");
        assert_eq!(Rung::Naive.to_string(), "naive");
    }

    #[test]
    fn rung_names_round_trip_and_reject_noise() {
        for rung in Rung::ALL {
            assert_eq!(rung.as_str().parse::<Rung>(), Ok(rung));
            assert_eq!(rung.to_string(), rung.as_str());
        }
        for bad in ["", "Proposed", "NAIVE", " baseline", "base"] {
            assert_eq!(bad.parse::<Rung>(), Err(ParseRungError(bad.to_string())));
        }
        let msg = "x".parse::<Rung>().unwrap_err().to_string();
        assert!(msg.contains("proposed") && msg.contains("naive"), "{msg}");
    }
}
