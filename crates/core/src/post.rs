//! Standard optimizations (§3.4): parallelization, vectorization,
//! non-temporal stores — and the emission of the final schedule.

use crate::classify::Class;
use crate::config::OptimizerConfig;
use crate::decision::Decision;
use crate::model::CostBreakdown;
use palo_arch::Architecture;
use palo_ir::{LoopNest, NestInfo};
use palo_sched::Schedule;

/// Whether the statement qualifies for non-temporal stores: the output is
/// never read back (no temporal reuse of the output data) and the target
/// supports NT stores.
pub fn nti_eligible(info: &NestInfo, arch: &Architecture, config: &OptimizerConfig) -> bool {
    config.enable_nti && arch.supports_nt_stores && !info.output_is_read
}

/// Emits the schedule for a tiling decision and assembles the
/// [`Decision`].
///
/// * Tiled loops are split into `{name}_o` / `{name}_i`.
/// * The final order is the inter-tile loops (tiled variables only, in
///   `inter_order`) followed by the intra-tile loops (`intra_order`).
/// * The innermost loop is vectorized when it walks the column dimension
///   and its extent covers the native vector width.
/// * The outermost inter-tile loop is parallelized; when its trip count
///   cannot feed every hardware thread (Eq. 13) and a second inter-tile
///   loop exists, the two are fused first (§3.2, last paragraph).
#[allow(clippy::too_many_arguments)]
pub fn emit(
    nest: &LoopNest,
    arch: &Architecture,
    class: Class,
    tile: Vec<usize>,
    inter_order: Vec<usize>,
    intra_order: Vec<usize>,
    use_nti: bool,
    breakdown: CostBreakdown,
) -> Decision {
    let extents = nest.extents();
    let names: Vec<&str> = nest.vars().iter().map(|v| v.name.as_str()).collect();
    let tiled: Vec<usize> =
        inter_order.iter().copied().filter(|&v| tile[v] < extents[v]).collect();

    let mut sched = Schedule::new();
    for &v in &tiled {
        sched.split(names[v], &format!("{}_o", names[v]), &format!("{}_i", names[v]), tile[v]);
    }

    // Full loop order, outermost first.
    let mut order: Vec<String> = Vec::new();
    for &v in &tiled {
        order.push(format!("{}_o", names[v]));
    }
    for &v in &intra_order {
        if tile[v] < extents[v] {
            order.push(format!("{}_i", names[v]));
        } else {
            order.push(names[v].to_string());
        }
    }
    if order.len() > 1 {
        let refs: Vec<&str> = order.iter().map(|s| s.as_str()).collect();
        sched.reorder(&refs);
    }

    // Vectorize the innermost loop when it walks the column dimension.
    let mut vector_lanes = 1usize;
    if let (Some(&inner_var), Some(col), Some(inner_name)) =
        (intra_order.last(), nest.column_var(), order.last())
    {
        let lanes = arch.vector_lanes(nest.dtype().size_bytes());
        if inner_var == col.index() && lanes > 1 && tile[inner_var] >= lanes {
            sched.vectorize(inner_name, lanes);
            vector_lanes = lanes;
        }
    }

    // Parallelize the outermost inter-tile loop, fusing when too coarse.
    let threads = arch.total_threads();
    let mut parallel_var = None;
    if let Some(&p) = tiled.first() {
        let trips = extents[p].div_ceil(tile[p]);
        // Fuse the outer inter-tile loops "when possible" (§3.2): always
        // worthwhile when the outermost trip count alone cannot feed the
        // threads with well-balanced chunks.
        if trips < 4 * threads && tiled.len() >= 2 {
            let a = format!("{}_o", names[tiled[0]]);
            let b = format!("{}_o", names[tiled[1]]);
            sched.fuse(&a, &b, "par_fused");
            sched.parallel("par_fused");
        } else {
            sched.parallel(&format!("{}_o", names[p]));
        }
        parallel_var = Some(p);
    } else if nest.vars().len() > 1 {
        // Nothing tiled: parallelize the outermost loop directly.
        let p = intra_order.first().copied().unwrap_or(0);
        if extents[p] >= 2 {
            let name = if tile[p] < extents[p] {
                format!("{}_i", names[p])
            } else {
                names[p].to_string()
            };
            sched.parallel(&name);
            parallel_var = Some(p);
        }
    }

    if use_nti {
        sched.store_nt();
    }

    Decision {
        class,
        tile,
        inter_order,
        intra_order,
        use_nti,
        vector_lanes,
        parallel_var,
        predicted_cost: breakdown.total,
        breakdown,
        sched,
    }
}

/// The no-transformation path of Figure 2: contiguous kernels keep their
/// program order and only get parallelization, vectorization and (when
/// the output is write-only) non-temporal stores.
pub fn passthrough(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> Decision {
    let n = nest.vars().len();
    let intra_order: Vec<usize> = (0..n).collect();
    let use_nti = nti_eligible(info, arch, config);
    emit(
        nest,
        arch,
        Class::ContiguousOnly,
        nest.extents(),
        Vec::new(),
        intra_order,
        use_nti,
        CostBreakdown::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn copy_nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let src = b.array("src", &[n, n]);
        let dst = b.array("dst", &[n, n]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        b.build().unwrap()
    }

    #[test]
    fn passthrough_copy_gets_par_vec_nti() {
        let nest = copy_nest(1024);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let d = passthrough(&nest, &info, &arch, &OptimizerConfig::default());
        assert_eq!(d.class, Class::ContiguousOnly);
        assert!(d.use_nti);
        assert_eq!(d.vector_lanes, 8);
        assert_eq!(d.parallel_var, Some(0));
        let lowered = d.schedule().lower(&nest).unwrap();
        assert!(lowered.nt_store());
        assert_eq!(lowered.vector_lanes(), 8);
        assert_eq!(lowered.parallel_loop(), Some(0));
    }

    #[test]
    fn passthrough_on_arm_has_no_nti() {
        let nest = copy_nest(256);
        let info = NestInfo::analyze(&nest);
        let d =
            passthrough(&nest, &info, &presets::arm_cortex_a15(), &OptimizerConfig::default());
        assert!(!d.use_nti);
    }

    #[test]
    fn emit_tiles_and_lowers() {
        let nest = copy_nest(1024);
        let arch = presets::intel_i7_6700();
        let d = emit(
            &nest,
            &arch,
            Class::Spatial,
            vec![64, 128],
            vec![0, 1],
            vec![0, 1],
            false,
            CostBreakdown { total: 1.0, ..Default::default() },
        );
        let lowered = d.schedule().lower(&nest).unwrap();
        // i_o (trip 16) cannot feed 8 threads with balanced chunks, so the
        // two inter-tile loops are fused: par_fused, i_i, j_i.
        assert_eq!(lowered.loops().len(), 3);
        assert_eq!(lowered.loops()[0].name, "par_fused");
        assert_eq!(lowered.loops()[0].trip, 16 * 8);
        assert_eq!(lowered.loops()[2].name, "j_i");
        assert_eq!(lowered.vector_lanes(), 8);
        assert_eq!(lowered.parallel_loop(), Some(0));
    }

    #[test]
    fn emit_fuses_when_parallel_grain_too_coarse() {
        // 6-core, 12-thread 5930K; outer trips = 4 < 12 -> fuse.
        let nest = copy_nest(256);
        let arch = presets::intel_i7_5930k();
        let d = emit(
            &nest,
            &arch,
            Class::Spatial,
            vec![64, 64],
            vec![0, 1],
            vec![0, 1],
            false,
            CostBreakdown { total: 1.0, ..Default::default() },
        );
        let lowered = d.schedule().lower(&nest).unwrap();
        assert_eq!(lowered.loops()[0].name, "par_fused");
        assert_eq!(lowered.loops()[0].trip, 16);
        assert_eq!(lowered.parallel_loop(), Some(0));
    }

    #[test]
    fn untiled_vars_keep_their_names() {
        let nest = copy_nest(128);
        let arch = presets::intel_i7_6700();
        let d = emit(
            &nest,
            &arch,
            Class::Temporal,
            vec![16, 128], // j untiled
            vec![0, 1],
            vec![0, 1],
            false,
            CostBreakdown { total: 1.0, ..Default::default() },
        );
        let lowered = d.schedule().lower(&nest).unwrap();
        let names: Vec<_> = lowered.loops().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["i_o", "i_i", "j"]);
    }
}
