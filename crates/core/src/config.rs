//! Optimizer configuration and ablation switches.

use palo_arch::Architecture;
use serde::{Deserialize, Serialize};

/// Which [`CostModel`](crate::model::CostModel) scores the candidate
/// search (DESIGN.md §11).
///
/// The kind is *resolved once* at the driver entry
/// ([`crate::model::resolve`]) into a model instance plus the effective
/// `(arch, config)` pair it runs under — the baselines are the paper's
/// analytical machinery with the prefetch awareness switched off, not a
/// separate code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The paper's prefetch-aware analytical model (Eqs. 1–19).
    #[default]
    Paper,
    /// The TSS baseline: the same machinery without the prefetch
    /// discount or the halved effective L2.
    Tss,
    /// The TurboTiling-style baseline: TSS on a hierarchy shifted one
    /// level out ([`crate::model::shift_hierarchy`]).
    Tts,
    /// The cachesim-backed empirical oracle: candidates are lowered and
    /// traced, scored by estimated milliseconds.
    Simulated,
}

/// Error of parsing a [`ModelKind`] from a string (e.g. the CLI's
/// `--model` flag): the rejected input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelKindError(pub String);

impl std::fmt::Display for ParseModelKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown model {:?} (expected one of ", self.0)?;
        for (i, k) in ModelKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(k.as_str())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseModelKindError {}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = ParseModelKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ParseModelKindError(s.to_string()))
    }
}

impl ModelKind {
    /// Every kind, in CLI/documentation order.
    pub const ALL: [ModelKind; 4] =
        [ModelKind::Paper, ModelKind::Tss, ModelKind::Tts, ModelKind::Simulated];

    /// Short machine-readable name, matching the CLI's `--model` values.
    /// The single source of truth: [`std::fmt::Display`],
    /// [`std::str::FromStr`] and [`ModelKind::name`] all go through it.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Paper => "paper",
            ModelKind::Tss => "tss",
            ModelKind::Tts => "tts",
            ModelKind::Simulated => "sim",
        }
    }

    /// Alias of [`ModelKind::as_str`] kept for existing callers.
    pub fn name(self) -> &'static str {
        self.as_str()
    }

    /// Parses a CLI `--model` value ([`std::str::FromStr`] as an
    /// `Option`).
    pub fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }

    /// The configuration the drivers must run under for this model: the
    /// TSS/TTS baselines switch the prefetch awareness off; the
    /// simulated oracle thins the candidate grid (each point costs a
    /// full cache-hierarchy trace).
    pub fn effective_config(self, config: &OptimizerConfig) -> OptimizerConfig {
        let mut cfg = config.clone();
        match self {
            ModelKind::Paper => {}
            ModelKind::Tss | ModelKind::Tts => {
                cfg.prefetch_discount = false;
                cfg.halve_l2_sets = false;
            }
            ModelKind::Simulated => {
                cfg.max_candidates_per_dim = cfg.max_candidates_per_dim.min(4);
            }
        }
        cfg
    }

    /// The architecture the drivers must run under: identity except for
    /// [`ModelKind::Tts`], which optimizes against the shifted hierarchy.
    pub fn effective_arch(self, arch: &Architecture) -> Architecture {
        match self {
            ModelKind::Tts => crate::model::shift_hierarchy(arch),
            _ => arch.clone(),
        }
    }
}

/// Switches for the optimization flow.
///
/// The defaults reproduce the paper; each switch isolates one design
/// choice for the ablation benches (DESIGN.md §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Discount streaming-prefetched references from the cold-miss
    /// estimates (Eq. 2 → Eq. 3). Off ≈ the TSS-style model.
    pub prefetch_discount: bool,
    /// Halve the effective L2 set count in Algorithm 1 and the L2 working
    /// set budget, reserving room for constant-stride prefetch traffic.
    pub halve_l2_sets: bool,
    /// Run Step 2 of Algorithm 2 (minimize the `Corder` loop distance).
    pub reorder_step: bool,
    /// Enforce Eq. 13 (at least one inter-tile iteration per thread).
    pub parallel_grain_constraint: bool,
    /// Allow emitting the non-temporal store directive.
    pub enable_nti: bool,
    /// Extend `Ctotal` (Eq. 11) with a memory-bandwidth term
    /// `am · CL2_lines`: the prefetch-discounted miss counts capture
    /// *latency* (a streamed row costs one stall regardless of length)
    /// but every line still crosses the bus. The paper's testbed hid
    /// this inside the measured runtime; on the simulator substrate the
    /// bus is the roofline for parallel memory-bound kernels, so the
    /// model accounts it explicitly. Disable for the paper-pure model.
    pub bandwidth_term: bool,
    /// Upper bound on tile-size candidates examined per dimension
    /// (candidates are divisor-based and thinned geometrically).
    pub max_candidates_per_dim: usize,
    /// Which cost model scores the candidate search (DESIGN.md §11).
    pub model: ModelKind,
    /// Knobs of the candidate-search engine ([`crate::search`]).
    pub search: SearchOptions,
}

/// Knobs of the candidate-search engine ([`crate::search`]).
///
/// All combinations return bit-identical schedules (the engine's
/// determinism contract); the knobs only trade search time, and exist so
/// tests and benches can compare the pruned/memoized parallel search
/// against the exhaustive sequential one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Worker threads for the candidate search. `None` defers to the
    /// `PALO_SEARCH_THREADS` environment variable, then to the machine's
    /// available parallelism.
    pub threads: Option<usize>,
    /// Branch-and-bound pruning against the shared incumbent.
    pub prune: bool,
    /// Memoize `emu()` bounds and per-reference footprint terms.
    pub memo: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { threads: None, prune: true, memo: true }
    }
}

impl SearchOptions {
    /// The pre-engine behavior: sequential, exhaustive, uncached. The
    /// determinism/soundness tests and the bench harness use this as the
    /// ground truth to compare against.
    pub fn exhaustive() -> Self {
        SearchOptions { threads: Some(1), prune: false, memo: false }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            prefetch_discount: true,
            halve_l2_sets: true,
            reorder_step: true,
            parallel_grain_constraint: true,
            enable_nti: true,
            bandwidth_term: true,
            max_candidates_per_dim: 12,
            model: ModelKind::default(),
            search: SearchOptions::default(),
        }
    }
}

impl OptimizerConfig {
    /// The TSS-like ablation: no prefetch awareness anywhere.
    pub fn without_prefetch_model() -> Self {
        OptimizerConfig {
            prefetch_discount: false,
            halve_l2_sets: false,
            ..OptimizerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = OptimizerConfig::default();
        assert!(c.prefetch_discount);
        assert!(c.halve_l2_sets);
        assert!(c.reorder_step);
        assert!(c.parallel_grain_constraint);
        assert!(c.enable_nti);
        assert_eq!(c.model, ModelKind::Paper);
    }

    #[test]
    fn model_kind_names_round_trip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.as_str().parse::<ModelKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(ModelKind::parse("bogus"), None);
    }

    #[test]
    fn model_kind_rejects_near_misses() {
        for bad in ["", "Paper", "PAPER", " paper", "paper ", "simulated", "ts", "tsss"] {
            let err = bad.parse::<ModelKind>().unwrap_err();
            assert_eq!(err, ParseModelKindError(bad.to_string()));
            // The message names the rejected input and the valid values.
            let msg = err.to_string();
            assert!(msg.contains("paper") && msg.contains("sim"), "{msg}");
        }
    }

    #[test]
    fn effective_config_maps_baselines_and_sim() {
        let base = OptimizerConfig::default();
        let tss = ModelKind::Tss.effective_config(&base);
        assert!(!tss.prefetch_discount && !tss.halve_l2_sets);
        assert_eq!(tss.max_candidates_per_dim, base.max_candidates_per_dim);
        let sim = ModelKind::Simulated.effective_config(&base);
        assert!(sim.prefetch_discount, "sim keeps the paper switches");
        assert!(sim.max_candidates_per_dim <= 4, "sim thins the grid");
        assert_eq!(ModelKind::Paper.effective_config(&base), base);
    }

    #[test]
    fn ablation_disables_prefetch_model() {
        let c = OptimizerConfig::without_prefetch_model();
        assert!(!c.prefetch_discount);
        assert!(!c.halve_l2_sets);
        assert!(c.reorder_step);
    }

    #[test]
    fn search_defaults_and_exhaustive_mode() {
        let s = SearchOptions::default();
        assert_eq!(s.threads, None);
        assert!(s.prune);
        assert!(s.memo);
        let e = SearchOptions::exhaustive();
        assert_eq!(e.threads, Some(1));
        assert!(!e.prune);
        assert!(!e.memo);
    }
}
