//! The paper's prefetch-aware loop optimizer.
//!
//! This crate implements the optimization flow of *Loop Transformations
//! Leveraging Hardware Prefetching* (CGO'18), Figure 1:
//!
//! 1. **Classification** ([`mod@classify`]) — Figure 2: inspect the index sets
//!    of the statement to decide between the temporal optimizer, the
//!    spatial optimizer, or no loop transformation at all.
//! 2. **Cache emulation** ([`mod@emu`]) — Algorithm 1: bound tile dimensions
//!    so that no interference (conflict) misses occur, accounting for the
//!    lines injected by the L1 next-line and L2 constant-stride
//!    prefetchers.
//! 3. **Temporal optimizer** ([`temporal`]) — Algorithm 2: joint tile-size
//!    and loop-order selection minimizing
//!    `Ctotal = a2·CL1 + a3·CL2` (Eqs. 1–11) with prefetched references
//!    discounted from the miss estimates, then a reorder step minimizing
//!    the inter/intra-tile distance `Corder` (Eq. 12).
//! 4. **Spatial optimizer** ([`spatial`]) — Algorithm 3: tile-size
//!    selection for transposed kernels driven by the prefetching
//!    efficiency `Tx / lc` (Eqs. 14–19).
//! 5. **Post optimizations** ([`post`]) — parallelization (Eq. 13
//!    constraint), vectorization, and non-temporal stores.
//!
//! Steps 3–4 are *drivers*: they enumerate candidate tiles and delegate
//! all scoring to the pluggable [`model`] layer ([`CostModel`]), selected
//! via [`OptimizerConfig::model`] ([`ModelKind`]) — the paper's
//! analytical [`PrefetchAwareModel`], the TSS/TTS baselines, or the
//! cachesim-backed [`SimulatedModel`].
//!
//! The entry point is [`Optimizer`], which produces a [`Decision`]
//! containing the chosen [`palo_sched::Schedule`]. For end-to-end use,
//! [`Pipeline`] wraps the optimizer in a fault-tolerant
//! optimize → lower → validate → simulate flow with a degradation ladder
//! ([`Rung`]), resource guards ([`ResourceBudget`]) and fault injection
//! ([`FaultPlan`]); every failure is reported through [`PaloError`].
//!
//! # Examples
//!
//! ```
//! use palo_arch::presets;
//! use palo_core::{Class, Optimizer};
//! use palo_ir::{DType, NestBuilder};
//!
//! let mut b = NestBuilder::new("matmul", DType::F32);
//! let i = b.var("i", 512);
//! let j = b.var("j", 512);
//! let k = b.var("k", 512);
//! let a = b.array("A", &[512, 512]);
//! let bm = b.array("B", &[512, 512]);
//! let c = b.array("C", &[512, 512]);
//! b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
//! let nest = b.build()?;
//!
//! let decision = Optimizer::new(&presets::intel_i7_5930k()).try_optimize(&nest)?;
//! assert_eq!(decision.class, Class::Temporal);
//! assert!(decision.tile.iter().any(|&t| t > 1)); // it tiled something
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod batch;
mod candidates;
pub mod classify;
mod codec;
mod config;
mod decision;
pub mod emu;
mod error;
pub mod fingerprint;
mod footprint;
mod gate;
pub mod model;
pub mod order;
pub mod pass;
mod pipeline;
pub mod post;
pub mod search;
mod session;
pub mod spatial;
pub mod store;
pub mod temporal;

pub use batch::{BatchDriver, BatchItem, BatchReport, BatchRequest, Priority};
pub use classify::{classify, Class};
pub use config::{ModelKind, OptimizerConfig, ParseModelKindError, SearchOptions};
pub use decision::Decision;
pub use emu::{emu, emu_cached, EmuKey, EmuParams};
pub use error::{catch_panic, PaloError};
pub use fingerprint::{Fingerprint, FingerprintBuilder};
pub use footprint::{Coverage, Footprints};
pub use model::{
    coverage_of, resolve, shift_hierarchy, CandidatePoint, CostBreakdown, CostModel,
    PrefetchAwareModel, ResolvedModel, SimulatedModel, TileContext,
};
pub use pass::{CacheStats, Pass, PassCx, PassTiming, RunCtl};
pub use pipeline::{
    FaultPlan, ParseRungError, Pipeline, PipelineConfig, PipelineOutcome, PipelineReport,
    ResourceBudget, RunOverrides, Rung, RungFailure,
};
pub use search::{SearchCounters, SearchStats};
pub use session::Session;
pub use store::{ArtifactStore, CacheConfig, ParsePolicyKindError, PolicyKind, TierStats};

use palo_arch::Architecture;
use palo_ir::{LoopNest, NestInfo};

/// The full optimization flow of the paper (Figure 1).
///
/// Holds the target [`Architecture`] and an [`OptimizerConfig`] whose
/// switches expose the design choices called out in DESIGN.md for
/// ablation (prefetch discounting, halved effective L2, the reorder step,
/// the parallel-grain constraint, NTI).
#[derive(Debug, Clone)]
pub struct Optimizer {
    arch: Architecture,
    config: OptimizerConfig,
}

impl Optimizer {
    /// An optimizer for `arch` with the paper's default configuration.
    pub fn new(arch: &Architecture) -> Self {
        Optimizer { arch: arch.clone(), config: OptimizerConfig::default() }
    }

    /// An optimizer with an explicit configuration (ablation switches).
    pub fn with_config(arch: &Architecture, config: OptimizerConfig) -> Self {
        Optimizer { arch: arch.clone(), config }
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The active configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the full flow on `nest` and returns the scheduling decision.
    pub fn optimize(&self, nest: &LoopNest) -> Decision {
        self.optimize_with_stats(nest).0
    }

    /// [`Optimizer::optimize`], also reporting what the candidate search
    /// did ([`SearchStats`]: workers, candidates evaluated/pruned, memo
    /// hit rates, wall time).
    ///
    /// Resolves [`OptimizerConfig::model`] once, then drives
    /// [`Optimizer::optimize_resolved`]. Callers issuing many
    /// optimizations under one configuration (a [`Session`] does this
    /// automatically) should resolve once themselves and reuse it.
    pub fn optimize_with_stats(&self, nest: &LoopNest) -> (Decision, SearchStats) {
        let resolved = model::resolve(&self.config, &self.arch);
        self.optimize_resolved(nest, &resolved)
    }

    /// The full flow under an already-resolved cost model: classify,
    /// then route to the class's driver. The `ContiguousOnly`
    /// passthrough runs under the optimizer's *original*
    /// `(arch, config)` pair (its decision mirrors the unoptimized
    /// flow); the search drivers run under the resolved *effective*
    /// pair.
    pub fn optimize_resolved(
        &self,
        nest: &LoopNest,
        resolved: &ResolvedModel,
    ) -> (Decision, SearchStats) {
        let info = NestInfo::analyze(nest);
        let class = classify(&info);
        pass::dispatch(nest, &info, class, &self.arch, &self.config, resolved)
    }

    /// Guarded variant of [`Optimizer::optimize`]: validates the
    /// architecture first and isolates panics.
    ///
    /// # Errors
    ///
    /// Returns [`PaloError::Arch`] for an inconsistent architecture
    /// description and [`PaloError::Panicked`] when the optimization flow
    /// panics.
    pub fn try_optimize(&self, nest: &LoopNest) -> Result<Decision, PaloError> {
        self.arch.validate().map_err(PaloError::Arch)?;
        catch_panic("optimizer", || self.optimize(nest))
    }
}
