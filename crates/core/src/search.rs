//! The parallel, memoized, branch-and-bound candidate-search engine.
//!
//! Every optimizer in the workspace — the temporal and spatial tilers
//! here, and the autotuner in `palo-baselines` — walks a finite candidate
//! list and keeps the minimum of a deterministic cost function. This
//! module factors that walk into one engine with three properties the
//! callers must not have to re-derive:
//!
//! * **Parallel and bit-deterministic.** Candidates are sharded across a
//!   scoped [`std::thread`] pool (no external dependencies). The winner
//!   is defined by a *total order* — `(cost bits, tie bits, lexicographic
//!   key)` compared exactly, no tolerances — so the minimum of the
//!   candidate set is a property of the set, not of the visit order:
//!   1 worker, 2 workers and N workers return bit-identical results.
//! * **Pruned.** Workers share the best cost seen so far in an
//!   [`AtomicU64`] holding the cost's IEEE-754 bits ([`Incumbent`]).
//!   A caller with a cheap *admissible* lower bound skips a candidate
//!   when the bound is *strictly* worse than the incumbent; since the
//!   bound never exceeds the true cost, the global minimum (and every
//!   cost-tied candidate, by strictness) survives pruning — the result
//!   is exact, only faster.
//! * **Memoized.** A sharded mutex-striped [`MemoTable`] caches
//!   deterministic sub-computations (Algorithm-1 `emu()` bounds,
//!   per-reference footprint terms) across candidates and across
//!   optimizer invocations.
//!
//! Counters ([`SearchCounters`] → [`SearchStats`]) record how much work
//! the engine did and how much it skipped; the pipeline surfaces them in
//! `PipelineReport::search` and the `bench_search` harness snapshots them
//! to `BENCH_search.json`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Floating-point cost as orderable bits. Costs produced by the models
/// are finite and non-negative, where the IEEE-754 bit pattern is
/// monotonic in the value; NaN (never produced, but belt-and-braces) maps
/// to `u64::MAX` so it loses to every real cost.
#[inline]
pub fn cost_bits(cost: f64) -> u64 {
    if cost.is_nan() {
        u64::MAX
    } else {
        cost.max(0.0).to_bits()
    }
}

/// One evaluated candidate: its cost pair and a lexicographic tie-break
/// key. The engine keeps the minimum under the total order
/// `(primary, secondary, key)`.
pub trait Candidate: Send {
    /// `(primary cost bits, secondary/tie cost bits)`; lower wins.
    fn cost_key(&self) -> (u64, u64);
    /// Final tie-break, compared lexicographically. Distinct candidates
    /// must have distinct keys for the order to be total.
    fn tie_key(&self) -> &[usize];
}

/// Strict total order: does `a` beat (rank strictly before) `b`?
pub fn beats<C: Candidate>(a: &C, b: &C) -> bool {
    (a.cost_key(), a.tie_key()) < (b.cost_key(), b.tie_key())
}

/// The shared best-so-far primary cost, as bits, for branch-and-bound.
///
/// Starts at `u64::MAX` (worse than any real cost), only ever decreases
/// ([`AtomicU64::fetch_min`]), and is safe to read stale: a stale value
/// is an *upper* bound on the incumbent, so pruning against it is
/// conservative.
#[derive(Debug)]
pub struct Incumbent(AtomicU64);

impl Default for Incumbent {
    fn default() -> Self {
        Incumbent(AtomicU64::new(u64::MAX))
    }
}

impl Incumbent {
    /// Records a candidate's primary cost.
    #[inline]
    pub fn observe(&self, cost: f64) {
        self.0.fetch_min(cost_bits(cost), Ordering::Relaxed);
    }

    /// Whether an *admissible* lower bound already loses to the incumbent
    /// — strictly, so cost-tied candidates are never pruned and the
    /// lexicographic tie-break stays deterministic.
    #[inline]
    pub fn prunes(&self, lower_bound: f64) -> bool {
        cost_bits(lower_bound) > self.0.load(Ordering::Relaxed)
    }
}

/// Live counters of one search, shared across workers.
#[derive(Debug, Default)]
pub struct SearchCounters {
    /// Candidates whose cost model was fully evaluated.
    pub evaluated: AtomicU64,
    /// Candidates skipped because their lower bound lost to the
    /// incumbent.
    pub pruned: AtomicU64,
    /// Memo-table hits (footprint terms).
    pub memo_hits: AtomicU64,
    /// Memo-table misses (footprint terms).
    pub memo_misses: AtomicU64,
    /// Memo-table hits for Algorithm-1 `emu()` bounds.
    pub emu_memo_hits: AtomicU64,
    /// Memo-table misses for Algorithm-1 `emu()` bounds.
    pub emu_memo_misses: AtomicU64,
}

impl SearchCounters {
    /// Freezes the counters into a report.
    pub fn snapshot(&self, workers: usize, wall: Duration) -> SearchStats {
        SearchStats {
            workers,
            candidates_evaluated: self.evaluated.load(Ordering::Relaxed),
            candidates_pruned: self.pruned.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            emu_memo_hits: self.emu_memo_hits.load(Ordering::Relaxed),
            emu_memo_misses: self.emu_memo_misses.load(Ordering::Relaxed),
            wall,
        }
    }
}

/// What one search did: evaluated/pruned/memoized counts and wall time.
///
/// Attached to `PipelineReport::search` and merged across pipeline stages
/// with [`SearchStats::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Worker threads used (1 = sequential path).
    pub workers: usize,
    /// Candidates whose cost model was fully evaluated.
    pub candidates_evaluated: u64,
    /// Candidates skipped by branch-and-bound.
    pub candidates_pruned: u64,
    /// Footprint-term memo hits.
    pub memo_hits: u64,
    /// Footprint-term memo misses.
    pub memo_misses: u64,
    /// Algorithm-1 `emu()` memo hits.
    pub emu_memo_hits: u64,
    /// Algorithm-1 `emu()` memo misses.
    pub emu_memo_misses: u64,
    /// Wall-clock time of the search stage.
    pub wall: Duration,
}

impl SearchStats {
    /// Accumulates another stage's stats (multi-stage benchmarks, 3mm).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.workers = self.workers.max(other.workers);
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned += other.candidates_pruned;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.emu_memo_hits += other.emu_memo_hits;
        self.emu_memo_misses += other.emu_memo_misses;
        self.wall += other.wall;
    }
}

/// Resolves a requested worker count: explicit value, else the
/// `PALO_SEARCH_THREADS` environment variable, else the machine's
/// available parallelism (capped to keep spawn overhead sane).
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(t) = requested {
        return t.max(1);
    }
    if let Some(v) = std::env::var_os("PALO_SEARCH_THREADS") {
        if let Some(t) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            return t.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Below this many candidates the scoped pool is not worth its spawn
/// cost and the engine runs inline (the result is identical either way —
/// that is the determinism contract). Tile searches at the scaled suite
/// sizes sit just under this; divisor-rich paper-scale extents go well
/// over and get the pool.
const INLINE_THRESHOLD: usize = 512;

/// Candidates claimed per pool interaction. Small enough to balance
/// skewed evaluation costs, large enough to amortize the atomic claim.
const CHUNK: usize = 64;

/// Evaluates candidates `0..n` and returns the minimum under the
/// [`beats`] total order.
///
/// `eval(i, incumbent)` returns `None` for infeasible or pruned
/// candidates. It runs concurrently on up to `threads` workers and must
/// be deterministic in `i` (the incumbent may only be used for
/// *admissible* pruning via [`Incumbent::prunes`]); under that contract
/// the returned winner is bit-identical for every worker count.
pub fn search_min<C, F>(threads: usize, n: usize, eval: F) -> Option<C>
where
    C: Candidate,
    F: Fn(usize, &Incumbent) -> Option<C> + Sync,
{
    if threads <= 1 || n <= INLINE_THRESHOLD {
        search_inline(n, &eval)
    } else {
        search_pooled(threads, n, CHUNK, &eval)
    }
}

/// [`search_min`] with an explicit claim granularity, for candidate lists
/// that are *short but expensive per element* (the autotuner: each
/// evaluation is a full trace simulation). `chunk = 1` hands candidates
/// out one at a time; the default entry point's inline shortcut is
/// skipped so even a handful of candidates spreads across the pool.
pub fn search_min_grained<C, F>(threads: usize, n: usize, chunk: usize, eval: F) -> Option<C>
where
    C: Candidate,
    F: Fn(usize, &Incumbent) -> Option<C> + Sync,
{
    if threads <= 1 || n <= 1 {
        search_inline(n, &eval)
    } else {
        search_pooled(threads, n, chunk.max(1), &eval)
    }
}

fn search_inline<C, F>(n: usize, eval: &F) -> Option<C>
where
    C: Candidate,
    F: Fn(usize, &Incumbent) -> Option<C> + Sync,
{
    let incumbent = Incumbent::default();
    let mut best: Option<C> = None;
    for i in 0..n {
        if let Some(c) = eval(i, &incumbent) {
            incumbent.observe(f64::from_bits(c.cost_key().0));
            if best.as_ref().is_none_or(|b| beats(&c, b)) {
                best = Some(c);
            }
        }
    }
    best
}

fn search_pooled<C, F>(threads: usize, n: usize, chunk: usize, eval: &F) -> Option<C>
where
    C: Candidate,
    F: Fn(usize, &Incumbent) -> Option<C> + Sync,
{
    let incumbent = Incumbent::default();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(chunk)).max(1);
    let mut bests: Vec<Option<C>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (next, incumbent, eval) = (&next, &incumbent, &eval);
            handles.push(scope.spawn(move || {
                let mut local: Option<C> = None;
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        if let Some(c) = eval(i, incumbent) {
                            incumbent.observe(f64::from_bits(c.cost_key().0));
                            if local.as_ref().is_none_or(|b| beats(&c, b)) {
                                local = Some(c);
                            }
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            // A worker can only panic if `eval` panics; surface the
            // first panic payload rather than deadlocking.
            match h.join() {
                Ok(b) => bests.push(b),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // The total order makes min associative and commutative, so folding
    // per-worker bests in any order yields the set minimum.
    bests.into_iter().flatten().fold(None, |acc: Option<C>, c| match acc {
        Some(b) if beats(&b, &c) => Some(b),
        _ => Some(c),
    })
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// the results **in input order**.
///
/// The same claim-an-index worker pool as [`search_min`], at granularity
/// 1: batch items (whole pipeline runs) are expensive and skewed, so
/// fine-grained claiming balances the pool. Result order is a property
/// of the input, not of scheduling — callers relying on deterministic
/// output (the batch driver) get it for free. A panic in `f` is
/// propagated after all workers drain, like the search pool.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (next, f) = (&next, &f);
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            match h.join() {
                Ok(mut part) => tagged.append(&mut part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] with an explicit **claim order**: workers claim
/// items in `order[0], order[1], …` instead of input order, but results
/// are still returned in input order.
///
/// This is the scheduling lever of the batch driver's priority lanes:
/// interactive items can be claimed before batch items, and large items
/// early so one huge nest overlaps the rest of the queue instead of
/// serializing its tail. Because every item's result is deterministic in
/// the item alone (the pass determinism contract), the claim order
/// affects wall-clock only — never a result bit.
///
/// `order` must be a permutation of `0..items.len()`; out-of-range
/// entries are skipped and omitted indices simply never run (debug
/// builds assert the permutation).
pub fn parallel_map_in<T, R, F>(threads: usize, order: &[usize], items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    debug_assert_eq!(
        {
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            sorted
        },
        (0..n).collect::<Vec<_>>(),
        "order must be a permutation of 0..{n}"
    );
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        let mut tagged: Vec<(usize, R)> =
            order.iter().filter(|&&i| i < n).map(|&i| (i, f(&items[i]))).collect();
        tagged.sort_by_key(|(i, _)| *i);
        return tagged.into_iter().map(|(_, r)| r).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (next, f) = (&next, &f);
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= order.len() {
                        break;
                    }
                    let i = order[slot];
                    if i < n {
                        local.push((i, f(&items[i])));
                    }
                }
                local
            }));
        }
        for h in handles {
            match h.join() {
                Ok(mut part) => tagged.append(&mut part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// A concurrent memo table: mutex-striped shards of `HashMap`.
///
/// Shards bound contention on the worker pool; each shard is capped so a
/// pathological key stream degrades to recomputation instead of
/// unbounded memory growth.
#[derive(Debug)]
pub struct MemoTable<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

/// Entries per shard before the shard is recycled.
const SHARD_CAP: usize = 8192;

impl<K: Hash + Eq, V: Clone> MemoTable<K, V> {
    /// A table with `shards` stripes (rounded up to at least 1).
    pub fn new(shards: usize) -> Self {
        MemoTable { shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, computing and inserting it on
    /// a miss. `hits`/`misses` record which happened. A poisoned shard
    /// (a panic inside another thread's compute) falls back to
    /// recomputation, keeping the engine panic-isolated.
    pub fn get_or_compute(
        &self,
        key: K,
        hits: &AtomicU64,
        misses: &AtomicU64,
        compute: impl FnOnce() -> V,
    ) -> V {
        let shard = self.shard(&key);
        if let Ok(map) = shard.lock() {
            if let Some(v) = map.get(&key) {
                hits.fetch_add(1, Ordering::Relaxed);
                return v.clone();
            }
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        if let Ok(mut map) = shard.lock() {
            if map.len() >= SHARD_CAP {
                map.clear();
            }
            map.insert(key, v.clone());
        }
        v
    }

    /// Total cached entries (test/introspection helper).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map(|m| m.len()).unwrap_or(0)).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Cand {
        cost: f64,
        tie: f64,
        key: Vec<usize>,
    }

    impl Candidate for Cand {
        fn cost_key(&self) -> (u64, u64) {
            (cost_bits(self.cost), cost_bits(self.tie))
        }
        fn tie_key(&self) -> &[usize] {
            &self.key
        }
    }

    /// A deterministic pseudo-cost so tests cover ties and ordering.
    fn cost_of(i: usize) -> f64 {
        ((i as f64 * 37.0) % 101.0).floor()
    }

    fn eval_all(i: usize, _inc: &Incumbent) -> Option<Cand> {
        Some(Cand { cost: cost_of(i), tie: 0.0, key: vec![i] })
    }

    #[test]
    fn inline_and_parallel_agree() {
        let n = 10_000;
        let seq = search_min(1, n, eval_all).unwrap();
        for threads in [2, 3, 8] {
            let par = search_min(threads, n, eval_all).unwrap();
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn ties_break_lexicographically() {
        // cost_of has many ties (values repeat every 101 indices); the
        // winner must be the smallest index among the minimum-cost ones.
        let n = 5000;
        let win = search_min(4, n, eval_all).unwrap();
        let expect = (0..n).filter(|&i| cost_of(i) == 0.0).min().unwrap();
        assert_eq!(win.key, vec![expect]);
        assert_eq!(win.cost, 0.0);
    }

    #[test]
    fn pruning_preserves_the_winner() {
        // Admissible bound: half the true cost. Count prunes to make
        // sure the bound actually fires.
        let pruned = AtomicU64::new(0);
        let eval = |i: usize, inc: &Incumbent| -> Option<Cand> {
            let c = cost_of(i);
            if inc.prunes(c / 2.0) {
                pruned.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Some(Cand { cost: c, tie: 0.0, key: vec![i] })
        };
        let n = 50_000;
        let win = search_min(4, n, eval).unwrap();
        let full = search_min(1, n, eval_all).unwrap();
        assert_eq!(win, full);
        assert!(pruned.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn grained_pool_agrees_with_inline_on_short_lists() {
        // Short list, chunk 1: the coarse-grained entry must still
        // return the inline winner bit-for-bit.
        for n in [0, 1, 2, 7, 12] {
            let seq = search_min(1, n, eval_all);
            for threads in [2, 5] {
                let par = search_min_grained(threads, n, 1, eval_all);
                assert_eq!(par, seq, "n {n} threads {threads}");
            }
        }
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let r = search_min(3, 9000, |_i, _inc| -> Option<Cand> { None });
        assert!(r.is_none());
    }

    #[test]
    fn empty_space_returns_none() {
        assert!(search_min(2, 0, eval_all).is_none());
    }

    #[test]
    fn incumbent_monotone_and_strict() {
        let inc = Incumbent::default();
        assert!(!inc.prunes(1e300)); // nothing observed yet
        inc.observe(10.0);
        inc.observe(25.0); // worse, must not raise the bar
        assert!(inc.prunes(10.000001));
        assert!(!inc.prunes(10.0)); // ties are never pruned
        assert!(!inc.prunes(9.0));
    }

    #[test]
    fn cost_bits_orders_costs() {
        assert!(cost_bits(0.0) < cost_bits(1.0));
        assert!(cost_bits(1.0) < cost_bits(1.0000001));
        assert!(cost_bits(f64::INFINITY) < cost_bits(f64::NAN));
        assert_eq!(cost_bits(-3.0), cost_bits(0.0)); // clamped
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(1, &items, |&i| i * 3);
        for threads in [2, 5, 16] {
            assert_eq!(parallel_map(threads, &items, |&i| i * 3), seq, "threads {threads}");
        }
        assert_eq!(seq[256], 768);
        assert!(parallel_map(4, &Vec::<usize>::new(), |&i: &usize| i).is_empty());
    }

    #[test]
    fn memo_table_hits_and_caps() {
        let t: MemoTable<u64, u64> = MemoTable::new(4);
        let (h, m) = (AtomicU64::new(0), AtomicU64::new(0));
        assert_eq!(t.get_or_compute(7, &h, &m, || 49), 49);
        assert_eq!(t.get_or_compute(7, &h, &m, || 0), 49);
        assert_eq!(h.load(Ordering::Relaxed), 1);
        assert_eq!(m.load(Ordering::Relaxed), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn stats_snapshot_and_absorb() {
        let c = SearchCounters::default();
        c.evaluated.fetch_add(5, Ordering::Relaxed);
        c.pruned.fetch_add(2, Ordering::Relaxed);
        let mut s = c.snapshot(4, Duration::from_millis(3));
        let c2 = SearchCounters::default();
        c2.evaluated.fetch_add(1, Ordering::Relaxed);
        c2.emu_memo_hits.fetch_add(9, Ordering::Relaxed);
        s.absorb(&c2.snapshot(2, Duration::from_millis(1)));
        assert_eq!(s.workers, 4);
        assert_eq!(s.candidates_evaluated, 6);
        assert_eq!(s.candidates_pruned, 2);
        assert_eq!(s.emu_memo_hits, 9);
        assert_eq!(s.wall, Duration::from_millis(4));
    }
}
