//! Tile-size candidate generation.
//!
//! Algorithm 2 nominally evaluates "all valid tile sizes"; like the
//! paper's millisecond-class implementation, the search is made tractable
//! by restricting candidates to divisors of the extent (tiles that divide
//! evenly avoid tail guards) merged with powers of two, thinned
//! geometrically to a per-dimension budget.

/// Tile-size candidates for a loop of extent `b`, bounded above by
/// `bound`, at most `max` values, preferring multiples of `multiple_of`
/// (the vector width for the column dimension; 1 otherwise).
///
/// The returned list is sorted ascending, deduplicated, never empty, and
/// always contains the largest admissible size.
pub fn tile_candidates(b: usize, bound: usize, max: usize, multiple_of: usize) -> Vec<usize> {
    let cap = bound.min(b).max(1);
    let mut cands: Vec<usize> = Vec::new();
    // Divisors come in pairs (d, b/d) with the smaller member ≤ √b, so
    // O(√b) trial divisions enumerate them all.
    let mut d = 1usize;
    while d * d <= b {
        if b.is_multiple_of(d) {
            if d <= cap {
                cands.push(d);
            }
            let q = b / d;
            if q <= cap {
                cands.push(q);
            }
        }
        d += 1;
    }
    let mut p = 1usize;
    while p <= cap {
        cands.push(p);
        p *= 2;
    }
    cands.push(cap);
    cands.sort_unstable();
    cands.dedup();

    // Prefer vector-width multiples when asked (keep 1 and the cap as
    // fallbacks so the list never collapses).
    if multiple_of > 1 {
        let preferred: Vec<usize> =
            cands.iter().copied().filter(|&c| c % multiple_of == 0).collect();
        if !preferred.is_empty() {
            let mut keep = preferred;
            if !keep.contains(&cap) {
                keep.push(cap);
            }
            keep.sort_unstable();
            keep.dedup();
            cands = keep;
        }
    }

    thin_geometric(cands, max.max(2))
}

/// Keeps at most `max` values, always the first and last, spacing the
/// kept values geometrically.
fn thin_geometric(sorted: Vec<usize>, max: usize) -> Vec<usize> {
    if sorted.len() <= max {
        return sorted;
    }
    let n = sorted.len();
    let mut out = Vec::with_capacity(max);
    out.push(sorted[0]);
    for k in 1..max {
        // geometric index spacing over the sorted list
        let idx = (((n - 1) as f64).powf(k as f64 / (max - 1) as f64)).round() as usize;
        out.push(sorted[idx.min(n - 1)]);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_of_power_of_two() {
        let c = tile_candidates(64, 64, 16, 1);
        assert_eq!(c, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn bound_caps_candidates() {
        let c = tile_candidates(64, 10, 16, 1);
        assert!(c.iter().all(|&t| t <= 10));
        assert_eq!(*c.last().unwrap(), 10);
    }

    #[test]
    fn prime_extent_gets_power_of_two_fallbacks() {
        let c = tile_candidates(97, 97, 16, 1);
        assert!(c.contains(&1));
        assert!(c.contains(&64));
        assert!(c.contains(&97));
    }

    #[test]
    fn vector_multiples_preferred() {
        let c = tile_candidates(512, 512, 16, 8);
        assert!(c.iter().all(|&t| t % 8 == 0 || t == 512), "{c:?}");
        assert!(c.contains(&512));
    }

    #[test]
    fn thinning_respects_budget_and_endpoints() {
        let c = tile_candidates(4096, 4096, 6, 1);
        assert!(c.len() <= 6);
        assert_eq!(c[0], 1);
        assert_eq!(*c.last().unwrap(), 4096);
    }

    #[test]
    fn never_empty() {
        assert!(!tile_candidates(1, 1, 4, 8).is_empty());
        assert!(!tile_candidates(3, 1, 4, 1).is_empty());
    }

    #[test]
    fn divisor_pairs_match_linear_enumeration() {
        // The √b pair enumeration must produce exactly the divisor set of
        // the old O(b) scan for every (extent, bound) combination.
        for b in [1usize, 2, 6, 36, 97, 360, 1024, 1155] {
            for bound in [1usize, 3, 17, b, 2 * b] {
                let cap = bound.min(b).max(1);
                let mut want: Vec<usize> = (1..=cap).filter(|&d| b.is_multiple_of(d)).collect();
                let mut p = 1usize;
                while p <= cap {
                    want.push(p);
                    p *= 2;
                }
                want.push(cap);
                want.sort_unstable();
                want.dedup();
                let got = tile_candidates(b, bound, usize::MAX, 1);
                assert_eq!(got, want, "b={b} bound={bound}");
            }
        }
    }
}
