//! Content-addressed fingerprints for pass artifacts.
//!
//! Every artifact the [`Session`](crate::Session) caches is keyed by a
//! [`Fingerprint`]: a stable 128-bit digest of everything that can
//! influence the artifact's bits and *nothing else*. The key rules
//! (DESIGN.md §12):
//!
//! * **Hashed:** the nest's canonical form ([`palo_ir::StableHash`] on
//!   [`LoopNest`] — loops, arrays, dtype, statement; not the kernel
//!   name), every [`Architecture`] parameter (cache geometry,
//!   prefetchers, timing, core counts), every model-relevant
//!   [`OptimizerConfig`] field (ablation switches, candidate budget,
//!   [`ModelKind`](crate::ModelKind)), the relevant
//!   [`PipelineConfig`](crate::PipelineConfig) knobs
//!   (`validate_semantics_below`, the [`ResourceBudget`]), the pass name,
//!   the pass *version*, and the fingerprints of upstream artifacts
//!   (Lower is keyed by the schedule it lowers, Simulate by the lowered
//!   nest it traces).
//! * **Not hashed:** [`SearchOptions`](crate::SearchOptions) — worker
//!   count, pruning and memoization are guaranteed not to change any
//!   result bit (the engine's determinism contract, DESIGN.md §10), so
//!   two requests differing only in search knobs share one cache line.
//!   The kernel name (display-only). [`FaultPlan`](crate::FaultPlan) —
//!   an armed plan *bypasses* the cache entirely instead of keying it
//!   (injected faults must fire on every run, and a faulted artifact
//!   must never be served to a clean request).
//! * **Version-bump policy:** any change to a pass's observable output
//!   for some input — a model tweak, a new lowering rule, a changed
//!   report field — must bump that pass's `version` constant, which
//!   invalidates exactly that pass's cached artifacts (and, through key
//!   chaining, everything downstream of them).

use crate::config::OptimizerConfig;
use crate::pipeline::ResourceBudget;
use palo_arch::{Architecture, CacheLevel, PrefetcherConfig, SharingScope, WriteAllocate};
use palo_ir::{Digest, LoopNest, StableHash, StableHasher};

/// A cache key: the stable digest of one pass request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub Digest);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

fn hash_prefetcher(h: &mut StableHasher, p: &PrefetcherConfig) {
    match p {
        PrefetcherConfig::None => h.write_u8(0),
        PrefetcherConfig::NextLine => h.write_u8(1),
        PrefetcherConfig::Stride { degree, max_distance } => {
            h.write_u8(2);
            h.write_usize(*degree);
            h.write_usize(*max_distance);
        }
        PrefetcherConfig::AdjacentPair => h.write_u8(3),
        PrefetcherConfig::ConfidentStride { degree, max_distance, min_confidence } => {
            h.write_u8(4);
            h.write_usize(*degree);
            h.write_usize(*max_distance);
            h.write_u8(*min_confidence);
        }
        PrefetcherConfig::Stream { degree, max_distance, confirm } => {
            h.write_u8(5);
            h.write_usize(*degree);
            h.write_usize(*max_distance);
            h.write_u8(*confirm);
        }
    }
}

fn hash_cache_level(h: &mut StableHasher, c: &CacheLevel) {
    h.write_usize(c.line_size);
    h.write_usize(c.associativity);
    h.write_usize(c.size_bytes);
    h.write_u8(match c.sharing {
        SharingScope::Core => 0,
        SharingScope::Chip => 1,
    });
    h.write_u8(match c.write_allocate {
        WriteAllocate::Allocate => 0,
        WriteAllocate::NoAllocate => 1,
    });
    hash_prefetcher(h, &c.prefetcher);
    h.write_f64(c.latency_cycles);
}

/// Folds every model-visible architecture parameter. The platform `name`
/// is display-only and excluded, mirroring the nest's canonical form.
pub fn hash_architecture(h: &mut StableHasher, arch: &Architecture) {
    h.write_usize(arch.caches.len());
    for c in &arch.caches {
        hash_cache_level(h, c);
    }
    h.write_usize(arch.cores);
    h.write_usize(arch.threads_per_core);
    h.write_usize(arch.vector_bytes);
    arch.supports_nt_stores.stable_hash(h);
    h.write_f64(arch.timing.freq_ghz);
    h.write_f64(arch.timing.mem_latency_cycles);
    h.write_f64(arch.timing.mem_transfer_cycles);
    h.write_f64(arch.timing.compute_cycles_per_iter);
    h.write_f64(arch.timing.hit_exposed_fraction);
}

/// Folds every model-relevant optimizer switch. `config.search` is
/// deliberately *not* folded: the engine's determinism contract
/// guarantees worker count, pruning and memoization never change a
/// result bit, so they must not fragment the cache.
pub fn hash_optimizer_config(h: &mut StableHasher, config: &OptimizerConfig) {
    config.prefetch_discount.stable_hash(h);
    config.halve_l2_sets.stable_hash(h);
    config.reorder_step.stable_hash(h);
    config.parallel_grain_constraint.stable_hash(h);
    config.enable_nti.stable_hash(h);
    config.bandwidth_term.stable_hash(h);
    h.write_usize(config.max_candidates_per_dim);
    h.write_u8(match config.model {
        crate::ModelKind::Paper => 0,
        crate::ModelKind::Tss => 1,
        crate::ModelKind::Tts => 2,
        crate::ModelKind::Simulated => 3,
    });
}

/// Folds the resource guards that can change a Simulate artifact (an
/// aborted trace is a different outcome than a completed one).
pub fn hash_budget(h: &mut StableHasher, budget: &ResourceBudget) {
    budget.max_trace_lines.stable_hash(h);
    match budget.deadline {
        None => h.write_u8(0),
        Some(d) => {
            h.write_u8(1);
            h.write_u64(d.as_nanos() as u64);
        }
    }
}

/// Builder for one pass-request fingerprint: seed with the pass identity,
/// fold the request's inputs, [`finish`](FingerprintBuilder::finish).
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    h: StableHasher,
}

impl FingerprintBuilder {
    /// Starts a key for `pass` at schema `version`.
    pub fn pass(pass: &str, version: u32) -> Self {
        let mut h = StableHasher::new();
        h.write_str(pass);
        h.write_u64(version as u64);
        FingerprintBuilder { h }
    }

    /// Folds the nest's canonical form.
    pub fn nest(mut self, nest: &LoopNest) -> Self {
        nest.stable_hash(&mut self.h);
        self
    }

    /// Folds the target architecture.
    pub fn arch(mut self, arch: &Architecture) -> Self {
        hash_architecture(&mut self.h, arch);
        self
    }

    /// Folds the optimizer configuration (minus search knobs).
    pub fn optimizer_config(mut self, config: &OptimizerConfig) -> Self {
        hash_optimizer_config(&mut self.h, config);
        self
    }

    /// Folds the simulation resource guards.
    pub fn budget(mut self, budget: &ResourceBudget) -> Self {
        hash_budget(&mut self.h, budget);
        self
    }

    /// Folds an arbitrary stable-hashable value (upstream artifact
    /// digests, schedules, thresholds).
    pub fn value<T: StableHash + ?Sized>(mut self, v: &T) -> Self {
        v.stable_hash(&mut self.h);
        self
    }

    /// The finished cache key.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};
    use std::time::Duration;

    fn nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("mm", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    fn key(
        n: usize,
        arch: &Architecture,
        config: &OptimizerConfig,
        version: u32,
    ) -> Fingerprint {
        FingerprintBuilder::pass("optimize", version)
            .nest(&nest(n))
            .arch(arch)
            .optimizer_config(config)
            .finish()
    }

    #[test]
    fn identical_requests_collide_and_any_input_change_misses() {
        let arch = presets::intel_i7_6700();
        let config = OptimizerConfig::default();
        let base = key(32, &arch, &config, 1);
        assert_eq!(base, key(32, &arch, &config, 1));

        // Nest bounds.
        assert_ne!(base, key(48, &arch, &config, 1));
        // Pass version.
        assert_ne!(base, key(32, &arch, &config, 2));
        // Architecture parameter.
        let mut other_arch = arch.clone();
        other_arch.caches[0].size_bytes *= 2;
        assert_ne!(base, key(32, &other_arch, &config, 1));
        // Config field.
        let other_cfg = OptimizerConfig { model: ModelKind::Tss, ..config.clone() };
        assert_ne!(base, key(32, &arch, &other_cfg, 1));
    }

    #[test]
    fn search_knobs_do_not_fragment_the_cache() {
        let arch = presets::intel_i7_6700();
        let mut config = OptimizerConfig::default();
        let base = key(32, &arch, &config, 1);
        config.search = crate::SearchOptions::exhaustive();
        assert_eq!(base, key(32, &arch, &config, 1));
        config.search.threads = Some(7);
        assert_eq!(base, key(32, &arch, &config, 1));
    }

    #[test]
    fn platform_name_is_display_only() {
        let arch = presets::intel_i7_6700();
        let mut renamed = arch.clone();
        renamed.name = "some other label".into();
        let config = OptimizerConfig::default();
        assert_eq!(key(32, &arch, &config, 1), key(32, &renamed, &config, 1));
    }

    #[test]
    fn budget_guards_key_the_simulate_request() {
        let b = |budget: &ResourceBudget| {
            FingerprintBuilder::pass("simulate", 1).budget(budget).finish()
        };
        let unlimited = b(&ResourceBudget::default());
        assert_ne!(unlimited, b(&ResourceBudget { max_trace_lines: Some(10), deadline: None }));
        assert_ne!(
            unlimited,
            b(&ResourceBudget {
                max_trace_lines: None,
                deadline: Some(Duration::from_secs(1))
            })
        );
    }
}
