//! [`Codec`] implementations for the optimizer's cached pass artifacts.
//!
//! Together with the impls in `palo-sched`, `palo-cachesim` and
//! `palo-exec`, this makes every [`Pass`](crate::Pass) output
//! serializable, which is what lets the artifact store spill to disk and
//! replay across processes. Encodings are part of the on-disk contract:
//! changing how a type encodes requires bumping the owning pass's
//! version so old entries key-miss instead of mis-decoding.

use crate::classify::Class;
use crate::decision::Decision;
use crate::model::CostBreakdown;
use crate::pass::{
    ClassifyArtifact, DegradeArtifact, LowerArtifact, OptimizeArtifact, SimulateArtifact,
    ValidateArtifact,
};
use crate::pipeline::Rung;
use crate::search::SearchStats;
use palo_codec::{ByteReader, ByteWriter, Codec, DecodeError};
use palo_exec::TimeEstimate;
use palo_sched::{LoweredNest, Schedule};
use std::time::Duration;

impl Codec for Class {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_u8(match self {
            Class::Temporal => 0,
            Class::Spatial => 1,
            Class::ContiguousOnly => 2,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => Class::Temporal,
            1 => Class::Spatial,
            2 => Class::ContiguousOnly,
            _ => return Err(r.invalid("unknown Class tag")),
        })
    }
}

impl Codec for Rung {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_u8(match self {
            Rung::Proposed => 0,
            Rung::Stripped => 1,
            Rung::Baseline => 2,
            Rung::Naive => 3,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => Rung::Proposed,
            1 => Rung::Stripped,
            2 => Rung::Baseline,
            3 => Rung::Naive,
            _ => return Err(r.invalid("unknown Rung tag")),
        })
    }
}

impl Codec for CostBreakdown {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_f64(self.cl1);
        w.write_f64(self.cl2);
        w.write_f64(self.cl2_lines);
        w.write_f64(self.corder);
        w.write_f64(self.pref_efficiency);
        w.write_f64(self.total);
        w.write_f64(self.tie);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CostBreakdown {
            cl1: r.read_f64()?,
            cl2: r.read_f64()?,
            cl2_lines: r.read_f64()?,
            corder: r.read_f64()?,
            pref_efficiency: r.read_f64()?,
            total: r.read_f64()?,
            tie: r.read_f64()?,
        })
    }
}

impl Codec for SearchStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_usize(self.workers);
        w.write_u64(self.candidates_evaluated);
        w.write_u64(self.candidates_pruned);
        w.write_u64(self.memo_hits);
        w.write_u64(self.memo_misses);
        w.write_u64(self.emu_memo_hits);
        w.write_u64(self.emu_memo_misses);
        self.wall.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(SearchStats {
            workers: r.read_usize()?,
            candidates_evaluated: r.read_u64()?,
            candidates_pruned: r.read_u64()?,
            memo_hits: r.read_u64()?,
            memo_misses: r.read_u64()?,
            emu_memo_hits: r.read_u64()?,
            emu_memo_misses: r.read_u64()?,
            wall: Duration::decode(r)?,
        })
    }
}

impl Codec for Decision {
    fn encode(&self, w: &mut ByteWriter) {
        self.class.encode(w);
        self.tile.encode(w);
        self.inter_order.encode(w);
        self.intra_order.encode(w);
        w.write_bool(self.use_nti);
        w.write_usize(self.vector_lanes);
        self.parallel_var.encode(w);
        w.write_f64(self.predicted_cost);
        self.breakdown.encode(w);
        self.sched.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Decision {
            class: Class::decode(r)?,
            tile: Vec::decode(r)?,
            inter_order: Vec::decode(r)?,
            intra_order: Vec::decode(r)?,
            use_nti: r.read_bool()?,
            vector_lanes: r.read_usize()?,
            parallel_var: Option::decode(r)?,
            predicted_cost: r.read_f64()?,
            breakdown: CostBreakdown::decode(r)?,
            sched: Schedule::decode(r)?,
        })
    }
}

impl Codec for ClassifyArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.class.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(ClassifyArtifact { class: Class::decode(r)? })
    }
}

impl Codec for OptimizeArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.decision.encode(w);
        self.search.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(OptimizeArtifact { decision: Decision::decode(r)?, search: SearchStats::decode(r)? })
    }
}

impl Codec for DegradeArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.ladder.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(DegradeArtifact { ladder: Vec::decode(r)? })
    }
}

impl Codec for LowerArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.lowered.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(LowerArtifact { lowered: LoweredNest::decode(r)? })
    }
}

impl Codec for ValidateArtifact {
    fn encode(&self, _w: &mut ByteWriter) {}

    fn decode(_r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(ValidateArtifact)
    }
}

impl Codec for SimulateArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.estimate.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(SimulateArtifact { estimate: TimeEstimate::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_decision() -> Decision {
        let mut sched = Schedule::new();
        sched.split("j", "j_o", "j_i", 512).reorder(&["j_o", "j_i"]).vectorize("j_i", 8);
        Decision {
            class: Class::Temporal,
            tile: vec![32, 512, 2048],
            inter_order: vec![1, 0],
            intra_order: vec![2, 0, 1],
            use_nti: true,
            vector_lanes: 8,
            parallel_var: Some(1),
            predicted_cost: 123.456,
            breakdown: CostBreakdown {
                cl1: 1.0,
                cl2: 2.0,
                cl2_lines: 3.0,
                corder: 4.0,
                pref_efficiency: 0.875,
                total: 123.456,
                tie: 7.0,
            },
            sched,
        }
    }

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_vec();
        assert_eq!(T::decode_from_slice(&bytes).unwrap(), v);
    }

    #[test]
    fn decisions_round_trip() {
        round_trip(sample_decision());
    }

    #[test]
    fn enums_reject_unknown_tags() {
        assert!(Class::decode_from_slice(&[3]).is_err());
        assert!(Rung::decode_from_slice(&[4]).is_err());
    }

    #[test]
    fn artifacts_round_trip() {
        round_trip(ClassifyArtifact { class: Class::Spatial });
        let ladder = vec![
            (Rung::Proposed, sample_decision().into_schedule()),
            (Rung::Naive, Schedule::new()),
        ];
        let deg = DegradeArtifact { ladder };
        let bytes = deg.encode_to_vec();
        assert_eq!(DegradeArtifact::decode_from_slice(&bytes).unwrap().ladder, deg.ladder);

        let opt = OptimizeArtifact {
            decision: sample_decision(),
            search: SearchStats {
                workers: 4,
                candidates_evaluated: 100,
                candidates_pruned: 50,
                memo_hits: 10,
                memo_misses: 5,
                emu_memo_hits: 3,
                emu_memo_misses: 2,
                wall: Duration::from_micros(12_345),
            },
        };
        let bytes = opt.encode_to_vec();
        let back = OptimizeArtifact::decode_from_slice(&bytes).unwrap();
        assert_eq!(back.decision, opt.decision);
        assert_eq!(back.search, opt.search);

        let bytes = ValidateArtifact.encode_to_vec();
        assert!(bytes.is_empty());
        ValidateArtifact::decode_from_slice(&bytes).unwrap();
    }

    #[test]
    fn truncated_decisions_are_errors_not_panics() {
        let bytes = sample_decision().encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(Decision::decode_from_slice(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
