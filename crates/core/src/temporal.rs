//! Algorithm 2: the temporal-reuse optimizer (candidate-enumeration
//! driver).
//!
//! Step 1 jointly searches tile sizes and the two order-defining choices
//! the cost model depends on — the *outermost intra-tile* loop (L1 reuse,
//! working set of Eq. 1) and the *innermost inter-tile* loop (L2 reuse,
//! Eq. 10). *Scoring* is delegated to a [`CostModel`] (the paper's
//! [`crate::model::PrefetchAwareModel`] by default; see
//! [`crate::config::ModelKind`]): this module only enumerates the
//! candidate space, decodes linear indices into [`CandidatePoint`]s, and
//! ranks the model's [`CostBreakdown`]s. Step 2 completes the full
//! inter/intra permutation by minimizing the loop-distance cost `Corder`
//! (Eq. 12).
//!
//! Step 1 runs on the [`crate::search`] engine: the per-`Tcol` candidate
//! lists are flattened into one linear index space, sharded across the
//! worker pool, pruned against the shared incumbent with the model's
//! admissible [`CostModel::lower_bound`], and memoized at two levels
//! (process-wide Algorithm-1 bounds, per-search footprint terms — both
//! owned by [`TileContext`]). The engine's total order makes the winner
//! independent of worker count.

use crate::candidates::tile_candidates;
use crate::classify::Class;
use crate::config::OptimizerConfig;
use crate::decision::Decision;
use crate::footprint::Footprints;
use crate::model::{self, CandidatePoint, CostBreakdown, CostModel, TileContext};
use crate::order::{corder, permutations};
use crate::post;
use crate::search::{self, cost_bits, resolve_threads, Candidate, SearchCounters, SearchStats};
use palo_arch::Architecture;
use palo_ir::{LoopNest, NestInfo};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// One fully evaluated Step-1 candidate: a tile plus the order-defining
/// `(x, u)` pair, ranked by `(total, tie cost, linear index, x, u)`.
struct TempCand {
    bd: CostBreakdown,
    tile: Vec<usize>,
    /// Outermost intra-tile variable.
    x: usize,
    /// Innermost inter-tile variable.
    u: usize,
    /// `[linear candidate index, x, u]` — the lexicographic tail of the
    /// engine's total order.
    key: [usize; 3],
}

impl Candidate for TempCand {
    fn cost_key(&self) -> (u64, u64) {
        (cost_bits(self.bd.total), cost_bits(self.bd.tie))
    }
    fn tie_key(&self) -> &[usize] {
        &self.key
    }
}

/// One `Tcol` slice of the candidate space: the per-variable tile-size
/// lists and the slice's offset in the flattened linear index space.
struct Plan {
    lists: Vec<Vec<usize>>,
    offset: usize,
}

/// Runs the temporal optimizer on a nest classified [`Class::Temporal`].
pub fn optimize(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> Decision {
    optimize_with_stats(nest, info, arch, config).0
}

/// [`optimize`], also reporting what the candidate search did.
///
/// Resolves `config.model` into a [`CostModel`] plus the effective
/// `(arch, config)` pair exactly once, then drives
/// [`optimize_with_model`].
pub fn optimize_with_stats(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
) -> (Decision, SearchStats) {
    let resolved = model::resolve(config, arch);
    optimize_with_model(nest, info, &resolved.arch, &resolved.config, resolved.model.as_ref())
}

/// The Step-1/Step-2 driver under an explicit [`CostModel`] and an
/// already-*effective* `(arch, config)` pair — callers that resolve a
/// [`crate::config::ModelKind`] themselves (the baselines) enter here.
pub fn optimize_with_model(
    nest: &LoopNest,
    info: &NestInfo,
    arch: &Architecture,
    config: &OptimizerConfig,
    cost_model: &dyn CostModel,
) -> (Decision, SearchStats) {
    let start = Instant::now();
    let Some(col) = nest.column_var().map(|v| v.index()) else {
        return (post::passthrough(nest, info, arch, config), SearchStats::default());
    };
    let extents = nest.extents();
    let n = extents.len();
    if n < 2 {
        return (post::passthrough(nest, info, arch, config), SearchStats::default());
    }
    let dts = nest.dtype().size_bytes();
    let fp = Footprints::new(nest, arch.l1().line_size);
    let lanes = arch.vector_lanes(dts);
    let use_nti = post::nti_eligible(info, arch, config);
    let ld = extents[col]; // leading-dimension surrogate for Algorithm 1

    let counters = SearchCounters::default();
    let ctx = TileContext::temporal(nest, &fp, &extents, arch, config, col, use_nti, &counters);

    // Positional Algorithm-1 caps: the first non-column dimension is
    // bounded against the L1, the second against the L2, the rest by the
    // problem size ("for the first three dimensions ... and problem size
    // for loop nests with four or more levels").
    let others: Vec<usize> = (0..n).filter(|&v| v != col).collect();

    let col_cands =
        tile_candidates(extents[col], extents[col], config.max_candidates_per_dim, lanes);

    let mut plans: Vec<Plan> = Vec::with_capacity(col_cands.len());
    let mut total = 0usize;
    for &tcol in &col_cands {
        let cap1 = ctx.l1_cap(tcol, ld, usize::MAX >> 1);
        let cap2 = ctx.l2_cap(tcol, ld, usize::MAX >> 1);

        // Per-variable candidate lists, shrunk until the slice's
        // cross-product is tractable.
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        lists[col] = vec![tcol];
        let mut budget = config.max_candidates_per_dim;
        loop {
            for (pos, &v) in others.iter().enumerate() {
                let cap = match pos {
                    0 => cap1,
                    1 => cap2,
                    _ => extents[v],
                };
                lists[v] = tile_candidates(extents[v], cap, budget, 1);
            }
            let combos: usize = lists.iter().map(|l| l.len().max(1)).product();
            if combos <= 300_000 || budget <= 3 {
                break;
            }
            budget -= 1;
        }
        let combos: usize = lists.iter().map(|l| l.len().max(1)).product();
        plans.push(Plan { lists, offset: total });
        total += combos;
    }

    let workers = resolve_threads(config.search.threads);
    let best = search::search_min(workers, total, |i, incumbent| {
        // Decode the linear index: which Tcol slice, then the odometer
        // position inside its cross-product (last variable fastest).
        let p = plans.partition_point(|pl| pl.offset <= i) - 1;
        let lists = &plans[p].lists;
        let mut rem = i - plans[p].offset;
        let mut tile = vec![0usize; n];
        for v in (0..n).rev() {
            let len = lists[v].len();
            tile[v] = lists[v][rem % len];
            rem /= len;
        }

        // Branch and bound against the model's admissible bound; `None`
        // means the tile itself is infeasible. Strict comparison inside
        // `prunes` keeps cost-tied candidates alive for the
        // deterministic tie-break.
        let lb = cost_model.lower_bound(&ctx, &tile)?;
        if config.search.prune && incumbent.prunes(lb) {
            counters.pruned.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        counters.evaluated.fetch_add(1, Ordering::Relaxed);

        // The full `(x, u)` sweep of this tile, scored by the model.
        let mut best: Option<TempCand> = None;
        for x in 0..n {
            for u in 0..n {
                let point = CandidatePoint { tile: &tile, x: Some(x), u: Some(u) };
                let Some(bd) = cost_model.evaluate(&ctx, &point) else { continue };
                let cand = TempCand { bd, tile: tile.clone(), x, u, key: [i, x, u] };
                if best.as_ref().is_none_or(|b| search::beats(&cand, b)) {
                    best = Some(cand);
                }
            }
        }
        best
    });
    let stats = counters.snapshot(workers, start.elapsed());

    let Some(best) = best else {
        return (post::passthrough(nest, info, arch, config), stats);
    };

    let (inter_order, intra_order) = choose_orders(&best, col, &extents, config);
    let mut bd = best.bd;
    // Step 2 never changes the ranked cost; record the winning
    // permutation's distance cost for observability.
    bd.corder = corder(&inter_order, &intra_order, &best.tile, &extents);
    let decision = post::emit(
        nest,
        arch,
        Class::Temporal,
        best.tile,
        inter_order,
        intra_order,
        use_nti,
        bd,
    );
    (decision, stats)
}

/// Step 2: complete the permutation, minimizing `Corder` (Eq. 12) subject
/// to: `x` outermost intra-tile, the column loop innermost intra-tile,
/// `u` innermost inter-tile, and the column loop not outermost.
fn choose_orders(
    best: &TempCand,
    col: usize,
    extents: &[usize],
    config: &OptimizerConfig,
) -> (Vec<usize>, Vec<usize>) {
    let n = extents.len();
    let default_intra: Vec<usize> = std::iter::once(best.x)
        .chain((0..n).filter(|&v| v != best.x && v != col))
        .chain(std::iter::once(col))
        .collect();
    // Default inter order: non-(u, col) vars in program order, then the
    // column loop (never outermost when another var exists), then `u`
    // innermost.
    let mut default_inter: Vec<usize> = (0..n).filter(|&v| v != best.u && v != col).collect();
    if col != best.u {
        default_inter.push(col);
    }
    default_inter.push(best.u);

    if !config.reorder_step {
        return (default_inter, default_intra);
    }

    // Enumerate intra middles and inter prefixes.
    let intra_middle: Vec<usize> = (0..n).filter(|&v| v != best.x && v != col).collect();
    let inter_free: Vec<usize> = (0..n).filter(|&v| v != best.u).collect();

    let intra_perms = permutations(&intra_middle);
    let inter_perms = permutations(&inter_free);
    if intra_perms.len().saturating_mul(inter_perms.len()) > 2_000_000 {
        return (default_inter, default_intra);
    }

    let mut best_order: Option<(f64, Vec<usize>, Vec<usize>)> = None;
    for ip in &inter_perms {
        // Column loop must not be outermost among the *tiled* inter loops.
        if let Some(&first_tiled) =
            ip.iter().chain(std::iter::once(&best.u)).find(|&&v| best.tile[v] < extents[v])
        {
            if first_tiled == col {
                continue;
            }
        }
        let mut inter = ip.clone();
        inter.push(best.u);
        for mp in &intra_perms {
            let mut intra = Vec::with_capacity(n);
            intra.push(best.x);
            intra.extend(mp.iter().copied());
            intra.push(col);
            let c = corder(&inter, &intra, &best.tile, extents);
            if best_order.as_ref().is_none_or(|(bc, _, _)| c < *bc) {
                best_order = Some((c, inter.clone(), intra));
            }
        }
    }
    match best_order {
        Some((_, inter, intra)) => (inter, intra),
        None => (default_inter, default_intra),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchOptions;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder, NestInfo};

    fn matmul(nm: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", nm);
        let j = b.var("j", nm);
        let k = b.var("k", nm);
        let a = b.array("A", &[nm, nm]);
        let bm = b.array("B", &[nm, nm]);
        let c = b.array("C", &[nm, nm]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    fn optimize_matmul(nm: usize, arch: &Architecture) -> Decision {
        let nest = matmul(nm);
        let info = NestInfo::analyze(&nest);
        optimize(&nest, &info, arch, &OptimizerConfig::default())
    }

    #[test]
    fn matmul_gets_tiled_and_parallel() {
        let arch = presets::intel_i7_5930k();
        let d = optimize_matmul(512, &arch);
        assert_eq!(d.class, Class::Temporal);
        assert!(d.tile.iter().any(|&t| t > 1 && t < 512), "tile {:?}", d.tile);
        assert!(d.parallel_var.is_some());
        assert_eq!(d.vector_lanes, 8);
        assert!(!d.use_nti, "accumulating output must not use NT stores");
        // Column loop (j = var 1) innermost intra.
        assert_eq!(*d.intra_order.last().unwrap(), 1);
        // schedule lowers cleanly
        let nest = matmul(512);
        d.schedule().lower(&nest).unwrap();
    }

    #[test]
    fn working_sets_fit_budgets() {
        let arch = presets::intel_i7_6700();
        let nest = matmul(512);
        let info = NestInfo::analyze(&nest);
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        let fp = Footprints::new(&nest, 64);
        let ws_l2: f64 = (0..fp.shapes().len()).map(|a| fp.elems(a, &d.tile)).sum();
        // halved, hyper-thread-shared L2 budget in f32 elements
        let budget = (256 * 1024 / 4 / 2 / 2) as f64;
        assert!(ws_l2 <= budget, "ws {ws_l2} > {budget}");
    }

    #[test]
    fn parallel_grain_respected() {
        let arch = presets::intel_i7_5930k(); // 12 threads
        let d = optimize_matmul(512, &arch);
        let outer: f64 = d
            .inter_order
            .iter()
            .filter(|&&v| v != *d.inter_order.last().unwrap() && v != 1)
            .map(|&v| (512f64 / d.tile[v] as f64).ceil())
            .product();
        assert!(outer >= 1.0);
        // The emitted schedule lowers and has a parallel loop.
        let nest = matmul(512);
        let low = d.schedule().lower(&nest).unwrap();
        assert!(low.parallel_loop().is_some());
    }

    #[test]
    fn arm_differs_from_intel() {
        let d_intel = optimize_matmul(512, &presets::intel_i7_5930k());
        let d_arm = optimize_matmul(512, &presets::arm_cortex_a15());
        // Different hierarchies must be allowed to pick different tiles;
        // at minimum both must be valid and the ARM one must not vectorize
        // by 8 f32 (NEON = 4).
        assert_eq!(d_arm.vector_lanes, 4);
        assert!(d_intel.vector_lanes == 8);
    }

    #[test]
    fn reorder_step_changes_or_keeps_cost_monotone() {
        let nest = matmul(256);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_6700();
        let with = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        let without = optimize(
            &nest,
            &info,
            &arch,
            &OptimizerConfig { reorder_step: false, ..OptimizerConfig::default() },
        );
        // Step 2 does not change the model cost (it breaks ties).
        assert_eq!(with.predicted_cost, without.predicted_cost);
        assert_eq!(with.tile, without.tile);
    }

    #[test]
    fn breakdown_terms_recompose_the_total() {
        let nest = matmul(256);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let d = optimize(&nest, &info, &arch, &OptimizerConfig::default());
        let bd = &d.breakdown;
        let a2 = arch.l2().latency_cycles;
        let a3 = arch.l3().map(|c| c.latency_cycles).unwrap();
        let am = arch.timing.mem_transfer_cycles;
        let recomposed = a2 * bd.cl1 + a3 * bd.cl2 + am * bd.cl2_lines;
        assert_eq!(recomposed.to_bits(), bd.total.to_bits());
        assert_eq!(d.predicted_cost.to_bits(), bd.total.to_bits());
        assert!(bd.corder > 0.0, "winning permutation has a distance cost");
        assert!(bd.pref_efficiency > 0.0);
    }

    #[test]
    fn single_loop_nest_passes_through() {
        let mut b = NestBuilder::new("dot", DType::F32);
        let i = b.var("i", 64);
        let a = b.array("A", &[64]);
        let c = b.array("C", &[1]);
        let ld = b.load(a, &[i]);
        b.store_expr(c, vec![palo_ir::AffineIndex::constant(0)], ld);
        let nest = b.build().unwrap();
        let info = NestInfo::analyze(&nest);
        let d = optimize(&nest, &info, &presets::intel_i7_6700(), &OptimizerConfig::default());
        // Degenerate nest: no tiling emitted, still a valid schedule.
        d.schedule().lower(&nest).unwrap();
    }

    #[test]
    fn search_stats_report_work_and_pruning() {
        let nest = matmul(512);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_5930k();
        let (d, stats) = optimize_with_stats(&nest, &info, &arch, &OptimizerConfig::default());
        assert_eq!(d.class, Class::Temporal);
        assert!(stats.workers >= 1);
        assert!(stats.candidates_evaluated > 0, "{stats:?}");
        assert!(stats.candidates_pruned > 0, "{stats:?}");
        assert!(stats.memo_hits > 0, "{stats:?}");
    }

    #[test]
    fn exhaustive_and_engine_search_agree() {
        // Pruning + memoization + parallelism must not change the answer.
        let nest = matmul(256);
        let info = NestInfo::analyze(&nest);
        let arch = presets::intel_i7_6700();
        let exhaustive = OptimizerConfig {
            search: SearchOptions::exhaustive(),
            ..OptimizerConfig::default()
        };
        let engine = OptimizerConfig {
            search: SearchOptions { threads: Some(3), prune: true, memo: true },
            ..OptimizerConfig::default()
        };
        let (de, _) = optimize_with_stats(&nest, &info, &arch, &exhaustive);
        let (dg, _) = optimize_with_stats(&nest, &info, &arch, &engine);
        assert_eq!(de, dg);
        assert_eq!(de.predicted_cost.to_bits(), dg.predicted_cost.to_bits());
    }
}
