//! The Degrade pass: materializes the degradation ladder (PR 1's
//! fallback semantics) as a cached artifact.

use super::{Pass, PassCx};
use crate::error::PaloError;
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use crate::pipeline::Rung;
use palo_arch::Architecture;
use palo_ir::LoopNest;
use palo_sched::Schedule;

/// The ladder of `(rung, schedule)` candidates, best first: Proposed,
/// Stripped (when distinct), Baseline, Naive.
#[derive(Debug, Clone)]
pub struct DegradeArtifact {
    /// Rungs in descent order.
    pub ladder: Vec<(Rung, Schedule)>,
}

/// Builds the ladder for a nest and an optional proposed schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradePass;

impl Pass for DegradePass {
    type Input<'a> = (&'a LoopNest, Option<&'a Schedule>);
    type Output = DegradeArtifact;

    fn name(&self) -> &'static str {
        "degrade"
    }

    fn version(&self) -> u32 {
        1
    }

    /// Key: nest + architecture (the baseline rung's vector lanes and
    /// parallelization depend on it) + the proposed schedule, tagged so
    /// "no proposal" and "empty proposal" differ.
    fn fingerprint(
        &self,
        cx: &PassCx<'_>,
        (nest, proposed): &Self::Input<'_>,
    ) -> Option<Fingerprint> {
        let mut b =
            FingerprintBuilder::pass(self.name(), self.version()).nest(nest).arch(cx.arch);
        b = match proposed {
            None => b.value(&0u64),
            Some(s) => b.value(&1u64).value(*s),
        };
        Some(b.finish())
    }

    fn run(
        &self,
        cx: &PassCx<'_>,
        (nest, proposed): &Self::Input<'_>,
    ) -> Result<Self::Output, PaloError> {
        let mut ladder: Vec<(Rung, Schedule)> = Vec::new();
        if let Some(p) = proposed {
            ladder.push((Rung::Proposed, (*p).clone()));
            let stripped = p.without_execution_hints();
            if stripped != **p {
                ladder.push((Rung::Stripped, stripped));
            }
        }
        ladder.push((Rung::Baseline, baseline_schedule(nest, cx.arch)));
        ladder.push((Rung::Naive, Schedule::new()));
        Ok(DegradeArtifact { ladder })
    }
}

/// The §5.1 developer-baseline schedule: column loop rotated innermost
/// and vectorized, outermost loop parallelized, nothing tiled.
///
/// This mirrors `palo_baselines::basic::baseline`; the copy lives here
/// because `palo-baselines` depends on this crate, so the ladder cannot
/// call into it.
pub(crate) fn baseline_schedule(nest: &LoopNest, arch: &Architecture) -> Schedule {
    let mut s = Schedule::new();
    let names: Vec<&str> = nest.vars().iter().map(|v| v.name.as_str()).collect();
    let n = names.len();
    let col = nest.column_var().map(|v| v.index());

    let order: Vec<&str> = match col {
        Some(c) => {
            let mut o: Vec<&str> = (0..n).filter(|&v| v != c).map(|v| names[v]).collect();
            o.push(names[c]);
            o
        }
        None => names.clone(),
    };
    if n > 1 && order != names {
        s.reorder(&order);
    }
    if let Some(c) = col {
        let lanes = arch.vector_lanes(nest.dtype().size_bytes());
        if lanes > 1 && nest.extent(palo_ir::VarId(c)) >= lanes {
            s.vectorize(names[c], lanes);
        }
    }
    if let Some(&outer) = order.first() {
        if n > 1 {
            s.parallel(outer);
        }
    }
    s
}
