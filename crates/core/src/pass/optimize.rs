//! The Optimize pass: the candidate search (Algorithms 2–3) as a cached
//! pass.

use super::{Pass, PassCx};
use crate::classify::Class;
use crate::decision::Decision;
use crate::error::{catch_panic, PaloError};
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use crate::model::ResolvedModel;
use crate::search::SearchStats;
use crate::{post, spatial, temporal};
use palo_arch::Architecture;
use palo_ir::{LoopNest, NestInfo};

/// The optimizer's output for one `(nest, arch, config)` request.
///
/// A cached artifact replays the *producing* run's [`SearchStats`]
/// verbatim: the decision is a pure function of the request (the
/// determinism contract), the stats describe the search that first
/// produced it.
#[derive(Debug, Clone)]
pub struct OptimizeArtifact {
    /// The winning scheduling decision.
    pub decision: Decision,
    /// What the producing candidate search did.
    pub search: SearchStats,
}

/// Runs the class-appropriate optimizer driver under the session's
/// once-resolved model. Panics (including the injected
/// `panic_in_optimizer` fault) surface as [`PaloError::Panicked`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizePass;

/// The shared optimize dispatch: routes an already-classified nest to
/// its driver under an already-resolved model. `arch`/`config` are the
/// *original* pair — the `ContiguousOnly` passthrough runs under them
/// (the decision mirrors what the unoptimized flow would emit), while
/// the search drivers run under the resolved *effective* pair.
pub(crate) fn dispatch(
    nest: &LoopNest,
    info: &NestInfo,
    class: Class,
    arch: &Architecture,
    config: &crate::OptimizerConfig,
    resolved: &ResolvedModel,
) -> (Decision, SearchStats) {
    match class {
        Class::Temporal => temporal::optimize_with_model(
            nest,
            info,
            &resolved.arch,
            &resolved.config,
            resolved.model.as_ref(),
        ),
        Class::Spatial => spatial::optimize_with_model(
            nest,
            info,
            &resolved.arch,
            &resolved.config,
            resolved.model.as_ref(),
        ),
        Class::ContiguousOnly => {
            (post::passthrough(nest, info, arch, config), SearchStats::default())
        }
    }
}

impl Pass for OptimizePass {
    type Input<'a> = (&'a LoopNest, Class);
    type Output = OptimizeArtifact;

    fn name(&self) -> &'static str {
        "optimize"
    }

    fn version(&self) -> u32 {
        1
    }

    /// Key: nest canonical form + architecture + optimizer config. The
    /// class is *derived* from the nest, so it needs no separate fold;
    /// `config.search` is excluded by the determinism contract
    /// (DESIGN.md §12).
    fn fingerprint(&self, cx: &PassCx<'_>, (nest, _): &Self::Input<'_>) -> Option<Fingerprint> {
        Some(
            FingerprintBuilder::pass(self.name(), self.version())
                .nest(nest)
                .arch(cx.arch)
                .optimizer_config(&cx.config.optimizer)
                .finish(),
        )
    }

    fn run(
        &self,
        cx: &PassCx<'_>,
        (nest, class): &Self::Input<'_>,
    ) -> Result<Self::Output, PaloError> {
        let panic_fault = cx.ctl.faults().panic_in_optimizer;
        catch_panic("optimizer", || {
            if panic_fault {
                panic!("injected optimizer fault");
            }
            let info = NestInfo::analyze(nest);
            let (decision, search) =
                dispatch(nest, &info, *class, cx.arch, &cx.config.optimizer, cx.resolved);
            OptimizeArtifact { decision, search }
        })
    }
}
