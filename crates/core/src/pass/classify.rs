//! The Classify pass: Figure 2's kernel classification as the first
//! stage of the pass graph.

use super::{Pass, PassCx};
use crate::classify::{classify, Class};
use crate::error::PaloError;
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use palo_ir::{LoopNest, NestInfo};

/// The classification of one nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyArtifact {
    /// Which optimizer the nest routes to.
    pub class: Class,
}

/// Classifies a nest ([`crate::classify()`]); purely structural, so the
/// key is the nest's canonical form alone — no architecture, no config.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassifyPass;

impl Pass for ClassifyPass {
    type Input<'a> = &'a LoopNest;
    type Output = ClassifyArtifact;

    fn name(&self) -> &'static str {
        "classify"
    }

    fn version(&self) -> u32 {
        1
    }

    fn fingerprint(&self, _cx: &PassCx<'_>, nest: &Self::Input<'_>) -> Option<Fingerprint> {
        Some(FingerprintBuilder::pass(self.name(), self.version()).nest(nest).finish())
    }

    fn run(&self, _cx: &PassCx<'_>, nest: &Self::Input<'_>) -> Result<Self::Output, PaloError> {
        crate::error::catch_panic("classify", || {
            let info = NestInfo::analyze(nest);
            ClassifyArtifact { class: classify(&info) }
        })
    }
}
