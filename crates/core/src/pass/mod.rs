//! The typed pass framework behind [`Session`](crate::Session).
//!
//! The former monolithic pipeline is split into six passes, each a
//! [`Pass`] with a typed input and a typed, immutable output artifact:
//!
//! | pass | input | artifact |
//! |---|---|---|
//! | [`ClassifyPass`] | nest | [`ClassifyArtifact`] (kernel class) |
//! | [`OptimizePass`] | nest + class | [`OptimizeArtifact`] (decision + search stats) |
//! | [`DegradePass`] | nest + proposed schedule | [`DegradeArtifact`] (the ladder rungs) |
//! | [`LowerPass`] | nest + schedule | [`LowerArtifact`] (lowered nest) |
//! | [`ValidatePass`] | nest + lowered | [`ValidateArtifact`] (semantic proof) |
//! | [`SimulatePass`] | nest + lowered | [`SimulateArtifact`] (time estimate) |
//!
//! A pass declares a stable [`Pass::name`] and a [`Pass::version`] and
//! computes a [`Fingerprint`] for each request; the
//! [`Session`](crate::Session) consults its content-addressed
//! [`ArtifactCache`] under that key before running the pass. A pass that
//! returns `None` from [`Pass::fingerprint`] is uncacheable for that
//! request (e.g. [`SimulatePass`] under a wall-clock deadline), and the
//! session bypasses the cache wholesale while a
//! [`FaultPlan`](crate::FaultPlan) is armed — injected faults must fire
//! on every run and must never poison the cache. Only *successful*
//! artifacts are cached; errors always recompute.
//!
//! The cache key folds the pass name and version first, so two passes
//! can never collide on a key and a bumped version invalidates exactly
//! that pass's artifacts (DESIGN.md §12).

mod classify;
mod degrade;
mod lower;
mod optimize;
mod simulate;
mod validate;

pub use classify::{ClassifyArtifact, ClassifyPass};
pub use degrade::{DegradeArtifact, DegradePass};
pub use lower::{LowerArtifact, LowerPass};
pub use optimize::{OptimizeArtifact, OptimizePass};
pub use simulate::{SimulateArtifact, SimulatePass};
pub use validate::{ValidateArtifact, ValidatePass};

pub(crate) use optimize::dispatch;

use crate::error::PaloError;
use crate::fingerprint::Fingerprint;
use crate::model::ResolvedModel;
use crate::pipeline::PipelineConfig;
use palo_arch::Architecture;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Read-only context every pass runs under: the session's architecture
/// and configuration, the once-resolved cost model, and the per-run
/// mutable control block.
pub struct PassCx<'s> {
    /// The *original* target architecture (simulation, lowering and the
    /// `ContiguousOnly` passthrough run against it; the optimizer search
    /// runs against `resolved.arch`).
    pub arch: &'s Architecture,
    /// The session's pipeline configuration.
    pub config: &'s PipelineConfig,
    /// The cost model, resolved exactly once per session
    /// ([`crate::model::resolve`]) together with its effective
    /// `(arch, config)` pair.
    pub resolved: &'s ResolvedModel,
    /// Per-run mutable state (fault counters, start time).
    pub ctl: &'s RunCtl,
}

/// Per-run mutable control block, threaded through the passes of one
/// [`Session::run`](crate::Session::run) call.
///
/// Besides the mutable counters, the control block carries the run's
/// **effective** resource budget, fault plan and simulate switch — the
/// session config with the request's
/// [`RunOverrides`](crate::RunOverrides) layered on top
/// ([`RunCtl::for_run`]). Passes consult these instead of
/// `cx.config`, so two concurrent runs of one session can carry
/// different deadlines or fault plans without interfering.
///
/// Fault-injection counters are *run*-scoped, not pass- or
/// session-scoped: `FaultPlan::fail_first_lowerings = 2` means the first
/// two lowering attempts *of this run* fail, however many runs the
/// session has served before.
#[derive(Debug)]
pub struct RunCtl {
    start: Instant,
    budget: crate::pipeline::ResourceBudget,
    faults: crate::pipeline::FaultPlan,
    simulate: bool,
    lowerings_attempted: Cell<u64>,
    timings: RefCell<Vec<PassTiming>>,
}

/// One pass request of a run, as timed by
/// [`Session::execute`](crate::Session::execute): how long the request
/// took wall-clock and whether the artifact came from the cache.
///
/// Requests are recorded in execution order, one entry per request (a
/// ladder that lowers three rungs records three `lower` entries);
/// aggregate with
/// [`PipelineReport::pass_totals`](crate::PipelineReport::pass_totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// The pass's stable name ([`Pass::name`]).
    pub pass: &'static str,
    /// Wall-clock time of the request. For a cached artifact this is the
    /// lookup time, not the producing run's time.
    pub elapsed: Duration,
    /// Whether the artifact was served from the cache.
    pub cached: bool,
}

impl RunCtl {
    /// A fresh control block with no budget, no faults and simulation
    /// enabled; stamps the run's start time. Prefer [`RunCtl::for_run`]
    /// inside the session, which layers request overrides over the
    /// session config.
    pub fn new() -> Self {
        RunCtl {
            start: Instant::now(),
            budget: crate::pipeline::ResourceBudget::default(),
            faults: crate::pipeline::FaultPlan::default(),
            simulate: true,
            lowerings_attempted: Cell::new(0),
            timings: RefCell::new(Vec::new()),
        }
    }

    /// The control block of one run: `config` with the request's
    /// `overrides` layered on top ([`RunOverrides::effective`]).
    ///
    /// [`RunOverrides::effective`]: crate::RunOverrides::effective
    pub fn for_run(config: &PipelineConfig, overrides: &crate::RunOverrides) -> Self {
        let (budget, faults, simulate) = overrides.effective(config);
        RunCtl { budget, faults, simulate, ..RunCtl::new() }
    }

    /// When the run started (deadline accounting).
    pub fn start(&self) -> Instant {
        self.start
    }

    /// The run's effective resource budget (session config layered with
    /// the request's overrides).
    pub fn budget(&self) -> crate::pipeline::ResourceBudget {
        self.budget
    }

    /// The run's effective fault plan. While armed, the session bypasses
    /// the artifact cache for this run's requests.
    pub fn faults(&self) -> crate::pipeline::FaultPlan {
        self.faults
    }

    /// Whether this run executes the simulate stage.
    pub fn simulate(&self) -> bool {
        self.simulate
    }

    /// Counts one lowering attempt and returns the new total.
    pub fn count_lowering(&self) -> u64 {
        let n = self.lowerings_attempted.get() + 1;
        self.lowerings_attempted.set(n);
        n
    }

    /// Records one timed pass request.
    pub fn record_pass(&self, pass: &'static str, elapsed: Duration, cached: bool) {
        self.timings.borrow_mut().push(PassTiming { pass, elapsed, cached });
    }

    /// Drains the recorded per-pass timings (in execution order).
    pub fn take_timings(&self) -> Vec<PassTiming> {
        std::mem::take(&mut self.timings.borrow_mut())
    }
}

impl Default for RunCtl {
    fn default() -> Self {
        RunCtl::new()
    }
}

/// One stage of the pipeline: a pure, deterministic function from a
/// typed input (under a [`PassCx`]) to a typed artifact.
///
/// # Contract
///
/// * `run` must be deterministic in `(cx.arch, cx.config, cx.resolved,
///   input)` — the cache serves a prior artifact in place of a re-run,
///   so any hidden input would desynchronize cached and uncached runs.
/// * `fingerprint` must fold **every** determinant of the output (the
///   session folds the pass name/version for you via
///   [`Fingerprint`] builders inside each pass) and **nothing
///   run-specific**; return `None` when a request depends on wall-clock
///   state and is therefore uncacheable.
/// * Bump `version` whenever the observable output changes for some
///   input — that, not manual invalidation, is how stale artifacts die.
pub trait Pass {
    /// The request consumed by one invocation (borrows are fine).
    type Input<'a>;
    /// The artifact produced; cached behind an [`Arc`].
    type Output: Send + Sync + 'static;

    /// Stable machine-readable pass name, folded into every cache key.
    fn name(&self) -> &'static str;

    /// Artifact schema version, folded into every cache key.
    fn version(&self) -> u32;

    /// The content-addressed key of this request, or `None` when the
    /// request must not be cached.
    fn fingerprint(&self, cx: &PassCx<'_>, input: &Self::Input<'_>) -> Option<Fingerprint>;

    /// Executes the pass.
    ///
    /// # Errors
    ///
    /// Pass-specific [`PaloError`]s; errors are never cached.
    fn run(&self, cx: &PassCx<'_>, input: &Self::Input<'_>) -> Result<Self::Output, PaloError>;
}

/// Counters of one [`ArtifactCache`] (or a window of one), snapshotted
/// into [`PipelineReport::cache`](crate::PipelineReport::cache) and the
/// batch report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a cached artifact.
    pub hits: u64,
    /// Requests that ran their pass and stored the artifact.
    pub misses: u64,
    /// Requests that skipped the cache entirely (armed faults,
    /// uncacheable fingerprints).
    pub bypasses: u64,
}

impl CacheStats {
    /// Hits over cache-eligible requests (`hits + misses`); `0.0` when
    /// nothing was eligible.
    pub fn hit_rate(&self) -> f64 {
        let eligible = self.hits + self.misses;
        if eligible == 0 {
            0.0
        } else {
            self.hits as f64 / eligible as f64
        }
    }

    /// The counter movement since `earlier` (a snapshot of the same
    /// cache): windowed stats for one run or one batch.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
        }
    }
}

/// The session's content-addressed artifact store.
///
/// Artifacts are type-erased behind `Arc<dyn Any + Send + Sync>`; the
/// pass name and version folded into every [`Fingerprint`] guarantee a
/// key can only ever map to one concrete artifact type, so the downcast
/// on hit cannot confuse types (a failed downcast is treated as a miss
/// and overwritten, belt and braces).
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<Fingerprint, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// The artifact under `key`, if present with the expected type.
    /// Counts a hit or a miss.
    pub fn get<T: Send + Sync + 'static>(&self, key: Fingerprint) -> Option<Arc<T>> {
        let found = self
            .map
            .lock()
            .ok()
            .and_then(|map| map.get(&key).cloned())
            .and_then(|any| any.downcast::<T>().ok());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `artifact` under `key`.
    pub fn insert<T: Send + Sync + 'static>(&self, key: Fingerprint, artifact: Arc<T>) {
        if let Ok(mut map) = self.map.lock() {
            map.insert(key, artifact);
        }
    }

    /// Counts one cache-bypassed request.
    pub fn count_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cached artifacts currently held.
    pub fn len(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters of this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::Digest;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(Digest(n))
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let cache = ArtifactCache::new();
        assert!(cache.get::<String>(key(1)).is_none());
        cache.insert(key(1), Arc::new("artifact".to_string()));
        assert_eq!(*cache.get::<String>(key(1)).unwrap(), "artifact");
        cache.count_bypass();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mismatched_type_is_a_miss_not_a_confusion() {
        let cache = ArtifactCache::new();
        cache.insert(key(2), Arc::new(7u64));
        assert!(cache.get::<String>(key(2)).is_none());
        assert_eq!(*cache.get::<u64>(key(2)).unwrap(), 7);
    }

    #[test]
    fn windowed_stats_subtract() {
        let a = CacheStats { hits: 10, misses: 4, bypasses: 1 };
        let b = CacheStats { hits: 3, misses: 4, bypasses: 0 };
        assert_eq!(a.since(&b), CacheStats { hits: 7, misses: 0, bypasses: 1 });
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
