//! The typed pass framework behind [`Session`](crate::Session).
//!
//! The former monolithic pipeline is split into six passes, each a
//! [`Pass`] with a typed input and a typed, immutable output artifact:
//!
//! | pass | input | artifact |
//! |---|---|---|
//! | [`ClassifyPass`] | nest | [`ClassifyArtifact`] (kernel class) |
//! | [`OptimizePass`] | nest + class | [`OptimizeArtifact`] (decision + search stats) |
//! | [`DegradePass`] | nest + proposed schedule | [`DegradeArtifact`] (the ladder rungs) |
//! | [`LowerPass`] | nest + schedule | [`LowerArtifact`] (lowered nest) |
//! | [`ValidatePass`] | nest + lowered | [`ValidateArtifact`] (semantic proof) |
//! | [`SimulatePass`] | nest + lowered | [`SimulateArtifact`] (time estimate) |
//!
//! A pass declares a stable [`Pass::name`] and a [`Pass::version`] and
//! computes a [`Fingerprint`] for each request; the
//! [`Session`](crate::Session) consults its content-addressed
//! [`ArtifactCache`] under that key before running the pass. A pass that
//! returns `None` from [`Pass::fingerprint`] is uncacheable for that
//! request (e.g. [`SimulatePass`] under a wall-clock deadline), and the
//! session bypasses the cache wholesale while a
//! [`FaultPlan`](crate::FaultPlan) is armed — injected faults must fire
//! on every run and must never poison the cache. Only *successful*
//! artifacts are cached; errors always recompute.
//!
//! The cache key folds the pass name and version first, so two passes
//! can never collide on a key and a bumped version invalidates exactly
//! that pass's artifacts (DESIGN.md §12).

mod classify;
mod degrade;
mod lower;
mod optimize;
mod simulate;
mod validate;

pub use classify::{ClassifyArtifact, ClassifyPass};
pub use degrade::{DegradeArtifact, DegradePass};
pub use lower::{LowerArtifact, LowerPass};
pub use optimize::{OptimizeArtifact, OptimizePass};
pub use simulate::{SimulateArtifact, SimulatePass};
pub use validate::{ValidateArtifact, ValidatePass};

pub(crate) use optimize::dispatch;

use crate::error::PaloError;
use crate::fingerprint::Fingerprint;
use crate::model::ResolvedModel;
use crate::pipeline::PipelineConfig;
use crate::store::{ArtifactStore, CacheConfig, StoredArtifact, TierStats, TieredStore};
use palo_arch::Architecture;
use palo_codec::{frame, Codec};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read-only context every pass runs under: the session's architecture
/// and configuration, the once-resolved cost model, and the per-run
/// mutable control block.
pub struct PassCx<'s> {
    /// The *original* target architecture (simulation, lowering and the
    /// `ContiguousOnly` passthrough run against it; the optimizer search
    /// runs against `resolved.arch`).
    pub arch: &'s Architecture,
    /// The session's pipeline configuration.
    pub config: &'s PipelineConfig,
    /// The cost model, resolved exactly once per session
    /// ([`crate::model::resolve`]) together with its effective
    /// `(arch, config)` pair.
    pub resolved: &'s ResolvedModel,
    /// Per-run mutable state (fault counters, start time).
    pub ctl: &'s RunCtl,
}

/// Per-run mutable control block, threaded through the passes of one
/// [`Session::run`](crate::Session::run) call.
///
/// Besides the mutable counters, the control block carries the run's
/// **effective** resource budget, fault plan and simulate switch — the
/// session config with the request's
/// [`RunOverrides`](crate::RunOverrides) layered on top
/// ([`RunCtl::for_run`]). Passes consult these instead of
/// `cx.config`, so two concurrent runs of one session can carry
/// different deadlines or fault plans without interfering.
///
/// Fault-injection counters are *run*-scoped, not pass- or
/// session-scoped: `FaultPlan::fail_first_lowerings = 2` means the first
/// two lowering attempts *of this run* fail, however many runs the
/// session has served before.
#[derive(Debug)]
pub struct RunCtl {
    start: Instant,
    budget: crate::pipeline::ResourceBudget,
    faults: crate::pipeline::FaultPlan,
    simulate: bool,
    lowerings_attempted: Cell<u64>,
    timings: RefCell<Vec<PassTiming>>,
}

/// One pass request of a run, as timed by
/// [`Session::execute`](crate::Session::execute): how long the request
/// took wall-clock and whether the artifact came from the cache.
///
/// Requests are recorded in execution order, one entry per request (a
/// ladder that lowers three rungs records three `lower` entries);
/// aggregate with
/// [`PipelineReport::pass_totals`](crate::PipelineReport::pass_totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// The pass's stable name ([`Pass::name`]).
    pub pass: &'static str,
    /// Wall-clock time of the request. For a cached artifact this is the
    /// lookup time, not the producing run's time.
    pub elapsed: Duration,
    /// Whether the artifact was served from the cache.
    pub cached: bool,
}

impl RunCtl {
    /// A fresh control block with no budget, no faults and simulation
    /// enabled; stamps the run's start time. Prefer [`RunCtl::for_run`]
    /// inside the session, which layers request overrides over the
    /// session config.
    pub fn new() -> Self {
        RunCtl {
            start: Instant::now(),
            budget: crate::pipeline::ResourceBudget::default(),
            faults: crate::pipeline::FaultPlan::default(),
            simulate: true,
            lowerings_attempted: Cell::new(0),
            timings: RefCell::new(Vec::new()),
        }
    }

    /// The control block of one run: `config` with the request's
    /// `overrides` layered on top ([`RunOverrides::effective`]).
    ///
    /// [`RunOverrides::effective`]: crate::RunOverrides::effective
    pub fn for_run(config: &PipelineConfig, overrides: &crate::RunOverrides) -> Self {
        let (budget, faults, simulate) = overrides.effective(config);
        RunCtl { budget, faults, simulate, ..RunCtl::new() }
    }

    /// When the run started (deadline accounting).
    pub fn start(&self) -> Instant {
        self.start
    }

    /// The run's effective resource budget (session config layered with
    /// the request's overrides).
    pub fn budget(&self) -> crate::pipeline::ResourceBudget {
        self.budget
    }

    /// The run's effective fault plan. While armed, the session bypasses
    /// the artifact cache for this run's requests.
    pub fn faults(&self) -> crate::pipeline::FaultPlan {
        self.faults
    }

    /// Whether this run executes the simulate stage.
    pub fn simulate(&self) -> bool {
        self.simulate
    }

    /// Counts one lowering attempt and returns the new total.
    pub fn count_lowering(&self) -> u64 {
        let n = self.lowerings_attempted.get() + 1;
        self.lowerings_attempted.set(n);
        n
    }

    /// Records one timed pass request.
    pub fn record_pass(&self, pass: &'static str, elapsed: Duration, cached: bool) {
        self.timings.borrow_mut().push(PassTiming { pass, elapsed, cached });
    }

    /// Drains the recorded per-pass timings (in execution order).
    pub fn take_timings(&self) -> Vec<PassTiming> {
        std::mem::take(&mut self.timings.borrow_mut())
    }
}

impl Default for RunCtl {
    fn default() -> Self {
        RunCtl::new()
    }
}

/// One stage of the pipeline: a pure, deterministic function from a
/// typed input (under a [`PassCx`]) to a typed artifact.
///
/// # Contract
///
/// * `run` must be deterministic in `(cx.arch, cx.config, cx.resolved,
///   input)` — the cache serves a prior artifact in place of a re-run,
///   so any hidden input would desynchronize cached and uncached runs.
/// * `fingerprint` must fold **every** determinant of the output (the
///   session folds the pass name/version for you via
///   [`Fingerprint`] builders inside each pass) and **nothing
///   run-specific**; return `None` when a request depends on wall-clock
///   state and is therefore uncacheable.
/// * Bump `version` whenever the observable output changes for some
///   input — that, not manual invalidation, is how stale artifacts die.
pub trait Pass {
    /// The request consumed by one invocation (borrows are fine).
    type Input<'a>;
    /// The artifact produced; cached behind an [`Arc`]. The [`Codec`]
    /// bound is what lets the artifact store persist it to disk and
    /// replay it bit-identically in another process.
    type Output: Codec + Send + Sync + 'static;

    /// Stable machine-readable pass name, folded into every cache key.
    fn name(&self) -> &'static str;

    /// Artifact schema version, folded into every cache key.
    fn version(&self) -> u32;

    /// The content-addressed key of this request, or `None` when the
    /// request must not be cached.
    fn fingerprint(&self, cx: &PassCx<'_>, input: &Self::Input<'_>) -> Option<Fingerprint>;

    /// Executes the pass.
    ///
    /// # Errors
    ///
    /// Pass-specific [`PaloError`]s; errors are never cached.
    fn run(&self, cx: &PassCx<'_>, input: &Self::Input<'_>) -> Result<Self::Output, PaloError>;
}

/// Counters of one [`ArtifactCache`] (or a window of one), snapshotted
/// into [`PipelineReport::cache`](crate::PipelineReport::cache), the
/// batch report, and the serve protocol.
///
/// The request-level counters (`hits`/`misses`/`bypasses`/`anomalies`)
/// describe pass requests; the per-tier [`TierStats`] describe where
/// lookups were served and what eviction did. All counters are
/// monotonic, so [`CacheStats::since`] windows any two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a cached artifact (either tier).
    pub hits: u64,
    /// Requests that ran their pass and stored the artifact.
    pub misses: u64,
    /// Requests that skipped the cache entirely (armed faults,
    /// uncacheable fingerprints).
    pub bypasses: u64,
    /// Cached entries that failed validation — corrupt or truncated
    /// frames, wrong pass header, undecodable payloads. Each was healed
    /// (deleted) and served as a miss, never an error.
    pub anomalies: u64,
    /// The in-memory tier's counters.
    pub mem: TierStats,
    /// The on-disk tier's counters (all zero when persistence is off).
    pub disk: TierStats,
}

impl CacheStats {
    /// Hits over cache-eligible requests (`hits + misses`); `0.0` when
    /// nothing was eligible.
    pub fn hit_rate(&self) -> f64 {
        let eligible = self.hits + self.misses;
        if eligible == 0 {
            0.0
        } else {
            self.hits as f64 / eligible as f64
        }
    }

    /// The counter movement since `earlier` (a snapshot of the same
    /// cache): windowed stats for one run or one batch.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
            anomalies: self.anomalies.saturating_sub(earlier.anomalies),
            mem: self.mem.since(&earlier.mem),
            disk: self.disk.since(&earlier.disk),
        }
    }

    /// Accumulates another snapshot's counters (aggregating windowed
    /// stats across runs or serve outcomes).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypasses += other.bypasses;
        self.anomalies += other.anomalies;
        self.mem.absorb(&other.mem);
        self.disk.absorb(&other.disk);
    }
}

/// The session's content-addressed artifact cache: the typed front of
/// the [`TieredStore`].
///
/// Artifacts live in the store as [`StoredArtifact`]s — the canonical
/// framed encoding plus, in memory, the decoded `Arc` — so a warm
/// in-memory hit is an `Arc` clone, a disk hit decodes once and is
/// promoted, and a cold run computes and writes through. The pass name
/// and version are stamped in every frame header and checked on every
/// disk-served hit; any mismatch or decode failure counts an anomaly,
/// heals the entry, and degrades to a miss.
#[derive(Debug)]
pub struct ArtifactCache {
    store: TieredStore,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    anomalies: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

impl ArtifactCache {
    /// An empty memory-only cache with the original unbounded behavior.
    pub fn new() -> Self {
        ArtifactCache::over(TieredStore::unbounded())
    }

    /// A cache over the tier stack `config` describes.
    ///
    /// # Errors
    ///
    /// [`PaloError::Store`] when the configured cache directory cannot
    /// be opened.
    pub fn with_config(config: &CacheConfig) -> Result<Self, PaloError> {
        Ok(ArtifactCache::over(TieredStore::from_config(config)?))
    }

    fn over(store: TieredStore) -> Self {
        ArtifactCache {
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
        }
    }

    /// Whether artifacts persist to disk.
    pub fn persistent(&self) -> bool {
        self.store.persistent()
    }

    fn count_miss(&self) -> Option<std::convert::Infallible> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Heals an invalid entry: counts the anomaly, drops the entry from
    /// every tier, and reports the lookup as a miss.
    fn count_anomaly(&self, key: Fingerprint) -> Option<std::convert::Infallible> {
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        self.store.remove(key);
        self.count_miss()
    }

    /// The artifact under `key`, if a valid one is cached for this
    /// `(pass, pass_version)`. Counts a hit, a miss, or an anomaly.
    pub fn get<T: Codec + Send + Sync + 'static>(
        &self,
        key: Fingerprint,
        pass: &str,
        pass_version: u32,
    ) -> Option<Arc<T>> {
        let Some(stored) = self.store.get(key) else {
            self.count_miss();
            return None;
        };
        if let Some(value) = &stored.value {
            // A memory-tier hit: the decoded artifact is already shared.
            return match value.clone().downcast::<T>() {
                Ok(hit) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(hit)
                }
                Err(_) => {
                    // Unreachable while keys fold pass identity; healed
                    // as an anomaly if it ever happens.
                    self.count_anomaly(key);
                    None
                }
            };
        }
        // A disk-tier hit: validate the stamped header against the
        // requesting pass, decode once, promote.
        let decoded = match frame::decode_frame(&stored.bytes) {
            Ok(f) if f.pass == pass && f.pass_version == pass_version => {
                T::decode_from_slice(f.payload).ok()
            }
            _ => None,
        };
        match decoded {
            Some(artifact) => {
                let artifact = Arc::new(artifact);
                self.store.promote(
                    key,
                    StoredArtifact { value: Some(artifact.clone()), bytes: stored.bytes },
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(artifact)
            }
            None => {
                self.count_anomaly(key);
                None
            }
        }
    }

    /// Stores `artifact` under `key`, framed as `(pass, pass_version)`,
    /// writing through every tier.
    pub fn insert<T: Codec + Send + Sync + 'static>(
        &self,
        key: Fingerprint,
        pass: &str,
        pass_version: u32,
        artifact: Arc<T>,
    ) {
        let bytes = frame::encode_frame(pass, pass_version, &artifact.encode_to_vec());
        self.store.put(key, StoredArtifact { value: Some(artifact), bytes: bytes.into() });
    }

    /// Counts one cache-bypassed request.
    pub fn count_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Artifacts currently resident in the memory tier.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the memory tier holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters of this cache, request-level and per-tier.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            anomalies: self.anomalies.load(Ordering::Relaxed) + self.store.disk_anomalies(),
            mem: self.store.mem_stats(),
            disk: self.store.disk_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PolicyKind;
    use palo_ir::Digest;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(Digest(n))
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let cache = ArtifactCache::new();
        assert!(cache.get::<String>(key(1), "p", 1).is_none());
        cache.insert(key(1), "p", 1, Arc::new("artifact".to_string()));
        assert_eq!(*cache.get::<String>(key(1), "p", 1).unwrap(), "artifact");
        cache.count_bypass();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses, s.anomalies), (1, 1, 1, 0));
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
        assert!(!cache.persistent());
    }

    #[test]
    fn mismatched_type_is_healed_as_an_anomaly() {
        let cache = ArtifactCache::new();
        cache.insert(key(2), "p", 1, Arc::new(7u64));
        assert!(cache.get::<String>(key(2), "p", 1).is_none());
        let s = cache.stats();
        assert_eq!((s.anomalies, s.misses), (1, 1));
        // The poisoned entry was dropped, so even the right type misses.
        assert!(cache.get::<u64>(key(2), "p", 1).is_none());
    }

    #[test]
    fn a_disk_served_artifact_decodes_promotes_and_replays() {
        let root =
            std::env::temp_dir().join(format!("palo-cache-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let config = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };

        let cold = ArtifactCache::with_config(&config).unwrap();
        cold.insert(key(3), "p", 2, Arc::new(41u64));
        drop(cold);

        let warm = ArtifactCache::with_config(&config).unwrap();
        assert_eq!(*warm.get::<u64>(key(3), "p", 2).unwrap(), 41);
        assert_eq!(warm.stats().disk.hits, 1);
        // Promoted: the second hit is served by the memory tier.
        assert_eq!(*warm.get::<u64>(key(3), "p", 2).unwrap(), 41);
        assert_eq!(warm.stats().disk.hits, 1);
        assert_eq!(warm.stats().hits, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_pass_version_bump_invalidates_disk_artifacts() {
        let root =
            std::env::temp_dir().join(format!("palo-cache-version-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let config = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };

        let cold = ArtifactCache::with_config(&config).unwrap();
        cold.insert(key(4), "p", 1, Arc::new(9u64));
        drop(cold);

        // Same key, newer pass version: the stale frame is an anomaly,
        // healed and served as a miss.
        let warm = ArtifactCache::with_config(&config).unwrap();
        assert!(warm.get::<u64>(key(4), "p", 2).is_none());
        let s = warm.stats();
        assert_eq!((s.anomalies, s.misses, s.hits), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bounded_config_evicts_but_never_changes_values() {
        let config = CacheConfig {
            policy: PolicyKind::Lru,
            capacity_entries: Some(1),
            ..CacheConfig::default()
        };
        let cache = ArtifactCache::with_config(&config).unwrap();
        cache.insert(key(5), "p", 1, Arc::new(5u64));
        cache.insert(key(6), "p", 1, Arc::new(6u64));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().mem.evictions, 1);
        // The survivor is intact; the evictee is a miss, never garbage.
        assert!(cache.get::<u64>(key(5), "p", 1).is_none());
        assert_eq!(*cache.get::<u64>(key(6), "p", 1).unwrap(), 6);
    }

    #[test]
    fn windowed_stats_subtract_and_absorb() {
        let a = CacheStats { hits: 10, misses: 4, bypasses: 1, ..CacheStats::default() };
        let b = CacheStats { hits: 3, misses: 4, bypasses: 0, ..CacheStats::default() };
        assert_eq!(
            a.since(&b),
            CacheStats { hits: 7, misses: 0, bypasses: 1, ..CacheStats::default() }
        );
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let mut sum = b;
        sum.absorb(&a.since(&b));
        assert_eq!((sum.hits, sum.misses, sum.bypasses), (10, 4, 1));
    }
}
