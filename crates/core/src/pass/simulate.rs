//! The Simulate pass: cache-hierarchy trace simulation of the accepted
//! schedule under the run's remaining resource budget.

use super::{Pass, PassCx};
use crate::error::{catch_panic, PaloError};
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use palo_exec::{estimate_time_with, TimeEstimate, TraceOptions};
use palo_ir::LoopNest;
use palo_sched::LoweredNest;

/// The simulated time estimate of a lowered schedule.
#[derive(Debug, Clone)]
pub struct SimulateArtifact {
    /// Estimated milliseconds plus the full hierarchy statistics.
    pub estimate: TimeEstimate,
}

/// Traces the lowered nest on the cache simulator ([`estimate_time_with`])
/// under the remaining [`ResourceBudget`](crate::ResourceBudget).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatePass;

impl Pass for SimulatePass {
    type Input<'a> = (&'a LoopNest, &'a LoweredNest);
    type Output = SimulateArtifact;

    fn name(&self) -> &'static str {
        "simulate"
    }

    fn version(&self) -> u32 {
        // v2: run-compressed replay engine (bit-identical statistics, so
        // cached v1 artifacts would still be *correct* — bumped anyway so
        // the artifact's new `replay` telemetry is always populated).
        2
    }

    /// Key: nest + lowered structure + architecture + the run's effective
    /// trace-line budget. A request under an effective wall-clock
    /// **deadline** — session-wide or per-request
    /// ([`RunOverrides`](crate::RunOverrides)) — is uncacheable
    /// (`None`): the effective deadline is "whatever is left of this
    /// run", which no stable key can express — serving a cached complete
    /// trace where this run would have aborted (or vice versa) would
    /// desynchronize cached and uncached runs.
    fn fingerprint(
        &self,
        cx: &PassCx<'_>,
        (nest, lowered): &Self::Input<'_>,
    ) -> Option<Fingerprint> {
        let budget = cx.ctl.budget();
        if budget.deadline.is_some() {
            return None;
        }
        Some(
            FingerprintBuilder::pass(self.name(), self.version())
                .nest(nest)
                .value(*lowered)
                .arch(cx.arch)
                .value(&budget.max_trace_lines)
                .finish(),
        )
    }

    fn run(
        &self,
        cx: &PassCx<'_>,
        (nest, lowered): &Self::Input<'_>,
    ) -> Result<Self::Output, PaloError> {
        let budget = cx.ctl.budget();
        let deadline = budget.deadline.map(|d| d.saturating_sub(cx.ctl.start().elapsed()));
        let max_lines =
            if cx.ctl.faults().trace_overflow { Some(0) } else { budget.max_trace_lines };
        let opts =
            TraceOptions { flush_first: true, max_lines, deadline, run_compressed: true };
        let estimate =
            catch_panic("simulator", || estimate_time_with(nest, lowered, cx.arch, &opts))??;
        Ok(SimulateArtifact { estimate })
    }
}
