//! The Validate pass: bit-exact compute-mode validation of a lowered
//! schedule against the program-order reference.

use super::{Pass, PassCx};
use crate::error::{catch_panic, PaloError};
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use palo_exec::{run, run_reference, Buffers};
use palo_ir::LoopNest;
use palo_sched::LoweredNest;

/// Proof that a lowered nest computed the reference values. The cached
/// artifact is the *success*; a mismatch is an error and never cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateArtifact;

/// Interprets the lowered nest over real buffers and compares bit-exactly
/// against the program-order reference. The session invokes it only when
/// the nest's iteration count is below
/// [`PipelineConfig::validate_semantics_below`](crate::PipelineConfig::validate_semantics_below)
/// (the threshold gates *whether* to validate, not the verdict, so it is
/// not part of the key).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidatePass;

impl Pass for ValidatePass {
    type Input<'a> = (&'a LoopNest, &'a LoweredNest);
    type Output = ValidateArtifact;

    fn name(&self) -> &'static str {
        "validate"
    }

    fn version(&self) -> u32 {
        1
    }

    /// Key: nest + lowered structure (the buffers are seeded from a
    /// fixed constant, so the verdict is a pure function of the pair).
    fn fingerprint(
        &self,
        _cx: &PassCx<'_>,
        (nest, lowered): &Self::Input<'_>,
    ) -> Option<Fingerprint> {
        Some(
            FingerprintBuilder::pass(self.name(), self.version())
                .nest(nest)
                .value(*lowered)
                .finish(),
        )
    }

    fn run(
        &self,
        _cx: &PassCx<'_>,
        (nest, lowered): &Self::Input<'_>,
    ) -> Result<Self::Output, PaloError> {
        // Buffers hold small integers, so any legal schedule of a
        // reduction is bit-exact against the program-order reference.
        let mut got = Buffers::for_nest(nest, 0x5EED);
        let mut want = got.clone();
        catch_panic("compute-mode validation", || run(nest, lowered, &mut got))??;
        run_reference(nest, &mut want)?;
        if got != want {
            return Err(PaloError::SemanticsMismatch {
                detail: first_divergence(nest, &got, &want),
            });
        }
        Ok(ValidateArtifact)
    }
}

/// Describes the first array element where `got` and `want` differ.
fn first_divergence(nest: &LoopNest, got: &Buffers, want: &Buffers) -> String {
    for (ai, decl) in nest.arrays().iter().enumerate() {
        let id = palo_ir::ArrayId(ai);
        let (g, w) = (got.array(id), want.array(id));
        for (k, (gv, wv)) in g.iter().zip(w.iter()).enumerate() {
            if gv != wv {
                return format!("array {:?} element {k}: got {gv}, reference {wv}", decl.name);
            }
        }
    }
    "buffers differ".to_string()
}
