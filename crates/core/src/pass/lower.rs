//! The Lower pass: one schedule-lowering attempt, with the per-run
//! fault-injection site.

use super::{Pass, PassCx};
use crate::error::{catch_panic, PaloError};
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use palo_ir::LoopNest;
use palo_sched::{LoweredNest, Schedule};

/// A schedule lowered onto a nest.
#[derive(Debug, Clone)]
pub struct LowerArtifact {
    /// The concrete loop structure, ready to execute.
    pub lowered: LoweredNest,
}

/// Lowers one `(nest, schedule)` pair. Counts the attempt against the
/// run's `fail_first_lowerings` fault budget — the session bypasses the
/// cache while faults are armed, so the counter sees every attempt.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerPass;

impl Pass for LowerPass {
    type Input<'a> = (&'a LoopNest, &'a Schedule);
    type Output = LowerArtifact;

    fn name(&self) -> &'static str {
        "lower"
    }

    fn version(&self) -> u32 {
        1
    }

    /// Key: nest + schedule. Lowering is architecture-independent (the
    /// schedule already fixes lanes and parallelism).
    fn fingerprint(
        &self,
        _cx: &PassCx<'_>,
        (nest, schedule): &Self::Input<'_>,
    ) -> Option<Fingerprint> {
        Some(
            FingerprintBuilder::pass(self.name(), self.version())
                .nest(nest)
                .value(*schedule)
                .finish(),
        )
    }

    fn run(
        &self,
        cx: &PassCx<'_>,
        (nest, schedule): &Self::Input<'_>,
    ) -> Result<Self::Output, PaloError> {
        let attempt = cx.ctl.count_lowering();
        if attempt <= cx.ctl.faults().fail_first_lowerings {
            return Err(PaloError::FaultInjected { site: "lowering" });
        }
        let lowered = catch_panic("lowering", || schedule.lower(nest))??;
        Ok(LowerArtifact { lowered })
    }
}
