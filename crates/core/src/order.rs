//! The loop-permutation cost `Corder` (Eq. 12) and permutation
//! enumeration for Step 2 of Algorithm 2.

/// Trip count of the inter-tile loop of variable `v`.
pub fn inter_trip(v: usize, tile: &[usize], extents: &[usize]) -> f64 {
    (extents[v] as f64 / tile[v] as f64).ceil().max(1.0)
}

/// Computes `Corder` for a full nest `[inter..., intra...]`
/// (outermost first): for every variable, the product of the trip counts
/// of the loops strictly between its inter-tile and intra-tile loops,
/// summed over variables.
///
/// For the paper's nest `(ii, kk, jj, i, k, j)` on matmul this yields
/// `TiTk + (Bj/Tj)·Ti + (Bj/Tj)(Bk/Tk)` (Eq. 12).
pub fn corder(inter: &[usize], intra: &[usize], tile: &[usize], extents: &[usize]) -> f64 {
    debug_assert_eq!(inter.len(), intra.len());
    let n = inter.len();
    // trips of the full loop list
    let trips: Vec<f64> = inter
        .iter()
        .map(|&v| inter_trip(v, tile, extents))
        .chain(intra.iter().map(|&v| tile[v] as f64))
        .collect();
    let mut total = 0.0;
    for v in 0..extents.len() {
        let a = inter.iter().position(|&x| x == v);
        let b = intra.iter().position(|&x| x == v);
        let (a, b) = match (a, b) {
            (Some(a), Some(b)) => (a, n + b),
            _ => continue,
        };
        let mut dist = 1.0;
        for t in &trips[a + 1..b] {
            dist *= t;
        }
        total += dist;
    }
    total
}

/// All permutations of `items` (Heap's algorithm, collected).
pub fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    heap(&mut work, items.len(), &mut out);
    out
}

fn heap(work: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(work.clone());
        return;
    }
    for i in 0..k {
        heap(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_corder_matches_eq_12() {
        // vars: i=0, j=1, k=2; B = 2048 each; T = (32, 512, 64).
        let tile = [32usize, 512, 64];
        let extents = [2048usize, 2048, 2048];
        // nest (ii, kk, jj, i, k, j)
        let inter = [0usize, 2, 1];
        let intra = [0usize, 2, 1];
        let got = corder(&inter, &intra, &tile, &extents);
        let bi = 2048.0 / 32.0;
        let _ = bi;
        let bj_tj = 2048.0 / 512.0;
        let bk_tk = 2048.0 / 64.0;
        let ti = 32.0;
        let tk = 64.0;
        // j: loops between jj and j are i, k -> Ti*Tk
        // k: loops between kk and k are jj, i -> (Bj/Tj)*Ti
        // i: loops between ii and i are kk, jj -> (Bk/Tk)*(Bj/Tj)
        let expect = ti * tk + bj_tj * ti + bk_tk * bj_tj;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn adjacent_pairs_minimize_distance() {
        // Nest (ii, i, jj, j): i's loops adjacent (distance 1 = empty
        // product), j's adjacent; compare to (ii, jj, i, j).
        let tile = [4usize, 4];
        let extents = [64usize, 64];
        let tight = corder(&[0, 1], &[0, 1], &tile, &extents);
        let loose = corder(&[1, 0], &[0, 1], &tile, &extents);
        // tight: full list (ii, jj, i, j): i distance = trips(jj)... both
        // computed over the same list shape; just assert ordering holds
        // for a case where it must.
        assert!(tight <= loose, "{tight} vs {loose}");
    }

    #[test]
    fn untiled_vars_contribute_unit_trips() {
        let tile = [64usize, 8];
        let extents = [64usize, 64];
        assert_eq!(inter_trip(0, &tile, &extents), 1.0);
        assert_eq!(inter_trip(1, &tile, &extents), 8.0);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[0, 1, 2]).len(), 6);
        assert_eq!(permutations(&[0]).len(), 1);
        let perms = permutations(&[0, 1, 2, 3]);
        assert_eq!(perms.len(), 24);
        let mut dedup = perms.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 24);
    }
}
