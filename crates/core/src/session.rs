//! [`Session`]: the pass-graph executor with a content-addressed
//! artifact cache.
//!
//! A session owns, for one `(architecture, configuration)` pair:
//!
//! * the cost model, **resolved exactly once** at construction
//!   ([`crate::model::resolve`]) — every run optimizes under the same
//!   [`ResolvedModel`] reference instead of re-cloning the config;
//! * the [`ArtifactCache`]: pass artifacts keyed by the stable
//!   [`Fingerprint`](crate::Fingerprint) of their request
//!   (DESIGN.md §12), shared by every run and every
//!   [`BatchDriver`](crate::BatchDriver) worker.
//!
//! [`Session::run`] reproduces the monolithic pipeline's semantics
//! exactly — same degradation ladder, same resource guards, same fault
//! injection, same report — but each stage goes through
//! [`Session::execute`], which consults the cache first. Re-running a
//! nest the session has seen (or a *renamed* nest with the same canonical
//! form) replays the cached artifacts: bit-identical decisions, rungs and
//! estimates, without re-searching.

use crate::batch::BatchDriver;
use crate::error::PaloError;
use crate::gate::SimGate;
use crate::model::{self, ResolvedModel};
use crate::pass::{
    ArtifactCache, CacheStats, ClassifyPass, DegradePass, LowerPass, OptimizePass, Pass,
    PassCx, RunCtl, SimulatePass, ValidatePass,
};
use crate::pipeline::{
    PipelineConfig, PipelineOutcome, PipelineReport, RunOverrides, Rung, RungFailure,
};
use crate::search::SearchStats;
use palo_arch::Architecture;
use palo_cachesim::Hierarchy;
use palo_ir::LoopNest;
use palo_sched::{LoweredNest, Schedule};
use std::sync::Arc;

/// A reusable pipeline execution context: validated architecture,
/// once-resolved cost model, and the content-addressed artifact cache.
///
/// # Examples
///
/// ```
/// use palo_arch::presets;
/// use palo_core::{PipelineConfig, Session};
/// use palo_ir::{DType, NestBuilder};
///
/// let mut b = NestBuilder::new("copy", DType::F32);
/// let i = b.var("i", 64);
/// let j = b.var("j", 64);
/// let src = b.array("src", &[64, 64]);
/// let dst = b.array("dst", &[64, 64]);
/// let ld = b.load(src, &[i, j]);
/// b.store(dst, &[i, j], ld);
/// let nest = b.build()?;
///
/// let session = Session::new(&presets::intel_i7_6700(), PipelineConfig::default())?;
/// let cold = session.run(&nest)?;
/// let warm = session.run(&nest)?; // replayed from the artifact cache
/// assert_eq!(cold.report.rung, warm.report.rung);
/// assert!(warm.report.cache.hits > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session {
    arch: Architecture,
    config: PipelineConfig,
    resolved: ResolvedModel,
    cache: ArtifactCache,
    sim_gate: SimGate,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("arch", &self.arch.name)
            .field("model", &self.resolved.model.name())
            .field("cache", &self.cache.stats())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Validates `arch`, resolves the cost model once, and opens an
    /// empty artifact cache.
    ///
    /// # Errors
    ///
    /// [`PaloError::Arch`] for an inconsistent architecture description,
    /// the simulator's rejection when the hierarchy cannot be modeled,
    /// or [`PaloError::Store`] when the configured cache directory
    /// cannot be opened.
    pub fn new(arch: &Architecture, config: PipelineConfig) -> Result<Self, PaloError> {
        arch.validate().map_err(PaloError::Arch)?;
        // Reject architectures the simulator cannot model before any
        // stage constructs a hierarchy (which would panic).
        Hierarchy::try_from_architecture(arch)?;
        let resolved = model::resolve(&config.optimizer, arch);
        let sim_gate = SimGate::new(config.max_concurrent_sims);
        let cache = ArtifactCache::with_config(&config.cache)?;
        Ok(Session { arch: arch.clone(), config, resolved, cache, sim_gate })
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The once-resolved cost model (and its effective `(arch, config)`
    /// pair) every run of this session optimizes under.
    pub fn resolved_model(&self) -> &ResolvedModel {
        &self.resolved
    }

    /// Lifetime cache counters of this session.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Artifacts currently held by the cache.
    pub fn cached_artifacts(&self) -> usize {
        self.cache.len()
    }

    /// The most simulate-stage executions ever in flight at once over
    /// this session's lifetime (observability for
    /// [`PipelineConfig::max_concurrent_sims`]).
    pub fn max_sims_observed(&self) -> usize {
        self.sim_gate.high_water()
    }

    /// A batch driver over this session (suite-scale concurrent runs).
    pub fn batch(&self) -> BatchDriver<'_> {
        BatchDriver::new(self)
    }

    /// Executes one pass request through the artifact cache: a cached
    /// artifact is returned as-is; otherwise the pass runs and its
    /// artifact is stored. The cache is bypassed wholesale while the
    /// *run's effective* [`FaultPlan`](crate::FaultPlan) is armed
    /// (session-wide or per-request via
    /// [`RunOverrides`](crate::RunOverrides)), and for requests the pass
    /// declares uncacheable.
    ///
    /// # Errors
    ///
    /// Whatever the pass's [`Pass::run`] returns; errors are never
    /// cached.
    pub fn execute<P: Pass>(
        &self,
        pass: &P,
        ctl: &RunCtl,
        input: &P::Input<'_>,
    ) -> Result<Arc<P::Output>, PaloError> {
        let t0 = std::time::Instant::now();
        let cx =
            PassCx { arch: &self.arch, config: &self.config, resolved: &self.resolved, ctl };
        let key = if ctl.faults().armed() { None } else { pass.fingerprint(&cx, input) };
        let Some(key) = key else {
            self.cache.count_bypass();
            let out = pass.run(&cx, input).map(Arc::new);
            ctl.record_pass(pass.name(), t0.elapsed(), false);
            return out;
        };
        if let Some(hit) = self.cache.get::<P::Output>(key, pass.name(), pass.version()) {
            ctl.record_pass(pass.name(), t0.elapsed(), true);
            return Ok(hit);
        }
        let run = pass.run(&cx, input);
        ctl.record_pass(pass.name(), t0.elapsed(), false);
        let artifact = Arc::new(run?);
        self.cache.insert(key, pass.name(), pass.version(), artifact.clone());
        Ok(artifact)
    }

    /// Runs the optimizer on `nest` and executes the degradation ladder
    /// — the pass-graph equivalent of the monolithic pipeline's `run`.
    ///
    /// # Errors
    ///
    /// Returns an error only when the nest cannot be processed at all:
    /// every ladder rung — including the program-order nest — fails. An
    /// optimizer failure alone is *not* an error: the run degrades and
    /// records the failure in the report.
    pub fn run(&self, nest: &LoopNest) -> Result<PipelineOutcome, PaloError> {
        self.run_with(nest, &RunOverrides::default())
    }

    /// [`Session::run`] with per-request overrides layered over the
    /// session configuration: a request-scoped deadline or trace budget,
    /// a request-scoped [`FaultPlan`](crate::FaultPlan) (armed plans
    /// bypass the cache for this run only), or a request-scoped
    /// `simulate` switch (the load-shedding lever — `Some(false)` answers
    /// from the analytical model alone).
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_with(
        &self,
        nest: &LoopNest,
        overrides: &RunOverrides,
    ) -> Result<PipelineOutcome, PaloError> {
        let ctl = RunCtl::for_run(&self.config, overrides);
        let before = self.cache.stats();
        let mut failures: Vec<RungFailure> = Vec::new();

        let optimized = self
            .execute(&ClassifyPass, &ctl, &nest)
            .and_then(|c| self.execute(&OptimizePass, &ctl, &(nest, c.class)));
        let (decision, search) = match optimized {
            Ok(a) => (Some(a.decision.clone()), Some(a.search.clone())),
            Err(error) => {
                failures.push(RungFailure { rung: Rung::Proposed, error });
                (None, None)
            }
        };

        let proposed = decision.as_ref().map(|d| d.schedule().clone());
        self.finish(nest, decision, proposed, search, failures, ctl, before)
    }

    /// Executes the degradation ladder for a caller-supplied schedule
    /// (skipping the optimizer stage).
    ///
    /// The schedule may be arbitrary — even illegal for `nest`; an
    /// illegal schedule simply fails its rung and the ladder continues.
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_schedule(
        &self,
        nest: &LoopNest,
        proposed: &Schedule,
    ) -> Result<PipelineOutcome, PaloError> {
        self.run_schedule_with(nest, proposed, &RunOverrides::default())
    }

    /// [`Session::run_schedule`] with per-request overrides (see
    /// [`Session::run_with`]).
    ///
    /// # Errors
    ///
    /// As for [`Session::run`].
    pub fn run_schedule_with(
        &self,
        nest: &LoopNest,
        proposed: &Schedule,
        overrides: &RunOverrides,
    ) -> Result<PipelineOutcome, PaloError> {
        let ctl = RunCtl::for_run(&self.config, overrides);
        let before = self.cache.stats();
        self.finish(nest, None, Some(proposed.clone()), None, Vec::new(), ctl, before)
    }

    /// Walks the ladder, simulates the accepted schedule, and assembles
    /// the outcome.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        nest: &LoopNest,
        decision: Option<crate::Decision>,
        proposed: Option<Schedule>,
        search: Option<SearchStats>,
        mut failures: Vec<RungFailure>,
        ctl: RunCtl,
        before: CacheStats,
    ) -> Result<PipelineOutcome, PaloError> {
        let ladder =
            self.execute(&DegradePass, &ctl, &(nest, proposed.as_ref()))?.ladder.clone();

        let mut accepted: Option<(Rung, Schedule, LoweredNest)> = None;
        for (rung, schedule) in ladder {
            match self.attempt_rung(nest, &schedule, &ctl) {
                Ok(lowered) => {
                    accepted = Some((rung, schedule, lowered));
                    break;
                }
                Err(error) => failures.push(RungFailure { rung, error }),
            }
        }
        let Some((rung, schedule, lowered)) = accepted else {
            // Even the program-order nest failed; surface the last error.
            return Err(failures
                .last()
                .map(|f| f.error.clone())
                .unwrap_or(PaloError::FaultInjected { site: "ladder" }));
        };

        let estimate = if ctl.simulate() {
            // Simulation is the memory-heavy stage: gate its concurrency
            // (batch-wide) to `max_concurrent_sims`, leaving every other
            // stage as parallel as the driver.
            let _permit = self.sim_gate.acquire();
            match self.execute(&SimulatePass, &ctl, &(nest, &lowered)) {
                Ok(a) => Some(a.estimate.clone()),
                Err(error) => {
                    failures.push(RungFailure { rung, error });
                    None
                }
            }
        } else {
            None
        };

        let breakdown = decision.as_ref().map(|d| d.breakdown.clone());
        Ok(PipelineOutcome {
            decision,
            schedule,
            lowered,
            report: PipelineReport {
                rung,
                failures,
                estimate,
                search,
                model: self.config.optimizer.model,
                breakdown,
                cache: self.cache.stats().since(&before),
                timings: ctl.take_timings(),
                elapsed: ctl.start().elapsed(),
            },
        })
    }

    /// Lowers and (when cheap enough) semantically validates one ladder
    /// candidate.
    fn attempt_rung(
        &self,
        nest: &LoopNest,
        schedule: &Schedule,
        ctl: &RunCtl,
    ) -> Result<LoweredNest, PaloError> {
        let lowered = self.execute(&LowerPass, ctl, &(nest, schedule))?.lowered.clone();
        if nest.iteration_count() < self.config.validate_semantics_below {
            self.execute(&ValidatePass, ctl, &(nest, &lowered))?;
        }
        Ok(lowered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FaultPlan;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        named_matmul("matmul", n)
    }

    fn named_matmul(name: &str, n: usize) -> LoopNest {
        let mut b = NestBuilder::new(name, DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn warm_run_replays_cold_run_from_cache() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let cold = session.run(&matmul(16)).unwrap();
        assert_eq!(cold.report.cache.hits, 0);
        assert!(cold.report.cache.misses > 0);

        let warm = session.run(&matmul(16)).unwrap();
        assert!(
            warm.report.cache.misses == 0,
            "warm run must be fully cached: {:?}",
            warm.report.cache
        );
        assert!(warm.report.cache.hits > 0);
        assert_eq!(cold.decision, warm.decision);
        assert_eq!(cold.report.rung, warm.report.rung);
        assert_eq!(cold.schedule, warm.schedule);
        assert_eq!(
            cold.report.estimate.as_ref().map(|e| e.ms.to_bits()),
            warm.report.estimate.as_ref().map(|e| e.ms.to_bits()),
        );
    }

    #[test]
    fn kernel_name_does_not_fragment_the_cache() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        session.run(&named_matmul("mm_a", 16)).unwrap();
        let renamed = session.run(&named_matmul("a_completely_different_label", 16)).unwrap();
        assert_eq!(renamed.report.cache.misses, 0);
    }

    #[test]
    fn armed_faults_bypass_the_cache() {
        let mut config = PipelineConfig::default();
        config.faults.fail_first_lowerings = 1;
        let session = Session::new(&presets::intel_i7_6700(), config).unwrap();
        let out = session.run(&matmul(8)).unwrap();
        assert!(out.report.fallback_fired());
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0), "armed faults must not touch the cache");
        assert!(s.bypasses > 0);
        assert_eq!(session.cached_artifacts(), 0);
    }

    #[test]
    fn deadline_budget_keeps_simulation_uncacheable() {
        let mut config = PipelineConfig::default();
        config.budget.deadline = Some(std::time::Duration::from_secs(600));
        let session = Session::new(&presets::intel_i7_6700(), config).unwrap();
        session.run(&matmul(8)).unwrap();
        let warm = session.run(&matmul(8)).unwrap();
        // Everything but the simulate stage replays from cache.
        assert_eq!(warm.report.cache.misses, 0);
        assert_eq!(warm.report.cache.bypasses, 1);
        assert!(warm.report.estimate.is_some());
    }

    #[test]
    fn report_carries_a_per_pass_timing_breakdown() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let cold = session.run(&matmul(16)).unwrap();
        let totals = cold.report.pass_totals();
        let names: Vec<&str> = totals.iter().map(|t| t.0).collect();
        for expect in ["classify", "optimize", "degrade", "lower", "simulate"] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        assert!(cold.report.timings.iter().all(|t| !t.cached), "cold run must not hit");
        assert!(totals.iter().all(|&(_, _, n, hits)| n >= 1 && hits == 0));

        let warm = session.run(&matmul(16)).unwrap();
        assert!(
            warm.report.timings.iter().all(|t| t.cached),
            "warm run must replay every pass: {:?}",
            warm.report.timings
        );
    }

    #[test]
    fn per_request_faults_bypass_the_cache_without_arming_the_session() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let faulted = RunOverrides {
            faults: Some(FaultPlan { fail_first_lowerings: 1, ..FaultPlan::default() }),
            ..RunOverrides::default()
        };
        let out = session.run_with(&matmul(8), &faulted).unwrap();
        assert!(out.report.fallback_fired());
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0), "armed per-request faults must bypass");
        assert!(s.bypasses > 0);
        assert_eq!(session.cached_artifacts(), 0);

        // A clean request on the same session caches normally...
        let clean = session.run(&matmul(8)).unwrap();
        assert!(clean.report.cache.misses > 0);
        assert!(session.cached_artifacts() > 0);
        assert!(!clean.report.fallback_fired());

        // ...and a faulted re-request still bypasses the now-warm cache.
        let refaulted = session.run_with(&matmul(8), &faulted).unwrap();
        assert!(refaulted.report.fallback_fired());
        assert_eq!(refaulted.report.cache.hits, 0);
        assert_eq!(refaulted.report.cache.misses, 0);
        assert!(refaulted.report.cache.bypasses > 0);
    }

    #[test]
    fn per_request_deadline_keeps_simulation_uncacheable() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let deadlined = RunOverrides {
            deadline: Some(std::time::Duration::from_secs(600)),
            ..RunOverrides::default()
        };
        session.run_with(&matmul(8), &deadlined).unwrap();
        let warm = session.run_with(&matmul(8), &deadlined).unwrap();
        assert_eq!(warm.report.cache.misses, 0);
        assert_eq!(warm.report.cache.bypasses, 1, "simulate must stay uncacheable");
        assert!(warm.report.estimate.is_some());
    }

    #[test]
    fn per_request_simulate_override_sheds_the_estimate() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let shed = RunOverrides { simulate: Some(false), ..RunOverrides::default() };
        let out = session.run_with(&matmul(8), &shed).unwrap();
        assert!(out.report.estimate.is_none());
        assert!(out.decision.is_some(), "the analytical decision still lands");
        let full = session.run(&matmul(8)).unwrap();
        assert!(full.report.estimate.is_some());
        assert_eq!(out.decision, full.decision, "shedding must not change the decision");
    }

    #[test]
    fn model_is_resolved_once_per_session() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let first = session.resolved_model() as *const _;
        session.run(&matmul(8)).unwrap();
        assert_eq!(first, session.resolved_model() as *const _);
        assert_eq!(session.resolved_model().model.name(), "paper");
    }
}
