//! The on-disk content-addressed tier.
//!
//! One artifact per file at a fingerprint-sharded path:
//!
//! ```text
//! <root>/<first 2 hex digits>/<full 32-hex fingerprint>.art
//! ```
//!
//! Files are complete [`frame`](palo_codec::frame)s — version-stamped
//! header, checksum, payload — written to a unique temp file and
//! `rename`d into place, so readers only ever observe absent or complete
//! files even across processes. Because paths are content hashes,
//! concurrent same-key writers write identical bytes and either rename
//! winning is correct.
//!
//! Every failure mode — unreadable file, truncated frame, garbage bytes,
//! wrong format version, failed write — degrades to a tier miss (plus a
//! recorded anomaly for corruption), never an error: losing the cache
//! costs a recompute, which is always safe.

use crate::error::PaloError;
use crate::fingerprint::Fingerprint;
use crate::store::{ArtifactStore, StoredArtifact, TierCounters, TierStats};
use palo_codec::frame;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File extension of stored artifacts.
const ART_EXT: &str = "art";

/// The persistent tier rooted at one cache directory.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    counters: TierCounters,
    anomalies: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`PaloError::Store`] when the directory cannot be created or is
    /// not writable — the one store failure that surfaces as an error,
    /// because it means *no* artifact will ever persist and the caller
    /// asked for persistence explicitly.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PaloError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| PaloError::Store {
            detail: format!("cannot create cache dir {}: {e}", root.display()),
        })?;
        Ok(DiskStore {
            root,
            counters: TierCounters::default(),
            anomalies: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Corrupt or unreadable entries encountered (each also deleted and
    /// counted as a tier eviction).
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: Fingerprint) -> PathBuf {
        let hex = format!("{key}");
        self.root.join(&hex[..2]).join(format!("{hex}.{ART_EXT}"))
    }

    /// Counts an anomaly and best-effort deletes the offending file so
    /// the store heals itself instead of tripping on every lookup.
    fn quarantine(&self, path: &Path) {
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        if fs::remove_file(path).is_ok() {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl ArtifactStore for DiskStore {
    fn get(&self, key: Fingerprint) -> Option<StoredArtifact> {
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    // Unreadable is corruption, plain absence is not.
                    self.quarantine(&path);
                }
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // Validate the envelope before serving: a torn or bit-rotted
        // entry must read as a miss, not reach the typed layer.
        if frame::decode_frame(&bytes).is_err() {
            self.quarantine(&path);
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        Some(StoredArtifact { value: None, bytes: bytes.into() })
    }

    fn put(&self, key: Fingerprint, artifact: StoredArtifact) {
        let path = self.path_of(key);
        if path.exists() {
            // Content-addressed: an existing entry already holds these
            // bytes (or is corrupt, and the next get heals it).
            return;
        }
        let Some(shard) = path.parent() else { return };
        if fs::create_dir_all(shard).is_err() {
            return;
        }
        // Unique temp name per writer, then an atomic rename: readers
        // and racing writers never see a partial file.
        let tmp = shard.join(format!(
            ".{:x}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &artifact.bytes).is_ok() && fs::rename(&tmp, &path).is_ok() {
            self.counters
                .bytes_written
                .fetch_add(artifact.bytes.len() as u64, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    fn remove(&self, key: Fingerprint) {
        if fs::remove_file(self.path_of(key)).is_ok() {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.root) else { return 0 };
        shards
            .flatten()
            .filter_map(|shard| fs::read_dir(shard.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == ART_EXT))
            .count()
    }

    fn tier_stats(&self) -> TierStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::Digest;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(Digest(n))
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("palo-disk-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn framed(payload: &[u8]) -> StoredArtifact {
        StoredArtifact { value: None, bytes: frame::encode_frame("test", 1, payload).into() }
    }

    #[test]
    fn round_trips_through_sharded_paths() {
        let root = tmp_root("roundtrip");
        let store = DiskStore::open(&root).unwrap();
        assert!(store.get(key(0xabcd)).is_none());
        store.put(key(0xabcd), framed(b"payload"));
        let got = store.get(key(0xabcd)).unwrap();
        assert_eq!(frame::decode_frame(&got.bytes).unwrap().payload, b"payload");
        // The path is sharded on the first two hex digits of the key.
        assert!(root.join("00").exists(), "fingerprint 0xabcd shards under 00…");
        assert_eq!(store.len(), 1);

        // A second store on the same root starts warm.
        let reopened = DiskStore::open(&root).unwrap();
        assert!(reopened.get(key(0xabcd)).is_some());
        assert_eq!(reopened.anomalies(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let root = tmp_root("corrupt");
        let store = DiskStore::open(&root).unwrap();
        store.put(key(7), framed(b"good"));
        let path = store.path_of(key(7));

        // Truncation.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.get(key(7)).is_none());
        assert_eq!(store.anomalies(), 1);
        assert!(!path.exists(), "corrupt file must be deleted");

        // Garbage bytes.
        store.put(key(7), framed(b"good"));
        fs::write(&path, b"complete garbage, not a frame").unwrap();
        assert!(store.get(key(7)).is_none());
        assert_eq!(store.anomalies(), 2);

        // Wrong format version.
        store.put(key(7), framed(b"good"));
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0x77;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(key(7)).is_none());
        assert_eq!(store.anomalies(), 3);

        // After healing, a fresh put works again.
        store.put(key(7), framed(b"good"));
        assert!(store.get(key(7)).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_entries_are_not_rewritten() {
        let root = tmp_root("norewrite");
        let store = DiskStore::open(&root).unwrap();
        store.put(key(9), framed(b"payload"));
        let written = store.tier_stats().bytes_written;
        store.put(key(9), framed(b"payload"));
        assert_eq!(store.tier_stats().bytes_written, written);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_failure_is_an_error() {
        let file = std::env::temp_dir().join(format!("palo-not-a-dir-{}", std::process::id()));
        fs::write(&file, b"occupied").unwrap();
        assert!(DiskStore::open(file.join("sub")).is_err());
        let _ = fs::remove_file(&file);
    }
}
