//! The tiered persistent artifact store behind the session cache.
//!
//! [`ArtifactStore`] is the one trait all tiers implement; three
//! implementations compose into the session's cache (DESIGN.md §15):
//!
//! * [`MemStore`] — the original unbounded in-process map;
//! * [`BoundedMemStore`] — an in-memory tier capped by entry count
//!   and/or bytes, with a pluggable [`CachePolicy`] (LRU, SLRU, 2Q)
//!   choosing eviction victims deterministically;
//! * [`DiskStore`] — an on-disk content-addressed store: one file per
//!   artifact at a fingerprint-sharded path, written atomically
//!   (tmp + rename) with a version-stamped, checksummed
//!   [`frame`](palo_codec::frame) header. Corrupt or truncated entries
//!   are deleted and reported as misses plus a recorded anomaly, never
//!   as errors.
//!
//! [`TieredStore`] composes a memory tier over an optional disk tier as
//! a read-through/write-through cache with promotion on disk hits.
//!
//! # The bit-identity invariant
//!
//! A stored artifact is the canonical [`Codec`](palo_codec::Codec)
//! encoding of the pass output, and floats encode as raw bit patterns —
//! so a decision replayed from memory, from disk, or recomputed cold is
//! bit-identical, under any eviction policy and any capacity. Eviction
//! and corruption can only ever cost a recompute.

mod disk;
mod mem;
mod policy;
mod tiered;

pub use disk::DiskStore;
pub use mem::{BoundedMemStore, MemStore};
pub use policy::{CachePolicy, Lru, ParsePolicyKindError, PolicyKind, Slru, TwoQ};
pub use tiered::TieredStore;

use crate::fingerprint::Fingerprint;
use std::any::Any;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached artifact as a store holds it: the canonical framed bytes,
/// plus (for memory tiers) the already-decoded value so warm hits never
/// re-decode.
///
/// `bytes` is always the full [`frame`](palo_codec::frame) — header and
/// payload — so spilling to disk is a plain byte write and byte-capacity
/// accounting matches what the disk tier would store.
#[derive(Clone)]
pub struct StoredArtifact {
    /// The decoded artifact, type-erased. `None` when the entry was read
    /// from disk and not yet decoded by the typed layer.
    pub value: Option<Arc<dyn Any + Send + Sync>>,
    /// The framed encoding (header + payload).
    pub bytes: Arc<[u8]>,
}

impl std::fmt::Debug for StoredArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredArtifact")
            .field("decoded", &self.value.is_some())
            .field("bytes", &self.bytes.len())
            .finish()
    }
}

/// Monotonic counters of one store tier, snapshotted into
/// [`CacheStats`](crate::CacheStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups served by this tier.
    pub hits: u64,
    /// Lookups this tier could not serve.
    pub misses: u64,
    /// Entries evicted by capacity pressure (memory) or deleted after
    /// failing validation (disk).
    pub evictions: u64,
    /// Artifact bytes written into this tier.
    pub bytes_written: u64,
}

impl TierStats {
    /// The counter movement since `earlier` (a snapshot of the same
    /// tier).
    pub fn since(&self, earlier: &TierStats) -> TierStats {
        TierStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }

    /// Accumulates another tier's counters (cross-session aggregation).
    pub fn absorb(&mut self, other: &TierStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bytes_written += other.bytes_written;
    }
}

/// Shared atomic counters behind [`TierStats`].
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
}

impl TierCounters {
    pub(crate) fn snapshot(&self) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// A content-addressed artifact tier: [`Fingerprint`] keys, immutable
/// [`StoredArtifact`] values.
///
/// # Contract
///
/// * `get`/`put` never fail: a tier that cannot serve or persist an
///   entry records the event in its [`TierStats`] and degrades to a
///   miss — caching is an optimization, never a correctness dependency;
/// * keys are content hashes, so two writers racing on one key write
///   identical bytes and any interleaving is safe;
/// * implementations are internally synchronized (`&self` methods).
pub trait ArtifactStore: Send + Sync {
    /// The artifact under `key`, if this tier holds a valid one. Counts
    /// a tier hit or miss.
    fn get(&self, key: Fingerprint) -> Option<StoredArtifact>;

    /// Stores `artifact` under `key`, evicting per policy when bounded.
    fn put(&self, key: Fingerprint, artifact: StoredArtifact);

    /// Drops the entry under `key`, if present (corruption healing).
    fn remove(&self, key: Fingerprint);

    /// Entries currently held.
    fn len(&self) -> usize;

    /// Whether this tier currently holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters of this tier.
    fn tier_stats(&self) -> TierStats;
}

/// Configuration of the session's artifact store: which tiers exist and
/// how the memory tier is bounded.
///
/// The default — no directory, no capacity — reproduces the original
/// unbounded in-process map. **None of these knobs enter any cache
/// key**: they change where artifacts live, never what they contain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Root directory of the on-disk tier; `None` disables persistence.
    pub dir: Option<PathBuf>,
    /// Eviction policy of the bounded memory tier (ignored while the
    /// tier is unbounded).
    pub policy: PolicyKind,
    /// Memory-tier capacity in entries; `None` = unbounded.
    pub capacity_entries: Option<usize>,
    /// Memory-tier capacity in artifact bytes; `None` = unbounded.
    pub capacity_bytes: Option<u64>,
}

impl CacheConfig {
    /// Whether the memory tier is capacity-bounded.
    pub fn bounded(&self) -> bool {
        self.capacity_entries.is_some() || self.capacity_bytes.is_some()
    }
}
