//! Pluggable eviction policies for the bounded in-memory tier.
//!
//! A [`CachePolicy`] tracks the keys a [`BoundedMemStore`] holds and
//! picks eviction victims. All three policies are fully deterministic —
//! orderings come from insertion/access sequence counters, never from
//! hash-map iteration order, wall-clock time or randomness — because the
//! determinism contract (DESIGN.md §15) requires that cache state can
//! change *what is cached*, never *what is decided*.
//!
//! [`BoundedMemStore`]: crate::store::BoundedMemStore

use crate::fingerprint::Fingerprint;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;

/// Chooses which entry a bounded tier evicts under capacity pressure.
///
/// The store calls `on_insert`/`on_hit`/`on_remove` to mirror its map;
/// `victim` must return a key the policy currently tracks (and forget
/// it). Policies are synchronized externally by the store's lock.
pub trait CachePolicy: Send + fmt::Debug {
    /// A new key entered the store.
    fn on_insert(&mut self, key: Fingerprint);

    /// An existing key was served.
    fn on_hit(&mut self, key: Fingerprint);

    /// A key was removed outside eviction (healing, replacement).
    fn on_remove(&mut self, key: Fingerprint);

    /// Selects and forgets the next eviction victim.
    fn victim(&mut self) -> Option<Fingerprint>;
}

/// One recency-ordered segment: keys ordered by a shared sequence
/// counter (oldest first). The building block of all three policies.
#[derive(Debug, Default)]
struct Segment {
    order: BTreeMap<u64, Fingerprint>,
    index: HashMap<Fingerprint, u64>,
}

impl Segment {
    fn touch(&mut self, key: Fingerprint, seq: u64) {
        if let Some(old) = self.index.insert(key, seq) {
            self.order.remove(&old);
        }
        self.order.insert(seq, key);
    }

    fn remove(&mut self, key: Fingerprint) -> bool {
        match self.index.remove(&key) {
            Some(seq) => {
                self.order.remove(&seq);
                true
            }
            None => false,
        }
    }

    fn pop_oldest(&mut self) -> Option<Fingerprint> {
        let (&seq, &key) = self.order.iter().next()?;
        self.order.remove(&seq);
        self.index.remove(&key);
        Some(key)
    }

    fn contains(&self, key: Fingerprint) -> bool {
        self.index.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// Least-recently-used: one recency list, victims from the cold end.
#[derive(Debug, Default)]
pub struct Lru {
    seq: u64,
    seg: Segment,
}

impl Lru {
    /// An empty LRU policy.
    pub fn new() -> Self {
        Lru::default()
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

impl CachePolicy for Lru {
    fn on_insert(&mut self, key: Fingerprint) {
        let seq = self.next_seq();
        self.seg.touch(key, seq);
    }

    fn on_hit(&mut self, key: Fingerprint) {
        if self.seg.contains(key) {
            let seq = self.next_seq();
            self.seg.touch(key, seq);
        }
    }

    fn on_remove(&mut self, key: Fingerprint) {
        self.seg.remove(key);
    }

    fn victim(&mut self) -> Option<Fingerprint> {
        self.seg.pop_oldest()
    }
}

/// Segmented LRU: new entries start in a probationary segment and are
/// promoted to a protected segment on their first re-hit; victims come
/// from the probationary cold end first. One-touch scans therefore wash
/// through probation without displacing the re-used working set.
#[derive(Debug)]
pub struct Slru {
    seq: u64,
    probation: Segment,
    protected: Segment,
    /// Protected-segment entry cap; `None` derives 2/3 of the current
    /// population (bytes-only capacities have no fixed entry budget).
    protected_cap: Option<usize>,
}

impl Slru {
    /// An SLRU policy for a tier capped at `capacity_entries` (the
    /// protected segment gets two thirds of it).
    pub fn new(capacity_entries: Option<usize>) -> Self {
        Slru {
            seq: 0,
            probation: Segment::default(),
            protected: Segment::default(),
            protected_cap: capacity_entries.map(|c| (c * 2 / 3).max(1)),
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn protected_cap(&self) -> usize {
        self.protected_cap
            .unwrap_or(((self.probation.len() + self.protected.len()) * 2 / 3).max(1))
    }

    /// Demotes protected-LRU entries back to probation MRU until the
    /// protected segment fits its cap.
    fn rebalance(&mut self) {
        while self.protected.len() > self.protected_cap() {
            let Some(key) = self.protected.pop_oldest() else { break };
            let seq = self.next_seq();
            self.probation.touch(key, seq);
        }
    }
}

impl CachePolicy for Slru {
    fn on_insert(&mut self, key: Fingerprint) {
        let seq = self.next_seq();
        self.probation.touch(key, seq);
    }

    fn on_hit(&mut self, key: Fingerprint) {
        let seq = self.next_seq();
        if self.probation.remove(key) || self.protected.contains(key) {
            self.protected.touch(key, seq);
            self.rebalance();
        }
    }

    fn on_remove(&mut self, key: Fingerprint) {
        if !self.probation.remove(key) {
            self.protected.remove(key);
        }
    }

    fn victim(&mut self) -> Option<Fingerprint> {
        self.probation.pop_oldest().or_else(|| self.protected.pop_oldest())
    }
}

/// 2Q: a small FIFO (`A1in`) admits new entries; keys evicted from it
/// are remembered in a ghost list (`A1out`, keys only); a key re-seen
/// while ghosted enters the main LRU (`Am`). Correlated double hits
/// inside `A1in` do *not* promote — only a re-reference after FIFO
/// eviction proves a key is worth main-memory residency.
#[derive(Debug)]
pub struct TwoQ {
    seq: u64,
    a1in: VecDeque<Fingerprint>,
    a1out: VecDeque<Fingerprint>,
    am: Segment,
    /// Entry budget the segment caps derive from; `None` derives from
    /// the current population.
    capacity_entries: Option<usize>,
}

impl TwoQ {
    /// A 2Q policy for a tier capped at `capacity_entries` (`A1in` gets
    /// a quarter, the ghost list half).
    pub fn new(capacity_entries: Option<usize>) -> Self {
        TwoQ {
            seq: 0,
            a1in: VecDeque::new(),
            a1out: VecDeque::new(),
            am: Segment::default(),
            capacity_entries,
        }
    }

    fn budget(&self) -> usize {
        self.capacity_entries.unwrap_or(self.a1in.len() + self.am.len()).max(1)
    }

    fn a1in_cap(&self) -> usize {
        (self.budget() / 4).max(1)
    }

    fn ghost_cap(&self) -> usize {
        (self.budget() / 2).max(2)
    }

    fn ghost_remember(&mut self, key: Fingerprint) {
        self.a1out.push_back(key);
        while self.a1out.len() > self.ghost_cap() {
            self.a1out.pop_front();
        }
    }
}

impl CachePolicy for TwoQ {
    fn on_insert(&mut self, key: Fingerprint) {
        if let Some(pos) = self.a1out.iter().position(|&k| k == key) {
            // Re-reference of a ghosted key: proven reuse, straight to Am.
            self.a1out.remove(pos);
            self.seq += 1;
            self.am.touch(key, self.seq);
        } else {
            self.a1in.push_back(key);
        }
    }

    fn on_hit(&mut self, key: Fingerprint) {
        if self.am.contains(key) {
            self.seq += 1;
            self.am.touch(key, self.seq);
        }
        // Hits inside A1in deliberately do not reorder the FIFO.
    }

    fn on_remove(&mut self, key: Fingerprint) {
        if let Some(pos) = self.a1in.iter().position(|&k| k == key) {
            self.a1in.remove(pos);
        } else {
            self.am.remove(key);
        }
    }

    fn victim(&mut self) -> Option<Fingerprint> {
        // Unproven FIFO entries go first whenever A1in is at or over its
        // share (or Am is empty); Am residents have proven reuse and are
        // only evicted once A1in is below its cap.
        if self.a1in.len() >= self.a1in_cap() || self.am.len() == 0 {
            if let Some(key) = self.a1in.pop_front() {
                self.ghost_remember(key);
                return Some(key);
            }
        }
        self.am.pop_oldest().or_else(|| {
            let key = self.a1in.pop_front()?;
            self.ghost_remember(key);
            Some(key)
        })
    }
}

/// Which eviction policy the bounded memory tier uses — the CLI-facing
/// name behind `--cache-policy`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    #[default]
    Lru,
    /// Segmented LRU (probation + protected).
    Slru,
    /// 2Q (FIFO admission + ghost list + main LRU).
    TwoQ,
}

impl PolicyKind {
    /// Builds the policy for a tier capped at `capacity_entries`.
    pub fn build(self, capacity_entries: Option<usize>) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Slru => Box::new(Slru::new(capacity_entries)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity_entries)),
        }
    }

    /// Every policy, for differential tests and help text.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Slru, PolicyKind::TwoQ];

    /// The CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Slru => "slru",
            PolicyKind::TwoQ => "2q",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error of parsing a [`PolicyKind`]: the rejected input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyKindError(pub String);

impl fmt::Display for ParsePolicyKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cache policy {:?} (expected lru, slru or 2q)", self.0)
    }
}

impl std::error::Error for ParsePolicyKindError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "slru" => Ok(PolicyKind::Slru),
            "2q" | "twoq" => Ok(PolicyKind::TwoQ),
            other => Err(ParsePolicyKindError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::Digest;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(Digest(n))
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut p = Lru::new();
        for n in 1..=3 {
            p.on_insert(key(n));
        }
        p.on_hit(key(1)); // 1 is now warmest; 2 is coldest
        assert_eq!(p.victim(), Some(key(2)));
        assert_eq!(p.victim(), Some(key(3)));
        assert_eq!(p.victim(), Some(key(1)));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn slru_protects_rehit_entries_from_scans() {
        let mut p = Slru::new(Some(6));
        p.on_insert(key(1));
        p.on_hit(key(1)); // promoted to protected
        for n in 2..=5 {
            p.on_insert(key(n)); // a one-touch scan
        }
        // Victims drain the probationary scan before touching key 1.
        for expect in 2..=5 {
            assert_eq!(p.victim(), Some(key(expect)));
        }
        assert_eq!(p.victim(), Some(key(1)));
    }

    #[test]
    fn slru_demotes_when_protected_overflows() {
        let mut p = Slru::new(Some(3)); // protected cap = 2
        for n in 1..=3 {
            p.on_insert(key(n));
            p.on_hit(key(n)); // all promoted; 1 demoted on overflow
        }
        // 1 was demoted back to probation, so it is the first victim.
        assert_eq!(p.victim(), Some(key(1)));
    }

    #[test]
    fn twoq_promotes_only_ghosted_rereferences() {
        let mut p = TwoQ::new(Some(4)); // a1in cap = 1
        p.on_insert(key(1));
        p.on_hit(key(1)); // a1in hit: no promotion
        p.on_insert(key(2));
        // a1in over cap → victim is the FIFO head (1), ghosted.
        assert_eq!(p.victim(), Some(key(1)));
        // Re-reference of ghosted 1 → admitted straight to Am.
        p.on_insert(key(1));
        p.on_insert(key(3));
        p.on_insert(key(4));
        // 2 and 3 are FIFO fodder; Am-resident 1 survives both.
        assert_eq!(p.victim(), Some(key(2)));
        assert_eq!(p.victim(), Some(key(3)));
        assert_eq!(p.victim(), Some(key(4)));
        assert_eq!(p.victim(), Some(key(1)));
    }

    #[test]
    fn policies_forget_removed_keys() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build(Some(8));
            p.on_insert(key(1));
            p.on_insert(key(2));
            p.on_remove(key(1));
            assert_eq!(p.victim(), Some(key(2)), "{kind}");
            assert_eq!(p.victim(), None, "{kind}");
        }
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        assert_eq!("lru".parse::<PolicyKind>().unwrap(), PolicyKind::Lru);
        assert_eq!("SLRU".parse::<PolicyKind>().unwrap(), PolicyKind::Slru);
        assert_eq!("2q".parse::<PolicyKind>().unwrap(), PolicyKind::TwoQ);
        assert_eq!("twoq".parse::<PolicyKind>().unwrap(), PolicyKind::TwoQ);
        assert!("fifo".parse::<PolicyKind>().is_err());
        for kind in PolicyKind::ALL {
            assert_eq!(kind.as_str().parse::<PolicyKind>().unwrap(), kind);
        }
    }
}
