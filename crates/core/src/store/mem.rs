//! The in-memory tiers: the original unbounded map and the bounded,
//! policy-evicted variant.

use crate::fingerprint::Fingerprint;
use crate::store::{
    ArtifactStore, CachePolicy, PolicyKind, StoredArtifact, TierCounters, TierStats,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// The original unbounded in-process map — every artifact stays until
/// the session dies. The zero-configuration default tier.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<HashMap<Fingerprint, StoredArtifact>>,
    counters: TierCounters,
}

impl MemStore {
    /// An empty unbounded store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl ArtifactStore for MemStore {
    fn get(&self, key: Fingerprint) -> Option<StoredArtifact> {
        let found = self.map.lock().ok().and_then(|map| map.get(&key).cloned());
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: Fingerprint, artifact: StoredArtifact) {
        self.counters.bytes_written.fetch_add(artifact.bytes.len() as u64, Ordering::Relaxed);
        if let Ok(mut map) = self.map.lock() {
            map.insert(key, artifact);
        }
    }

    fn remove(&self, key: Fingerprint) {
        if let Ok(mut map) = self.map.lock() {
            map.remove(&key);
        }
    }

    fn len(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }

    fn tier_stats(&self) -> TierStats {
        self.counters.snapshot()
    }
}

/// State a [`BoundedMemStore`] keeps under one lock: the map, the
/// eviction policy mirroring its keys, and the byte total.
#[derive(Debug)]
struct BoundedInner {
    map: HashMap<Fingerprint, StoredArtifact>,
    policy: Box<dyn CachePolicy>,
    bytes: u64,
}

/// An in-memory tier capped by entry count and/or artifact bytes, with
/// a pluggable [`CachePolicy`] choosing deterministic eviction victims.
#[derive(Debug)]
pub struct BoundedMemStore {
    inner: Mutex<BoundedInner>,
    capacity_entries: Option<usize>,
    capacity_bytes: Option<u64>,
    counters: TierCounters,
}

impl BoundedMemStore {
    /// An empty bounded store evicting per `policy`. A `None` capacity
    /// leaves that axis unbounded (but at least one should be set —
    /// otherwise prefer [`MemStore`]).
    pub fn new(
        policy: PolicyKind,
        capacity_entries: Option<usize>,
        capacity_bytes: Option<u64>,
    ) -> Self {
        BoundedMemStore {
            inner: Mutex::new(BoundedInner {
                map: HashMap::new(),
                policy: policy.build(capacity_entries),
                bytes: 0,
            }),
            capacity_entries,
            capacity_bytes,
            counters: TierCounters::default(),
        }
    }

    fn over_capacity(&self, inner: &BoundedInner) -> bool {
        self.capacity_entries.is_some_and(|cap| inner.map.len() > cap)
            || self.capacity_bytes.is_some_and(|cap| inner.bytes > cap)
    }

    /// Evicts policy victims until the store fits its caps. The victim
    /// may be the entry just inserted — a cache too small for an
    /// artifact simply will not hold it.
    fn enforce(&self, inner: &mut BoundedInner) {
        while self.over_capacity(inner) {
            let Some(victim) = inner.policy.victim() else { break };
            if let Some(gone) = inner.map.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(gone.bytes.len() as u64);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl ArtifactStore for BoundedMemStore {
    fn get(&self, key: Fingerprint) -> Option<StoredArtifact> {
        let found = self.inner.lock().ok().and_then(|mut inner| {
            let found = inner.map.get(&key).cloned();
            if found.is_some() {
                inner.policy.on_hit(key);
            }
            found
        });
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: Fingerprint, artifact: StoredArtifact) {
        self.counters.bytes_written.fetch_add(artifact.bytes.len() as u64, Ordering::Relaxed);
        if let Ok(mut inner) = self.inner.lock() {
            let added = artifact.bytes.len() as u64;
            match inner.map.insert(key, artifact) {
                Some(old) => {
                    // Same key → same content hash → same bytes; treat the
                    // rewrite as a touch.
                    inner.bytes = inner.bytes.saturating_sub(old.bytes.len() as u64) + added;
                    inner.policy.on_hit(key);
                }
                None => {
                    inner.bytes += added;
                    inner.policy.on_insert(key);
                }
            }
            self.enforce(&mut inner);
        }
    }

    fn remove(&self, key: Fingerprint) {
        if let Ok(mut inner) = self.inner.lock() {
            if let Some(gone) = inner.map.remove(&key) {
                inner.bytes = inner.bytes.saturating_sub(gone.bytes.len() as u64);
                inner.policy.on_remove(key);
            }
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().map(|inner| inner.map.len()).unwrap_or(0)
    }

    fn tier_stats(&self) -> TierStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(palo_ir::Digest(n))
    }

    fn artifact(len: usize) -> StoredArtifact {
        StoredArtifact { value: None, bytes: vec![0u8; len].into() }
    }

    #[test]
    fn unbounded_store_round_trips_and_counts() {
        let store = MemStore::new();
        assert!(store.get(key(1)).is_none());
        store.put(key(1), artifact(10));
        assert_eq!(store.get(key(1)).unwrap().bytes.len(), 10);
        store.remove(key(1));
        assert!(store.get(key(1)).is_none());
        let s = store.tier_stats();
        assert_eq!((s.hits, s.misses, s.bytes_written), (1, 2, 10));
    }

    #[test]
    fn entry_capacity_evicts_in_policy_order() {
        let store = BoundedMemStore::new(PolicyKind::Lru, Some(2), None);
        store.put(key(1), artifact(1));
        store.put(key(2), artifact(1));
        store.get(key(1)); // warm 1; 2 is the LRU victim
        store.put(key(3), artifact(1));
        assert_eq!(store.len(), 2);
        assert!(store.get(key(2)).is_none(), "LRU victim must be 2");
        assert!(store.get(key(1)).is_some());
        assert!(store.get(key(3)).is_some());
        assert_eq!(store.tier_stats().evictions, 1);
    }

    #[test]
    fn byte_capacity_evicts_until_it_fits() {
        let store = BoundedMemStore::new(PolicyKind::Lru, None, Some(100));
        store.put(key(1), artifact(60));
        store.put(key(2), artifact(60)); // 120 > 100 → evict 1
        assert_eq!(store.len(), 1);
        assert!(store.get(key(2)).is_some());
        // An artifact larger than the whole cap passes through unheld.
        store.put(key(3), artifact(200));
        assert!(store.get(key(3)).is_none());
    }

    #[test]
    fn rewriting_a_key_does_not_double_count_bytes() {
        let store = BoundedMemStore::new(PolicyKind::Slru, None, Some(100));
        store.put(key(1), artifact(80));
        store.put(key(1), artifact(80));
        assert_eq!(store.len(), 1, "no eviction: 80 bytes live, not 160");
        assert_eq!(store.tier_stats().evictions, 0);
    }

    #[test]
    fn stored_value_survives_the_round_trip() {
        let store = MemStore::new();
        let arc: Arc<dyn std::any::Any + Send + Sync> = Arc::new(42u64);
        store.put(key(5), StoredArtifact { value: Some(arc), bytes: vec![1, 2].into() });
        let got = store.get(key(5)).unwrap();
        let v = got.value.unwrap().downcast::<u64>().unwrap();
        assert_eq!(*v, 42);
    }
}
