//! The read-through/write-through composition of the memory and disk
//! tiers.

use crate::error::PaloError;
use crate::fingerprint::Fingerprint;
use crate::store::{
    ArtifactStore, BoundedMemStore, CacheConfig, DiskStore, MemStore, StoredArtifact, TierStats,
};

/// A memory tier over an optional disk tier.
///
/// * `get` reads through: a memory miss falls to disk; a disk hit is
///   returned with `value: None` (encoded bytes only) for the typed
///   layer to decode and [`promote`](TieredStore::promote);
/// * `put` writes through: every new artifact lands in both tiers, so a
///   future process starts warm even if the memory tier evicts it.
#[derive(Debug)]
pub struct TieredStore {
    mem: MemTier,
    disk: Option<DiskStore>,
}

/// The two memory-tier shapes, statically dispatched.
#[derive(Debug)]
enum MemTier {
    Unbounded(MemStore),
    Bounded(BoundedMemStore),
}

impl MemTier {
    fn as_store(&self) -> &dyn ArtifactStore {
        match self {
            MemTier::Unbounded(s) => s,
            MemTier::Bounded(s) => s,
        }
    }
}

impl TieredStore {
    /// Builds the tier stack `config` describes: an unbounded or bounded
    /// memory tier, over a disk tier when a directory is configured.
    ///
    /// # Errors
    ///
    /// [`PaloError::Store`] when the cache directory cannot be opened
    /// (see [`DiskStore::open`]).
    pub fn from_config(config: &CacheConfig) -> Result<Self, PaloError> {
        let mem = if config.bounded() {
            MemTier::Bounded(BoundedMemStore::new(
                config.policy,
                config.capacity_entries,
                config.capacity_bytes,
            ))
        } else {
            MemTier::Unbounded(MemStore::new())
        };
        let disk = config.dir.as_ref().map(DiskStore::open).transpose()?;
        Ok(TieredStore { mem, disk })
    }

    /// A memory-only store with the original unbounded behavior.
    pub fn unbounded() -> Self {
        TieredStore { mem: MemTier::Unbounded(MemStore::new()), disk: None }
    }

    /// Re-stores a disk-served artifact into the memory tier with its
    /// decoded value attached, so subsequent hits skip the decode. Does
    /// not touch the disk tier (the entry is already there).
    pub fn promote(&self, key: Fingerprint, artifact: StoredArtifact) {
        self.mem.as_store().put(key, artifact);
    }

    /// Lifetime counters of the memory tier.
    pub fn mem_stats(&self) -> TierStats {
        self.mem.as_store().tier_stats()
    }

    /// Lifetime counters of the disk tier (zeros when disabled).
    pub fn disk_stats(&self) -> TierStats {
        self.disk.as_ref().map(|d| d.tier_stats()).unwrap_or_default()
    }

    /// Corrupt disk entries encountered and healed.
    pub fn disk_anomalies(&self) -> u64 {
        self.disk.as_ref().map(|d| d.anomalies()).unwrap_or(0)
    }

    /// Whether a disk tier is attached.
    pub fn persistent(&self) -> bool {
        self.disk.is_some()
    }
}

impl ArtifactStore for TieredStore {
    fn get(&self, key: Fingerprint) -> Option<StoredArtifact> {
        if let Some(hit) = self.mem.as_store().get(key) {
            return Some(hit);
        }
        self.disk.as_ref()?.get(key)
    }

    fn put(&self, key: Fingerprint, artifact: StoredArtifact) {
        if let Some(disk) = &self.disk {
            disk.put(key, artifact.clone());
        }
        self.mem.as_store().put(key, artifact);
    }

    fn remove(&self, key: Fingerprint) {
        self.mem.as_store().remove(key);
        if let Some(disk) = &self.disk {
            disk.remove(key);
        }
    }

    /// Entries resident in the *memory* tier (the session-facing count;
    /// the disk tier may hold more).
    fn len(&self) -> usize {
        self.mem.as_store().len()
    }

    fn tier_stats(&self) -> TierStats {
        self.mem_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PolicyKind;
    use palo_codec::frame;
    use palo_ir::Digest;
    use std::path::PathBuf;

    fn key(n: u128) -> Fingerprint {
        Fingerprint(Digest(n))
    }

    fn framed(payload: &[u8]) -> StoredArtifact {
        StoredArtifact { value: None, bytes: frame::encode_frame("test", 1, payload).into() }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("palo-tiered-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_config_reads_its_own_writes() {
        let store = TieredStore::from_config(&CacheConfig::default()).unwrap();
        assert!(!store.persistent());
        store.put(key(1), framed(b"a"));
        assert!(store.get(key(1)).is_some());
        assert_eq!(store.disk_stats(), TierStats::default());
    }

    #[test]
    fn evicted_entries_read_through_from_disk() {
        let root = tmp_root("readthrough");
        let config = CacheConfig {
            dir: Some(root.clone()),
            policy: PolicyKind::Lru,
            capacity_entries: Some(1),
            capacity_bytes: None,
        };
        let store = TieredStore::from_config(&config).unwrap();
        store.put(key(1), framed(b"one"));
        store.put(key(2), framed(b"two")); // evicts 1 from memory
        let m = store.mem_stats();
        assert_eq!(m.evictions, 1);

        // 1 is gone from memory but read through from disk.
        let got = store.get(key(1)).expect("disk must still hold the evicted entry");
        assert!(got.value.is_none(), "a disk hit serves bytes, not a decoded value");
        assert_eq!(frame::decode_frame(&got.bytes).unwrap().payload, b"one");
        assert_eq!(store.disk_stats().hits, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_fresh_store_on_the_same_dir_starts_warm() {
        let root = tmp_root("warm");
        let config = CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() };
        let cold = TieredStore::from_config(&config).unwrap();
        cold.put(key(3), framed(b"persisted"));
        drop(cold);

        let warm = TieredStore::from_config(&config).unwrap();
        assert!(warm.get(key(3)).is_some());
        assert_eq!(warm.disk_stats().hits, 1);
        assert_eq!(warm.mem_stats().misses, 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
