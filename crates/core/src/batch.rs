//! [`BatchDriver`]: concurrent suite-scale execution over one
//! [`Session`]'s shared artifact cache.
//!
//! The driver maps [`Session::run`] over a list of nests on the same
//! scoped worker pool the candidate search uses
//! ([`crate::search::parallel_map`]), with:
//!
//! * **Per-nest isolation** — each item's outcome is independent; a
//!   panic or error in one nest becomes that item's `Err`, the rest of
//!   the batch completes (the PR-1 fault-tolerance semantics, batch
//!   scale).
//! * **Deterministic results** — outcomes are returned in input order,
//!   and because pass artifacts are keyed by content (never by worker or
//!   schedule timing), every worker count and every cold/warm cache
//!   state produces bit-identical decisions, rungs and estimates.
//! * **Shared cache** — duplicate kernels across the batch (or a batch
//!   re-run on a warm session) hit the session's artifact cache.

use crate::error::{catch_panic, PaloError};
use crate::pass::CacheStats;
use crate::pipeline::{PipelineOutcome, RunOverrides};
use crate::search::{parallel_map_in, resolve_threads};
use crate::session::Session;
use palo_ir::LoopNest;
use std::time::{Duration, Instant};

/// Concurrent batch executor borrowing a [`Session`].
#[derive(Debug)]
pub struct BatchDriver<'s> {
    session: &'s Session,
    threads: Option<usize>,
}

/// Scheduling lane of one batch request.
///
/// Lanes order *claiming*, not results: a mixed batch claims every
/// interactive item before any batch item, so latency-sensitive work is
/// never stuck behind a backlog of bulk work on a busy driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: claimed before every batch-lane item.
    Interactive,
    /// Throughput-oriented bulk work (the default).
    #[default]
    Batch,
}

impl Priority {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One item of a mixed batch: a nest plus its lane and per-request
/// overrides.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The nest to optimize.
    pub nest: LoopNest,
    /// Claim lane ([`Priority::Interactive`] items are claimed first).
    pub priority: Priority,
    /// Per-request overrides layered over the session config (deadline,
    /// trace budget, fault plan, simulate switch).
    pub overrides: RunOverrides,
}

impl BatchRequest {
    /// A batch-lane request with no overrides.
    pub fn new(nest: LoopNest) -> Self {
        BatchRequest { nest, priority: Priority::Batch, overrides: RunOverrides::default() }
    }

    /// Sets the claim lane.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-request overrides.
    pub fn with_overrides(mut self, overrides: RunOverrides) -> Self {
        self.overrides = overrides;
        self
    }
}

/// One batch item's result, in input order.
#[derive(Debug)]
pub struct BatchItem {
    /// The nest's kernel name (display only — not part of any cache
    /// key).
    pub name: String,
    /// The run's outcome; `Err` isolates this item's failure from the
    /// rest of the batch.
    pub outcome: Result<PipelineOutcome, PaloError>,
}

/// What one batch run did.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-nest outcomes, in input order.
    pub items: Vec<BatchItem>,
    /// Cache counter movement of this batch (a window over the
    /// session's lifetime counters).
    pub cache: CacheStats,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Items that produced an outcome.
    pub fn succeeded(&self) -> usize {
        self.items.iter().filter(|i| i.outcome.is_ok()).count()
    }

    /// Items whose run failed outright (ladder exhausted, panic).
    pub fn failed(&self) -> usize {
        self.items.len() - self.succeeded()
    }
}

impl<'s> BatchDriver<'s> {
    /// A driver over `session` using the default worker count
    /// ([`resolve_threads`] — the `PALO_SEARCH_THREADS` environment
    /// variable, then available parallelism).
    pub fn new(session: &'s Session) -> Self {
        BatchDriver { session, threads: None }
    }

    /// Overrides the worker count (determinism tests sweep 1/2/5).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Runs every nest through the session's pass graph, concurrently,
    /// returning outcomes in input order. Equivalent to
    /// [`BatchDriver::run_requests`] with every nest in the batch lane
    /// and no overrides.
    pub fn run(&self, nests: &[LoopNest]) -> BatchReport {
        let requests: Vec<BatchRequest> =
            nests.iter().map(|n| BatchRequest::new(n.clone())).collect();
        self.run_requests(&requests)
    }

    /// Runs a mixed batch — per-request lanes and overrides — returning
    /// outcomes **in input order**.
    ///
    /// Claiming is lane- and size-aware: interactive items first, and
    /// within a lane the largest nests (by iteration count) first, so one
    /// huge nest overlaps the rest of the queue instead of serializing
    /// its tail when it would otherwise be claimed last. The claim order
    /// never affects a result bit (the determinism contract); it only
    /// shapes wall-clock.
    pub fn run_requests(&self, requests: &[BatchRequest]) -> BatchReport {
        let start = Instant::now();
        let before = self.session.cache_stats();
        let threads = resolve_threads(self.threads);
        let order = claim_order(requests);
        let items = parallel_map_in(threads, &order, requests, |req| BatchItem {
            name: req.nest.name().to_string(),
            // Session::run guards each stage already; the outer
            // catch_panic is the batch-level isolation boundary, so even
            // a bug outside the guarded stages costs one item, not the
            // batch.
            outcome: catch_panic("batch-item", || {
                self.session.run_with(&req.nest, &req.overrides)
            })
            .and_then(|r| r),
        });
        BatchReport {
            items,
            cache: self.session.cache_stats().since(&before),
            elapsed: start.elapsed(),
        }
    }
}

/// The claim order of a mixed batch: interactive lane before batch lane;
/// within a lane, largest iteration count first; ties in input order
/// (the order is a pure function of the request list — deterministic).
fn claim_order(requests: &[BatchRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&requests[a], &requests[b]);
        ra.priority
            .cmp(&rb.priority)
            .then_with(|| rb.nest.iteration_count().cmp(&ra.nest.iteration_count()))
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(name: &str, n: usize) -> LoopNest {
        let mut b = NestBuilder::new(name, DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn batch_preserves_input_order_and_shares_the_cache() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        // Two distinct kernels plus a duplicate of the first under
        // another name: the duplicate must hit the cache even cold.
        let nests = vec![matmul("alpha", 16), matmul("beta", 24), matmul("alpha_again", 16)];
        let report = session.batch().with_threads(2).run(&nests);
        assert_eq!(report.failed(), 0);
        let names: Vec<&str> = report.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "alpha_again"]);
        let (a, c) = (&report.items[0], &report.items[2]);
        let (ao, co) = (a.outcome.as_ref().unwrap(), c.outcome.as_ref().unwrap());
        assert_eq!(ao.decision, co.decision);
        assert!(report.cache.hits > 0, "duplicate kernel must hit: {:?}", report.cache);
    }

    #[test]
    fn sim_cap_bounds_concurrent_simulations_below_worker_count() {
        let config =
            PipelineConfig { max_concurrent_sims: Some(1), ..PipelineConfig::default() };
        let session = Session::new(&presets::intel_i7_6700(), config).unwrap();
        // Six distinct kernels on four workers: without the gate the
        // simulate stage would overlap up to four ways.
        let nests: Vec<LoopNest> =
            (0..6).map(|i| matmul(&format!("mm{i}"), 16 + 2 * i)).collect();
        let report = session.batch().with_threads(4).run(&nests);
        assert_eq!(report.failed(), 0);
        assert_eq!(
            session.max_sims_observed(),
            1,
            "simulate stage exceeded its concurrency cap"
        );
    }

    #[test]
    fn claim_order_is_lane_then_size_then_input_order() {
        let requests = vec![
            BatchRequest::new(matmul("big_batch", 32)),
            BatchRequest::new(matmul("small_int", 8)).with_priority(Priority::Interactive),
            BatchRequest::new(matmul("small_batch", 8)),
            BatchRequest::new(matmul("big_int", 32)).with_priority(Priority::Interactive),
            BatchRequest::new(matmul("small_batch2", 8)),
        ];
        // Interactive first (largest first within the lane), then batch
        // largest-first, ties in input order.
        assert_eq!(claim_order(&requests), vec![3, 1, 0, 2, 4]);
    }

    #[test]
    fn mixed_lanes_and_overrides_return_input_order_results() {
        let session =
            Session::new(&presets::intel_i7_6700(), PipelineConfig::default()).unwrap();
        let requests = vec![
            BatchRequest::new(matmul("bulk", 24)),
            BatchRequest::new(matmul("urgent", 16)).with_priority(Priority::Interactive),
            // A request-scoped shed to the analytical model: no estimate.
            BatchRequest::new(matmul("shed", 16))
                .with_overrides(RunOverrides { simulate: Some(false), ..Default::default() }),
        ];
        let report = session.batch().with_threads(2).run_requests(&requests);
        assert_eq!(report.failed(), 0);
        let names: Vec<&str> = report.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["bulk", "urgent", "shed"]);
        let shed = report.items[2].outcome.as_ref().unwrap();
        assert!(shed.report.estimate.is_none(), "simulate override must shed the estimate");
        let urgent = report.items[1].outcome.as_ref().unwrap();
        assert!(urgent.report.estimate.is_some());
    }

    #[test]
    fn one_bad_nest_does_not_sink_the_batch() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1); // Session::new would reject this...
        assert!(Session::new(&arch, PipelineConfig::default()).is_err());

        // ...so break one *run* instead: exhaust the ladder via faults on
        // a fresh session per batch (faults are session-wide), proving
        // the errored item is isolated in the report.
        let mut config = PipelineConfig::default();
        config.faults.fail_first_lowerings = u64::MAX; // every rung fails
        let session = Session::new(&presets::intel_i7_6700(), config).unwrap();
        let report = session.batch().with_threads(2).run(&[matmul("a", 8), matmul("b", 8)]);
        assert_eq!(report.failed(), 2);
        assert_eq!(report.items.len(), 2);
        for item in &report.items {
            assert!(item.outcome.is_err());
        }
    }
}
