//! Tile-footprint computations shared by the analytical models.
//!
//! For a tile that lets variable `v` range over `T_v` consecutive values,
//! an affine subscript `Σ c·v + o` spans `1 + Σ |c|·(T_v − 1)` values, so
//! every access has a rectangular footprint per array dimension. From it
//! the model derives:
//!
//! * **elements** — the working-set contribution (Eqs. 1, 6);
//! * **lines** — cold misses *without* prefetch discounting (Eq. 2);
//! * **rows** — cold misses *with* the streaming prefetcher covering each
//!   contiguous row after its first line (Eq. 3): the number of distinct
//!   row segments;
//! * **pairs** — cold misses with an *adjacent-pair* (buddy-line)
//!   prefetcher: every demand miss also fetches the other line of its
//!   aligned pair, so a contiguous row costs one miss per line *pair*.
//!
//! Which estimate applies is a property of the target's prefetchers, not
//! of the model: [`Coverage`] names the three regimes and
//! [`Footprints::misses_for`] selects among them.

use palo_ir::{ArrayId, LoopNest};
use std::collections::BTreeSet;

/// How much of a tile's cold misses the target's hardware prefetchers
/// absorb — the per-strategy discount the analytical models route their
/// `a2`/`a3` miss terms through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coverage {
    /// No prefetch coverage: every touched line is a miss
    /// ([`Footprints::lines`], Eq. 2).
    None,
    /// Adjacent-pair (buddy-line) coverage: one miss per aligned line
    /// pair of each row ([`Footprints::pairs`]).
    Pairs,
    /// Stream coverage: a streaming unit covers each contiguous row after
    /// its first line ([`Footprints::rows`], Eq. 3).
    Rows,
}

/// Shape of one (deduplicated) access: per array dimension, the
/// `(variable, |coefficient|)` terms of its subscript.
#[derive(Debug, Clone)]
pub struct AccessShape {
    /// The referenced array.
    pub array: ArrayId,
    /// Per dimension: the variables and absolute coefficients.
    pub dims: Vec<Vec<(usize, i64)>>,
    /// Variables used anywhere in the access.
    pub vars: BTreeSet<usize>,
    /// Whether this shape is (also) the statement's output.
    pub is_output: bool,
}

/// All deduplicated access shapes of a nest plus the line length `lc`.
#[derive(Debug, Clone)]
pub struct Footprints {
    shapes: Vec<AccessShape>,
    lc: usize,
}

impl Footprints {
    /// Computes the shapes for `nest` under a cache-line size of
    /// `line_size` bytes. The output access and input loads are
    /// deduplicated structurally (an accumulation counts its array once,
    /// as the paper does).
    pub fn new(nest: &LoopNest, line_size: usize) -> Self {
        // Structural dedup key: the array plus each index's (var, coeff)
        // terms.
        type ShapeKey = (ArrayId, Vec<Vec<(usize, i64)>>);
        let lc = (line_size / nest.dtype().size_bytes()).max(1);
        let mut shapes: Vec<AccessShape> = Vec::new();
        let mut keys: Vec<ShapeKey> = Vec::new();

        let out_acc = &nest.statement().output;
        let all: Vec<(&palo_ir::Access, bool)> = std::iter::once((out_acc, true))
            .chain(nest.statement().inputs().map(|a| (a, false)))
            .collect();
        for (acc, is_output) in all {
            let dims: Vec<Vec<(usize, i64)>> = acc
                .indices
                .iter()
                .map(|ix| ix.terms().iter().map(|&(v, c)| (v.index(), c.abs())).collect())
                .collect();
            let key = (acc.array, dims.clone());
            if let Some(pos) = keys.iter().position(|k| *k == key) {
                shapes[pos].is_output |= is_output;
                continue;
            }
            keys.push(key);
            shapes.push(AccessShape {
                array: acc.array,
                vars: acc.var_set().into_iter().map(|v| v.index()).collect(),
                dims,
                is_output,
            });
        }
        Footprints { shapes, lc }
    }

    /// Elements per cache line (`lc`).
    pub fn lc(&self) -> usize {
        self.lc
    }

    /// The deduplicated shapes.
    pub fn shapes(&self) -> &[AccessShape] {
        &self.shapes
    }

    /// Footprint extent of shape `a` in each array dimension when
    /// variable `v` ranges over `sizes[v]` values.
    pub fn extents(&self, a: usize, sizes: &[usize]) -> Vec<f64> {
        self.shapes[a]
            .dims
            .iter()
            .map(|terms| {
                1.0 + terms
                    .iter()
                    .map(|&(v, c)| c as f64 * (sizes[v].saturating_sub(1)) as f64)
                    .sum::<f64>()
            })
            .collect()
    }

    /// Footprint size in elements.
    pub fn elems(&self, a: usize, sizes: &[usize]) -> f64 {
        self.extents(a, sizes).iter().product()
    }

    /// Footprint size in cache lines (no prefetch discount).
    pub fn lines(&self, a: usize, sizes: &[usize]) -> f64 {
        let e = self.extents(a, sizes);
        match e.split_last() {
            Some((last, rest)) => {
                rest.iter().product::<f64>() * (last / self.lc as f64).ceil().max(1.0)
            }
            None => 1.0,
        }
    }

    /// Distinct contiguous row segments of the footprint — the cold-miss
    /// estimate once the streaming prefetcher covers each row (Eq. 3).
    pub fn rows(&self, a: usize, sizes: &[usize]) -> f64 {
        let e = self.extents(a, sizes);
        match e.split_last() {
            Some((_, rest)) => rest.iter().product::<f64>(),
            None => 1.0,
        }
    }

    /// Cold misses with an adjacent-pair prefetcher: each demand miss
    /// drags in the buddy line of its aligned pair, so a row of `L` lines
    /// costs `⌈L/2⌉` misses.
    pub fn pairs(&self, a: usize, sizes: &[usize]) -> f64 {
        let e = self.extents(a, sizes);
        match e.split_last() {
            Some((last, rest)) => {
                let lines = (last / self.lc as f64).ceil().max(1.0);
                rest.iter().product::<f64>() * (lines / 2.0).ceil()
            }
            None => 1.0,
        }
    }

    /// Cold-miss estimate: [`Footprints::rows`] with prefetch
    /// discounting, [`Footprints::lines`] without.
    pub fn misses(&self, a: usize, sizes: &[usize], prefetch_discount: bool) -> f64 {
        self.misses_for(
            a,
            sizes,
            if prefetch_discount { Coverage::Rows } else { Coverage::None },
        )
    }

    /// Cold-miss estimate under the given prefetch [`Coverage`] regime.
    pub fn misses_for(&self, a: usize, sizes: &[usize], coverage: Coverage) -> f64 {
        match coverage {
            Coverage::None => self.lines(a, sizes),
            Coverage::Pairs => self.pairs(a, sizes),
            Coverage::Rows => self.rows(a, sizes),
        }
    }

    /// Whether shape `a` depends on variable `v`.
    pub fn uses_var(&self, a: usize, v: usize) -> bool {
        self.shapes[a].vars.contains(&v)
    }

    /// Whether the access is *transposed* with respect to the memory
    /// layout: its last (contiguous) array dimension is indexed by a
    /// variable that also indexes an earlier dimension of another access
    /// ordered oppositely. For the models we only need the weaker local
    /// fact: whether the access's last-dimension subscript involves the
    /// given variable.
    pub fn last_dim_uses(&self, a: usize, v: usize) -> bool {
        self.shapes[a]
            .dims
            .last()
            .map(|terms| terms.iter().any(|&(tv, _)| tv == v))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn dedupes_accumulation_output() {
        let fp = Footprints::new(&matmul(64), 64);
        // C (store+load merged), A, B
        assert_eq!(fp.shapes().len(), 3);
        assert!(fp.shapes()[0].is_output);
        assert!(!fp.shapes()[1].is_output);
    }

    #[test]
    fn matmul_tile_footprints_match_paper_eq_4() {
        // Tile (Ti, Tj, Tk) = (8, 32, 16): rows are C: Ti, A: Ti, B: Tk.
        let fp = Footprints::new(&matmul(64), 64);
        let sizes = [8usize, 32, 16];
        assert_eq!(fp.rows(0, &sizes), 8.0); // C[i][j]
        assert_eq!(fp.rows(1, &sizes), 8.0); // A[i][k]
        assert_eq!(fp.rows(2, &sizes), 16.0); // B[k][j]
    }

    #[test]
    fn matmul_ws_matches_paper_eq_1() {
        // One iteration of the outermost intra loop i: sizes (1, Tj, Tk).
        let fp = Footprints::new(&matmul(64), 64);
        let sizes = [1usize, 32, 16];
        let ws: f64 = (0..3).map(|a| fp.elems(a, &sizes)).sum();
        assert_eq!(ws, 32.0 + 16.0 + 32.0 * 16.0); // Tj + Tk + Tj*Tk
    }

    #[test]
    fn lines_round_up_per_row() {
        let fp = Footprints::new(&matmul(64), 64); // lc = 16 f32
        let sizes = [2usize, 20, 1];
        // C footprint 2x20: 2 rows of ceil(20/16)=2 lines.
        assert_eq!(fp.lines(0, &sizes), 4.0);
        assert_eq!(fp.rows(0, &sizes), 2.0);
        assert_eq!(fp.misses(0, &sizes, true), 2.0);
        assert_eq!(fp.misses(0, &sizes, false), 4.0);
    }

    #[test]
    fn pair_coverage_sits_between_lines_and_rows() {
        let fp = Footprints::new(&matmul(64), 64); // lc = 16 f32
        let sizes = [2usize, 40, 1];
        // C footprint 2x40: 2 rows of ceil(40/16)=3 lines; a buddy-line
        // unit covers them in ceil(3/2)=2 misses per row.
        assert_eq!(fp.lines(0, &sizes), 6.0);
        assert_eq!(fp.pairs(0, &sizes), 4.0);
        assert_eq!(fp.rows(0, &sizes), 2.0);
        assert_eq!(fp.misses_for(0, &sizes, Coverage::Pairs), 4.0);
        assert_eq!(fp.misses_for(0, &sizes, Coverage::None), fp.lines(0, &sizes));
        assert_eq!(fp.misses_for(0, &sizes, Coverage::Rows), fp.rows(0, &sizes));
    }

    #[test]
    fn window_offsets_widen_extents() {
        // in[x + rx] with Tx = 8, Trx = 3 -> extent 10.
        let mut b = NestBuilder::new("conv1d", DType::F32);
        let x = b.var("x", 32);
        let rx = b.var("rx", 3);
        let input = b.array("in", &[34]);
        let out = b.array("out", &[32]);
        let ix = palo_ir::AffineIndex::var(x) + palo_ir::AffineIndex::var(rx);
        let ld = b.load_expr(input, vec![ix]);
        b.accumulate(out, &[x], ld);
        let nest = b.build().unwrap();
        let fp = Footprints::new(&nest, 64);
        // shape 0 = out, 1 = in
        let e = fp.extents(1, &[8, 3]);
        assert_eq!(e, vec![10.0]);
    }

    #[test]
    fn uses_var_and_last_dim() {
        let fp = Footprints::new(&matmul(64), 64);
        // B[k][j]: uses k and j; last dim uses j.
        assert!(fp.uses_var(2, 2));
        assert!(fp.uses_var(2, 1));
        assert!(!fp.uses_var(2, 0));
        assert!(fp.last_dim_uses(2, 1));
        assert!(!fp.last_dim_uses(2, 2));
    }
}
