//! The classification step (Figure 2 of the paper).

use palo_ir::NestInfo;
use serde::{Deserialize, Serialize};

/// Outcome of classifying a loop-nest statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Class {
    /// Input index sets differ from the output's: the nest carries
    /// temporal reuse and is handed to the temporal optimizer
    /// (Algorithm 2).
    Temporal,
    /// Same index sets but at least one array appears transposed: only
    /// self-spatial (cache-line) reuse exists; handed to the spatial
    /// optimizer (Algorithm 3).
    Spatial,
    /// Contiguous accesses only (including constant-offset stencils): any
    /// loop transformation would disturb the streaming prefetchers, so
    /// only parallelization/vectorization/NTI are applied.
    ContiguousOnly,
}

/// Classifies a statement per Figure 2.
///
/// The decision tree is:
/// 1. *diff indices?* — any input access whose index-variable set differs
///    from the output's ⇒ [`Class::Temporal`];
/// 2. *transpose?* — any input ordered oppositely to the output ⇒
///    [`Class::Spatial`];
/// 3. otherwise ⇒ [`Class::ContiguousOnly`] (this is also where stencil
///    kernels land, per the paper's discussion of [Kamil et al., MSP'05]).
pub fn classify(info: &NestInfo) -> Class {
    if info.has_temporal_reuse() {
        Class::Temporal
    } else if info.has_transposed_input() {
        Class::Spatial
    } else {
        Class::ContiguousOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{AffineIndex, BinOp, DType, Expr, LoopNest, NestBuilder, NestInfo};

    fn classify_nest(nest: &LoopNest) -> Class {
        classify(&NestInfo::analyze(nest))
    }

    #[test]
    fn matmul_is_temporal() {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", 32);
        let j = b.var("j", 32);
        let k = b.var("k", 32);
        let a = b.array("A", &[32, 32]);
        let bm = b.array("B", &[32, 32]);
        let c = b.array("C", &[32, 32]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        assert_eq!(classify_nest(&b.build().unwrap()), Class::Temporal);
    }

    #[test]
    fn transpose_is_spatial() {
        let mut b = NestBuilder::new("tp", DType::F32);
        let y = b.var("y", 32);
        let x = b.var("x", 32);
        let a = b.array("A", &[32, 32]);
        let out = b.array("out", &[32, 32]);
        let ld = b.load(a, &[x, y]);
        b.store(out, &[y, x], ld);
        assert_eq!(classify_nest(&b.build().unwrap()), Class::Spatial);
    }

    #[test]
    fn transpose_and_mask_is_spatial() {
        let mut b = NestBuilder::new("tpm", DType::I32);
        let y = b.var("y", 32);
        let x = b.var("x", 32);
        let a = b.array("A", &[32, 32]);
        let m = b.array("B", &[32, 32]);
        let out = b.array("out", &[32, 32]);
        let rhs = Expr::bin(BinOp::And, b.load(a, &[x, y]), b.load(m, &[y, x]));
        b.store(out, &[y, x], rhs);
        assert_eq!(classify_nest(&b.build().unwrap()), Class::Spatial);
    }

    #[test]
    fn copy_and_mask_are_contiguous_only() {
        let mut b = NestBuilder::new("mask", DType::I32);
        let i = b.var("i", 32);
        let j = b.var("j", 32);
        let a = b.array("A", &[32, 32]);
        let m = b.array("M", &[32, 32]);
        let out = b.array("out", &[32, 32]);
        let rhs = Expr::bin(BinOp::And, b.load(a, &[i, j]), b.load(m, &[i, j]));
        b.store(out, &[i, j], rhs);
        assert_eq!(classify_nest(&b.build().unwrap()), Class::ContiguousOnly);
    }

    #[test]
    fn stencil_is_contiguous_only() {
        // Per the paper (and [9]), stencils should not be tiled: uniform
        // access patterns are already covered by the prefetchers.
        let mut b = NestBuilder::new("blur", DType::F32);
        let i = b.var("i", 32);
        let j = b.var("j", 30);
        let src = b.array("src", &[32, 32]);
        let dst = b.array("dst", &[32, 32]);
        let c0 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j)]);
        let c1 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j) + 1]);
        let c2 = b.load_expr(src, vec![AffineIndex::var(i), AffineIndex::var(j) + 2]);
        b.store(dst, &[i, j], c0 + c1 + c2);
        assert_eq!(classify_nest(&b.build().unwrap()), Class::ContiguousOnly);
    }

    #[test]
    fn syrk_is_temporal() {
        let mut b = NestBuilder::new("syrk", DType::F32);
        let i = b.var("i", 32);
        let j = b.var("j", 32);
        let k = b.var("k", 32);
        let a = b.array("A", &[32, 32]);
        let c = b.array("C", &[32, 32]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(a, &[j, k]));
        assert_eq!(classify_nest(&b.build().unwrap()), Class::Temporal);
    }
}
