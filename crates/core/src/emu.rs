//! Algorithm 1: the cache-emulation bound on tile dimensions.
//!
//! The algorithm replays the footprint of a growing tile — `maxTi` rows of
//! `row_len` elements spaced `row_stride` elements apart — against a
//! set-indexed model of one cache level, and stops as soon as adding the
//! next row would overflow some set's (thread-effective) associativity,
//! i.e. as soon as an interference miss becomes possible.
//!
//! Prefetcher awareness, per the paper (generalized to the target's
//! declared prefetcher descriptions):
//! * when bounding against the **L1**, every row is inflated by the
//!   level's prefetcher demand-side inflation — one line for the
//!   next-line streamer (which fetches the successor of each row's last
//!   line, `Ti−1 = ⌈max(Ti−1 + lc, 2·lc) / lc⌉`) and the adjacent-pair
//!   unit, zero for a prefetch-less L1;
//! * when bounding against the **L2**, the set count is halved (capacity
//!   reserved for constant-stride prefetch streams) and, for every line
//!   within `L2maxpref` of the demand frontier, the `L2pref` lines a
//!   stride prefetcher would fetch are tested against set fullness too.

use crate::search::{MemoTable, SearchCounters};
use palo_arch::CacheLevel;
use std::sync::OnceLock;

/// Inputs of [`emu`] (the parameter list of Algorithm 1).
#[derive(Debug, Clone)]
pub struct EmuParams<'a> {
    /// Geometry of the cache level being emulated.
    pub level: &'a CacheLevel,
    /// Data type size in bytes (`DTS`).
    pub dts: usize,
    /// Row length in elements (`Ti−1`, the already-chosen inner tile
    /// width).
    pub row_len: usize,
    /// Distance between consecutive rows in elements (`Bi`, the leading
    /// dimension of the walked array).
    pub row_stride: usize,
    /// Hardware threads sharing the level (`Nthreads`) — divides the
    /// effective associativity.
    pub threads: usize,
    /// Start address in elements (`addr`).
    pub addr: usize,
    /// Stride-prefetch degree to test (`L2pref`; 0 disables).
    pub l2_pref: usize,
    /// Maximum prefetch distance in lines (`L2maxpref`).
    pub l2_max_pref: usize,
    /// Use the L2 variant (halved sets, stride-prefetch tests) instead of
    /// the L1 variant (next-line row inflation).
    pub for_l2: bool,
    /// Extra lines the L1 variant books per row — the demand-side
    /// inflation of the level's own prefetcher (1 for the next-line
    /// streamer and the adjacent-pair unit, 0 for a prefetch-less L1).
    /// Ignored by the L2 variant.
    pub inflate_lines: usize,
    /// Halve the effective set count in the L2 variant (ablation switch;
    /// the paper always halves).
    pub halve_l2_sets: bool,
    /// Upper cap on the returned bound (the problem size of the dimension
    /// being bounded).
    pub cap: usize,
}

/// Runs Algorithm 1 and returns `maxTi`: the largest number of tile rows
/// guaranteed not to conflict in the emulated level.
///
/// The result is always at least 1 (a single row that itself overflows
/// the cache is left to the working-set checks) and at most `cap`.
pub fn emu(p: &EmuParams<'_>) -> usize {
    let lc = (p.level.line_size / p.dts).max(1);
    let mut nsets = p.level.num_sets().max(1);
    let eff_ways = (p.level.associativity / p.threads.max(1)).max(1);

    // Row length in lines, with the L1 variant's per-strategy inflation
    // (`inflate_lines` extra lines per row; 1 reproduces the paper's
    // next-line formula `⌈max(Ti−1 + lc, 2·lc) / lc⌉`).
    let lines_per_row = if p.for_l2 {
        if p.halve_l2_sets {
            nsets = (nsets / 2).max(1);
        }
        p.row_len.max(lc).div_ceil(lc)
    } else {
        let inflate = p.inflate_lines;
        (p.row_len + inflate * lc).max((1 + inflate) * lc).div_ceil(lc)
    };

    let mut emucache = vec![0u32; nsets];
    let mut max_ti = 0usize;
    let mut fetched = 0usize; // `s` in the paper

    'grow: while max_ti < p.cap {
        let row_start_line = (p.addr + max_ti * p.row_stride) / lc;
        // Set-phase bulk path for rows spanning at least one full set
        // cycle (same arithmetic as the cachesim's run engine): the row
        // deposits `lines_per_row / nsets` lines into *every* set plus one
        // more into the `rem` sets starting at the row's set phase.
        // Whether the scalar loop would break somewhere inside the row
        // depends only on each set's total, so one O(nsets) sweep replaces
        // the O(lines_per_row) walk. (The stride-prefetch tests depend on
        // the in-row order via `fetched`, so they stay scalar.)
        if p.l2_pref == 0 && lines_per_row >= nsets {
            let whole = (lines_per_row / nsets) as u32;
            let rem = lines_per_row % nsets;
            let phase = row_start_line % nsets;
            for (set, count) in emucache.iter_mut().enumerate() {
                let extra = u32::from((set + nsets - phase) % nsets < rem);
                if *count + whole + extra > eff_ways as u32 {
                    // A partial row update is fine: the scalar loop also
                    // leaves earlier lines booked when it breaks mid-row.
                    break 'grow;
                }
                *count += whole + extra;
            }
            fetched += lines_per_row;
            max_ti += 1;
            continue;
        }
        for i in 0..lines_per_row {
            let set = (row_start_line + i) % nsets;
            if emucache[set] >= eff_ways as u32 {
                break 'grow;
            }
            emucache[set] += 1;
            fetched += 1;

            // Lines a stride prefetcher would inject near the frontier.
            if p.l2_pref > 0 && fetched.saturating_sub(i) <= p.l2_max_pref {
                for q in 1..=p.l2_pref {
                    let pset = (row_start_line + i + q) % nsets;
                    if emucache[pset] >= eff_ways as u32 {
                        break 'grow;
                    }
                }
            }
        }
        max_ti += 1;
    }
    max_ti.max(1)
}

/// Canonical memo key of one [`emu`] invocation: exactly the inputs the
/// replay reads. The cache-level *geometry* stands in for the level
/// itself, so equal levels from different `Architecture` clones share
/// entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmuKey {
    num_sets: usize,
    associativity: usize,
    line_size: usize,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    addr: usize,
    l2_pref: usize,
    l2_max_pref: usize,
    for_l2: bool,
    inflate_lines: usize,
    halve_l2_sets: bool,
    cap: usize,
}

impl EmuKey {
    /// The canonical key of `p`.
    pub fn of(p: &EmuParams<'_>) -> Self {
        EmuKey {
            num_sets: p.level.num_sets(),
            associativity: p.level.associativity,
            line_size: p.level.line_size,
            dts: p.dts,
            row_len: p.row_len,
            row_stride: p.row_stride,
            threads: p.threads,
            addr: p.addr,
            l2_pref: p.l2_pref,
            l2_max_pref: p.l2_max_pref,
            for_l2: p.for_l2,
            inflate_lines: p.inflate_lines,
            halve_l2_sets: p.halve_l2_sets,
            cap: p.cap,
        }
    }
}

/// The process-wide `emu()` memo: Algorithm 1 is a pure function of
/// [`EmuKey`], so bounds computed for one candidate (or one pipeline
/// invocation) are reused by every later one.
fn emu_memo() -> &'static MemoTable<EmuKey, usize> {
    static MEMO: OnceLock<MemoTable<EmuKey, usize>> = OnceLock::new();
    MEMO.get_or_init(|| MemoTable::new(16))
}

/// [`emu`] through the process-wide memo table, recording hits/misses in
/// `counters`.
pub fn emu_cached(p: &EmuParams<'_>, counters: &SearchCounters) -> usize {
    emu_memo().get_or_compute(
        EmuKey::of(p),
        &counters.emu_memo_hits,
        &counters.emu_memo_misses,
        || emu(p),
    )
}

/// Convenience wrapper: the L1 bound for a tile whose rows are `row_len`
/// elements long in an array with leading dimension `row_stride`.
pub fn emu_l1(
    level: &CacheLevel,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    cap: usize,
) -> usize {
    emu(&l1_params(level, dts, row_len, row_stride, threads, cap))
}

/// The [`EmuParams`] of the L1 variant (next-line row inflation).
pub fn l1_params(
    level: &CacheLevel,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    cap: usize,
) -> EmuParams<'_> {
    base_params(level, dts, row_len, row_stride, threads, cap)
}

/// Shared base of the two parameter builders: the L1 defaults, which the
/// L2 variant overrides field-wise (`halve_l2_sets` is unused by the L1
/// variant). The row inflation comes from the level's own prefetcher
/// description, so a prefetch-less L1 books no successor lines.
fn base_params(
    level: &CacheLevel,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    cap: usize,
) -> EmuParams<'_> {
    EmuParams {
        level,
        dts,
        row_len,
        row_stride,
        threads,
        addr: 0,
        l2_pref: 0,
        l2_max_pref: 0,
        for_l2: false,
        inflate_lines: level.prefetcher.line_inflation(),
        halve_l2_sets: true,
        cap,
    }
}

/// Convenience wrapper: the L2 bound, testing stride-prefetch injections.
#[allow(clippy::too_many_arguments)]
pub fn emu_l2(
    level: &CacheLevel,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    l2_pref: usize,
    l2_max_pref: usize,
    halve_l2_sets: bool,
    cap: usize,
) -> usize {
    emu(&l2_params(
        level,
        dts,
        row_len,
        row_stride,
        threads,
        l2_pref,
        l2_max_pref,
        halve_l2_sets,
        cap,
    ))
}

/// The [`EmuParams`] of the L2 variant (halved sets, stride-prefetch
/// tests).
#[allow(clippy::too_many_arguments)]
pub fn l2_params(
    level: &CacheLevel,
    dts: usize,
    row_len: usize,
    row_stride: usize,
    threads: usize,
    l2_pref: usize,
    l2_max_pref: usize,
    halve_l2_sets: bool,
    cap: usize,
) -> EmuParams<'_> {
    EmuParams {
        l2_pref,
        l2_max_pref,
        for_l2: true,
        halve_l2_sets,
        ..base_params(level, dts, row_len, row_stride, threads, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;

    fn l1() -> palo_arch::CacheLevel {
        presets::intel_i7_5930k().l1().clone()
    }

    fn l2() -> palo_arch::CacheLevel {
        presets::intel_i7_5930k().l2().clone()
    }

    #[test]
    fn small_rows_allow_many_with_coprime_stride() {
        // 64-element f32 rows (16 lines + 1 prefetch line) in an array
        // whose leading dimension is *not* a multiple of the set cycle.
        // L1: 64 sets, 8 ways = 512 lines.
        let bound = emu_l1(&l1(), 4, 64, 2048 + 16, 1, 4096);
        assert!(bound > 8, "bound {bound}");
        assert!(bound <= 512);
    }

    #[test]
    fn power_of_two_leading_dim_bounds_at_associativity() {
        // A 2048-wide f32 array has a row stride of 128 lines = exactly
        // two set cycles: every row maps to the same sets, so at most
        // `ways` rows fit — the conflict Algorithm 1 exists to catch.
        let bound = emu_l1(&l1(), 4, 64, 2048, 1, 4096);
        assert!(bound <= 8, "bound {bound}");
    }

    #[test]
    fn power_of_two_stride_conflicts_early() {
        // Rows spaced exactly one set-cycle apart all map to the same
        // sets: with 8 ways, only ~8 rows fit.
        // L1: 64 sets * 16 f32/line = 1024 elements per way-cycle.
        let conflict_stride = 64 * 16;
        let b_conflict = emu_l1(&l1(), 4, 16, conflict_stride, 1, 4096);
        let b_coprime = emu_l1(&l1(), 4, 16, conflict_stride + 16, 1, 4096);
        assert!(
            b_conflict < b_coprime,
            "conflicting stride should bound tighter: {b_conflict} vs {b_coprime}"
        );
        assert!(b_conflict <= 8, "8-way cache, same-set rows: {b_conflict}");
    }

    #[test]
    fn more_threads_tighten_the_bound() {
        let b1 = emu_l1(&l1(), 4, 64, 2048 + 16, 1, 4096);
        let b2 = emu_l1(&l1(), 4, 64, 2048 + 16, 2, 4096);
        assert!(b2 <= b1, "{b2} vs {b1}");
    }

    #[test]
    fn halved_l2_sets_tighten_the_bound() {
        let full = emu_l2(&l2(), 4, 256, 2048 + 16, 1, 2, 20, false, 1 << 20);
        let halved = emu_l2(&l2(), 4, 256, 2048 + 16, 1, 2, 20, true, 1 << 20);
        assert!(halved <= full, "{halved} vs {full}");
        assert!(halved >= 1);
    }

    #[test]
    fn cap_respected() {
        assert_eq!(emu_l1(&l1(), 4, 8, 4096 + 16, 1, 5), 5);
    }

    #[test]
    fn result_is_at_least_one() {
        // A row wider than the whole cache still returns 1.
        let bound = emu_l1(&l1(), 4, 1 << 20, 1 << 20, 2, 4096);
        assert!(bound >= 1);
    }

    #[test]
    fn l1_variant_inflates_rows_for_next_line_prefetch() {
        // With rows of exactly one line, the L1 variant books 2 lines per
        // row (demand + next-line) while the L2 variant books 1; with a
        // same-set stride the L1 bound must be at most the L2 bound.
        let stride = 64 * 16;
        let b_l1 = emu_l1(&l1(), 4, 16, stride, 1, 4096);
        let b_l2 = emu(&EmuParams {
            level: &l1(),
            dts: 4,
            row_len: 16,
            row_stride: stride,
            threads: 1,
            addr: 0,
            l2_pref: 0,
            l2_max_pref: 0,
            for_l2: true,
            inflate_lines: 0,
            halve_l2_sets: false,
            cap: 4096,
        });
        assert!(b_l1 <= b_l2, "{b_l1} vs {b_l2}");
    }

    #[test]
    fn prefetchless_l1_books_no_successor_lines() {
        // With the prefetcher stripped from the level description, the L1
        // variant books exactly the demand lines: one-line rows walking
        // every set fill the whole cache instead of half of it.
        let mut bare = l1();
        bare.prefetcher = palo_arch::PrefetcherConfig::None;
        assert_eq!(bare.prefetcher.line_inflation(), 0);
        let stride = 64 * 16 + 16; // 65 lines, co-prime with 64 sets
        let b_next_line = emu_l1(&l1(), 4, 16, stride, 1, 4096);
        let b_bare = emu_l1(&bare, 4, 16, stride, 1, 4096);
        assert!(b_bare >= 2 * b_next_line - 1, "{b_bare} vs {b_next_line}");
    }

    #[test]
    fn cached_emu_matches_uncached_and_records_hits() {
        use crate::search::SearchCounters;
        use std::sync::atomic::Ordering;
        let level = l1();
        let counters = SearchCounters::default();
        // An address nothing else in the test suite uses, so the second
        // lookup is a guaranteed hit regardless of test interleaving.
        let mut p = l1_params(&level, 4, 48, 4096 + 48, 1, 9999);
        p.addr = 0xA110C;
        let direct = emu(&p);
        assert_eq!(emu_cached(&p, &counters), direct);
        assert_eq!(emu_cached(&p, &counters), direct);
        assert!(counters.emu_memo_hits.load(Ordering::Relaxed) >= 1);
        assert!(counters.emu_memo_misses.load(Ordering::Relaxed) >= 1);
    }

    /// The pre-bulk scalar replay, kept as the oracle for the set-phase
    /// bulk path (no prefetch tests: the bulk path never takes those).
    fn emu_scalar_reference(p: &EmuParams<'_>) -> usize {
        let lc = (p.level.line_size / p.dts).max(1);
        let mut nsets = p.level.num_sets().max(1);
        let eff_ways = (p.level.associativity / p.threads.max(1)).max(1);
        let lines_per_row = if p.for_l2 {
            if p.halve_l2_sets {
                nsets = (nsets / 2).max(1);
            }
            p.row_len.max(lc).div_ceil(lc)
        } else {
            (p.row_len + lc).max(2 * lc).div_ceil(lc)
        };
        let mut emucache = vec![0u32; nsets];
        let mut max_ti = 0usize;
        'grow: while max_ti < p.cap {
            let row_start_line = (p.addr + max_ti * p.row_stride) / lc;
            for i in 0..lines_per_row {
                let set = (row_start_line + i) % nsets;
                if emucache[set] >= eff_ways as u32 {
                    break 'grow;
                }
                emucache[set] += 1;
            }
            max_ti += 1;
        }
        max_ti.max(1)
    }

    #[test]
    fn bulk_set_phase_path_matches_the_scalar_replay() {
        // Rows wider than a set cycle take the bulk path; sweep odd
        // geometry (non-cycle-aligned strides, offset starts, both
        // variants) and demand bit-identical bounds.
        let level = l1(); // 64 sets, 8 ways, 64 B lines
        let nsets_cycle = 64 * 16; // elements per set cycle for f32
        for &row_len in &[nsets_cycle, nsets_cycle + 5, 3 * nsets_cycle + 7] {
            for &stride in &[row_len, row_len + 16, 2 * row_len + 48] {
                for &addr in &[0usize, 12 * 16] {
                    for &for_l2 in &[false, true] {
                        let mut p = base_params(&level, 4, row_len, stride, 1, 4096);
                        p.addr = addr;
                        p.for_l2 = for_l2;
                        assert_eq!(
                            emu(&p),
                            emu_scalar_reference(&p),
                            "row_len {row_len} stride {stride} addr {addr} l2 {for_l2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stride_prefetch_tests_tighten_l2_bound() {
        // Prefetch injections can only trigger conflicts earlier.
        let with = emu_l2(&l2(), 4, 512, 512 + 16, 1, 2, 20, true, 1 << 20);
        let without = emu_l2(&l2(), 4, 512, 512 + 16, 1, 0, 0, true, 1 << 20);
        assert!(with <= without, "{with} vs {without}");
    }
}
