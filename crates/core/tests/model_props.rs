//! Property tests over the analytical model's building blocks.

use palo_arch::presets;
use palo_core::{emu, EmuParams, Footprints};
use palo_ir::{DType, LoopNest, NestBuilder};
use proptest::prelude::*;

fn matmul(n: usize) -> LoopNest {
    let mut b = NestBuilder::new("mm", DType::F32);
    let i = b.var("i", n);
    let j = b.var("j", n);
    let k = b.var("k", n);
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Footprint measures are consistent: rows ≤ lines ≤ elems, and the
    /// prefetch-discounted miss count never exceeds the undiscounted one.
    #[test]
    fn footprint_measure_ordering(
        ti in 1usize..64, tj in 1usize..64, tk in 1usize..64,
    ) {
        let nest = matmul(64);
        let fp = Footprints::new(&nest, 64);
        let sizes = [ti, tj, tk];
        for a in 0..fp.shapes().len() {
            let rows = fp.rows(a, &sizes);
            let lines = fp.lines(a, &sizes);
            let elems = fp.elems(a, &sizes);
            prop_assert!(rows <= lines + 1e-9);
            prop_assert!(lines <= elems + 1e-9);
            prop_assert!(fp.misses(a, &sizes, true) <= fp.misses(a, &sizes, false) + 1e-9);
        }
    }

    /// Footprints grow monotonically with every tile dimension.
    #[test]
    fn footprint_monotone_in_tile(
        ti in 1usize..32, tj in 1usize..32, tk in 1usize..32,
        grow in 0usize..3,
    ) {
        let nest = matmul(64);
        let fp = Footprints::new(&nest, 64);
        let small = [ti, tj, tk];
        let mut big = small;
        big[grow] += 1;
        for a in 0..fp.shapes().len() {
            prop_assert!(fp.elems(a, &small) <= fp.elems(a, &big) + 1e-9);
            prop_assert!(fp.lines(a, &small) <= fp.lines(a, &big) + 1e-9);
            prop_assert!(fp.rows(a, &small) <= fp.rows(a, &big) + 1e-9);
        }
    }

    /// Algorithm 1: the bound never exceeds the cap, is at least 1, and
    /// shrinks (weakly) as rows get longer.
    #[test]
    fn emu_bound_monotone_in_row_length(
        row_len in 1usize..256,
        stride_extra in 1usize..64,
        cap in 1usize..2048,
    ) {
        let arch = presets::intel_i7_5930k();
        let mk = |len: usize| {
            emu(&EmuParams {
                level: arch.l1(),
                dts: 4,
                row_len: len,
                row_stride: 2048 + stride_extra,
                threads: 1,
                addr: 0,
                l2_pref: 0,
                l2_max_pref: 0,
                for_l2: false,
                inflate_lines: 1,
                halve_l2_sets: true,
                cap,
            })
        };
        let b1 = mk(row_len);
        let b2 = mk(row_len + 16);
        prop_assert!(b1 >= 1 && b1 <= cap);
        prop_assert!(b2 <= b1, "longer rows must not loosen the bound: {b2} > {b1}");
    }

    /// The emitted schedule of the optimizer always lowers, for any
    /// rectangular matmul-like shape.
    #[test]
    fn optimizer_schedules_always_lower(
        ni in 8usize..96, nj in 8usize..96, nk in 8usize..96,
    ) {
        let mut b = NestBuilder::new("pmm", DType::F32);
        let i = b.var("i", ni);
        let j = b.var("j", nj);
        let k = b.var("k", nk);
        let a = b.array("A", &[ni, nk]);
        let bm = b.array("B", &[nk, nj]);
        let c = b.array("C", &[ni, nj]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        let nest = b.build().expect("valid");
        for arch in [presets::intel_i7_6700(), presets::arm_cortex_a15()] {
            let d = palo_core::Optimizer::new(&arch).optimize(&nest);
            let lowered = d.schedule().lower(&nest);
            prop_assert!(lowered.is_ok(), "{:?} on {}", lowered.err(), arch.name);
            // tiles are within bounds
            for (v, &t) in d.tile.iter().enumerate() {
                prop_assert!(t >= 1 && t <= nest.extents()[v]);
            }
        }
    }
}
