//! The search engine's two headline guarantees, checked end-to-end on the
//! paper's full 12-kernel suite (Table 4):
//!
//! 1. **Bit-determinism** — the winning schedule and its predicted cost
//!    are identical (to the bit) for 1, 2 and N workers, with and without
//!    pruning/memoization. The engine's total order makes the minimum a
//!    property of the candidate *set*, not of the visit order.
//! 2. **Pruning/memo soundness** — the default engine (branch-and-bound
//!    plus memo tables) returns exactly what the exhaustive
//!    no-prune/no-memo sweep returns: same winner, same cost bits.
//!
//! The suite is built at reduced sizes so the exhaustive reference sweep
//! stays fast; the candidate spaces are still thousands-deep for the
//! temporal kernels.

use palo_arch::presets;
use palo_core::{ModelKind, Optimizer, OptimizerConfig, SearchOptions};
use palo_ir::LoopNest;
use palo_suite::Benchmark;

/// Every kernel of the suite at a size small enough for an exhaustive
/// reference sweep (3mm contributes its three stages).
fn small_suite() -> Vec<(String, LoopNest)> {
    let mut nests = Vec::new();
    for b in Benchmark::all() {
        let size = match b {
            Benchmark::Convlayer => 16,
            Benchmark::Doitgen => 32,
            Benchmark::Tpm | Benchmark::Tp | Benchmark::Copy | Benchmark::Mask => 256,
            _ => 128,
        };
        let built = b.build(size).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        for (stage, nest) in built.into_iter().enumerate() {
            nests.push((format!("{}[{stage}]", b.name()), nest));
        }
    }
    assert_eq!(nests.len(), 14); // 12 kernels, 3mm has 3 stages
    nests
}

fn engine_config(threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        search: SearchOptions { threads: Some(threads), prune: true, memo: true },
        ..OptimizerConfig::default()
    }
}

#[test]
fn worker_count_never_changes_the_schedule() {
    let arch = presets::intel_i7_5930k();
    for (name, nest) in small_suite() {
        let reference = Optimizer::with_config(&arch, engine_config(1)).optimize(&nest);
        for threads in [2, 5] {
            let parallel =
                Optimizer::with_config(&arch, engine_config(threads)).optimize(&nest);
            assert_eq!(parallel, reference, "{name} with {threads} workers diverged");
            assert_eq!(
                parallel.predicted_cost.to_bits(),
                reference.predicted_cost.to_bits(),
                "{name}: cost not bit-identical with {threads} workers"
            );
        }
    }
}

#[test]
fn pruned_memoized_search_is_exhaustive_search() {
    // Both target machines of the paper, so the L2-prefetcher-sensitive
    // terms are exercised in both configurations.
    for arch in [presets::intel_i7_5930k(), presets::intel_i7_6700()] {
        for (name, nest) in small_suite() {
            let exhaustive = Optimizer::with_config(
                &arch,
                OptimizerConfig {
                    search: SearchOptions::exhaustive(),
                    ..OptimizerConfig::default()
                },
            )
            .optimize(&nest);
            let engine = Optimizer::with_config(&arch, engine_config(4)).optimize(&nest);
            assert_eq!(engine, exhaustive, "{name}: pruning/memo changed the winner");
            assert_eq!(
                engine.predicted_cost.to_bits(),
                exhaustive.predicted_cost.to_bits(),
                "{name}: pruning/memo changed the cost"
            );
        }
    }
}

#[test]
fn worker_count_never_changes_the_schedule_for_any_analytical_model() {
    // The determinism guarantee is per-CostModel: TSS and TTS run through
    // the same engine and must be just as worker-count-independent.
    let arch = presets::intel_i7_5930k();
    for kind in [ModelKind::Tss, ModelKind::Tts] {
        for (name, nest) in small_suite() {
            let config = |threads| OptimizerConfig { model: kind, ..engine_config(threads) };
            let reference = Optimizer::with_config(&arch, config(1)).optimize(&nest);
            for threads in [2, 5] {
                let parallel = Optimizer::with_config(&arch, config(threads)).optimize(&nest);
                assert_eq!(
                    parallel, reference,
                    "{name} under {kind:?} with {threads} workers diverged"
                );
                assert_eq!(
                    parallel.predicted_cost.to_bits(),
                    reference.predicted_cost.to_bits(),
                    "{name} under {kind:?}: cost not bit-identical with {threads} workers"
                );
            }
        }
    }
}

#[test]
fn worker_count_never_changes_the_schedule_for_the_simulated_model() {
    // Each SimulatedModel evaluation traces a full kernel, so this runs
    // on a tiny two-kernel suite (one temporal, one spatial) with a
    // thinned candidate grid (ModelKind::Simulated's effective config).
    let arch = presets::intel_i7_5930k();
    let suite = [
        ("matmul", Benchmark::Matmul.build(32).unwrap().remove(0)),
        ("tp", Benchmark::Tp.build(64).unwrap().remove(0)),
    ];
    for (name, nest) in suite {
        let config =
            |threads| OptimizerConfig { model: ModelKind::Simulated, ..engine_config(threads) };
        let reference = Optimizer::with_config(&arch, config(1)).optimize(&nest);
        for threads in [2, 5] {
            let parallel = Optimizer::with_config(&arch, config(threads)).optimize(&nest);
            assert_eq!(parallel, reference, "{name} (sim) with {threads} workers diverged");
            assert_eq!(
                parallel.predicted_cost.to_bits(),
                reference.predicted_cost.to_bits(),
                "{name} (sim): cost not bit-identical with {threads} workers"
            );
        }
    }
}

#[test]
fn engine_does_real_work_on_the_suite() {
    // The counters behind BENCH_search.json must show the engine actually
    // pruning and memoizing on a temporal kernel, not just agreeing by
    // doing nothing.
    let arch = presets::intel_i7_5930k();
    let nest = &Benchmark::Matmul.build(256).unwrap()[0];
    let (_, stats) = Optimizer::with_config(&arch, engine_config(2)).optimize_with_stats(nest);
    assert!(stats.candidates_evaluated > 0, "no candidates evaluated");
    assert!(stats.candidates_pruned > 0, "branch-and-bound never fired");
    assert!(stats.memo_hits > 0, "footprint memo never hit");
    assert!(stats.workers >= 1);
}
