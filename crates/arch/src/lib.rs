//! Architecture descriptions for the palo optimizer and cache simulator.
//!
//! This crate models the architecture-specific parameters from Table 1 of
//! *Loop Transformations Leveraging Hardware Prefetching* (CGO'18):
//! per-level cache geometry (`LiCLS`, `Liway`, `LiCS`), core counts
//! (`NCores`, `Nthreads`), SIMD width, and the hardware prefetcher
//! configuration (L1 next-line streamer and L2 constant-stride prefetcher
//! with a degree and a maximum distance).
//!
//! The three experimental platforms of Table 3 (Intel i7-6700,
//! Intel i7-5930K, ARM Cortex-A15) are available as [`presets`].
//!
//! # Examples
//!
//! ```
//! use palo_arch::presets;
//!
//! let arch = presets::intel_i7_5930k();
//! assert_eq!(arch.l1().size_bytes, 32 * 1024);
//! assert_eq!(arch.cores, 6);
//! assert_eq!(arch.l1().line_size, 64);
//! ```

mod cache;
mod cost;
pub mod presets;

pub use cache::{CacheLevel, PrefetcherConfig, SharingScope, WriteAllocate};
pub use cost::TimingModel;

use serde::{Deserialize, Serialize};

/// A full description of a target architecture.
///
/// Holds the cache hierarchy (ordered from L1 outward), core/thread counts
/// and the SIMD vector width, i.e. every architecture-specific parameter
/// used by the paper's optimization flow (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Human-readable platform name, e.g. `"Intel i7-5930K"`.
    pub name: String,
    /// Cache levels ordered from the closest to the core (L1) outward.
    /// Must contain at least two levels (L1 and L2).
    pub caches: Vec<CacheLevel>,
    /// Number of physical cores (`NCores`).
    pub cores: usize,
    /// Hardware threads per core (`Nthreads`), e.g. 2 with hyper-threading.
    pub threads_per_core: usize,
    /// Native SIMD vector width in bytes (e.g. 32 for AVX2, 16 for NEON).
    pub vector_bytes: usize,
    /// Whether the ISA supports stores with non-temporal hints
    /// (`movntps`/`movntdq` on x86). ARMv7 NEON does not.
    pub supports_nt_stores: bool,
    /// Timing parameters used to convert simulated events into time.
    pub timing: TimingModel,
}

impl Architecture {
    /// The L1 data cache description.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no cache levels (which
    /// [`Architecture::validate`] rejects).
    pub fn l1(&self) -> &CacheLevel {
        &self.caches[0]
    }

    /// The L2 cache description.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has fewer than two cache levels.
    pub fn l2(&self) -> &CacheLevel {
        &self.caches[1]
    }

    /// The last-level (shared) cache, if the platform has more than two
    /// levels. Returns `None` on two-level hierarchies such as the
    /// Cortex-A15.
    pub fn l3(&self) -> Option<&CacheLevel> {
        if self.caches.len() > 2 {
            self.caches.last()
        } else {
            None
        }
    }

    /// Total number of hardware threads (`NCores * Nthreads`).
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Native vector lanes for a data type of `dts` bytes
    /// (e.g. 8 lanes for f32 under AVX2).
    pub fn vector_lanes(&self, dts: usize) -> usize {
        (self.vector_bytes / dts).max(1)
    }

    /// Checks internal consistency of the description.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the hierarchy is empty, a level
    /// has zero geometry, line sizes shrink going outward, or core/thread
    /// counts are zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.caches.len() < 2 {
            return Err(format!(
                "architecture {:?} must describe at least L1 and L2",
                self.name
            ));
        }
        for (i, c) in self.caches.iter().enumerate() {
            c.validate().map_err(|e| format!("cache level L{}: {e}", i + 1))?;
        }
        for w in self.caches.windows(2) {
            if w[1].line_size < w[0].line_size {
                return Err("outer cache line size smaller than inner".into());
            }
            if w[1].size_bytes < w[0].size_bytes {
                return Err("outer cache smaller than inner".into());
            }
        }
        if self.cores == 0 || self.threads_per_core == 0 {
            return Err("core/thread counts must be nonzero".into());
        }
        if self.vector_bytes == 0 || !self.vector_bytes.is_power_of_two() {
            return Err("vector width must be a nonzero power of two".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for arch in
            [presets::intel_i7_6700(), presets::intel_i7_5930k(), presets::arm_cortex_a15()]
        {
            arch.validate().unwrap_or_else(|e| panic!("{}: {e}", arch.name));
        }
    }

    #[test]
    fn l3_presence_matches_platforms() {
        assert!(presets::intel_i7_6700().l3().is_some());
        assert!(presets::intel_i7_5930k().l3().is_some());
        assert!(presets::arm_cortex_a15().l3().is_none());
    }

    #[test]
    fn table3_parameters() {
        // Cross-check against Table 3 of the paper.
        let p = presets::intel_i7_5930k();
        assert_eq!(p.l1().line_size, 64);
        assert_eq!(p.l1().associativity, 8);
        assert_eq!(p.l1().size_bytes, 32 * 1024);
        assert_eq!(p.l2().associativity, 8);
        assert_eq!(p.l2().size_bytes, 256 * 1024);
        assert_eq!(p.cores, 6);
        assert_eq!(p.threads_per_core, 2);

        let p = presets::intel_i7_6700();
        assert_eq!(p.cores, 4);
        assert_eq!(p.threads_per_core, 2);

        let p = presets::arm_cortex_a15();
        assert_eq!(p.l1().associativity, 2);
        assert_eq!(p.l2().associativity, 16);
        assert_eq!(p.l2().size_bytes, 512 * 1024);
        assert_eq!(p.cores, 4);
        assert_eq!(p.threads_per_core, 1);
        assert!(!p.supports_nt_stores);
    }

    #[test]
    fn vector_lanes_round_down() {
        let arch = presets::intel_i7_6700();
        assert_eq!(arch.vector_lanes(4), 8); // AVX2 f32
        assert_eq!(arch.vector_lanes(8), 4); // AVX2 f64
        assert_eq!(arch.vector_lanes(64), 1); // never zero
    }

    #[test]
    fn validate_rejects_single_level() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1);
        assert!(arch.validate().is_err());
    }

    #[test]
    fn validate_rejects_shrinking_outer_cache() {
        let mut arch = presets::intel_i7_6700();
        arch.caches[1].size_bytes = 16 * 1024;
        assert!(arch.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut arch = presets::intel_i7_6700();
        arch.cores = 0;
        assert!(arch.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_vector_width() {
        let mut arch = presets::intel_i7_6700();
        arch.vector_bytes = 24;
        assert!(arch.validate().is_err());
    }
}
