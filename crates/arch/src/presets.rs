//! The three experimental platforms of the paper (Table 3).

use crate::cache::{CacheLevel, PrefetcherConfig, SharingScope, WriteAllocate};
use crate::cost::TimingModel;
use crate::Architecture;

/// Intel stride-prefetcher degree used throughout the paper (`L2pref`).
pub const INTEL_L2_PREF_DEGREE: usize = 2;
/// Intel maximum prefetch distance in lines (`L2maxpref`, "usually 20").
pub const INTEL_L2_MAX_PREF_DISTANCE: usize = 20;

fn intel_l1() -> CacheLevel {
    CacheLevel {
        line_size: 64,
        associativity: 8,
        size_bytes: 32 * 1024,
        sharing: SharingScope::Core,
        write_allocate: WriteAllocate::Allocate,
        prefetcher: PrefetcherConfig::NextLine,
        latency_cycles: 4.0,
    }
}

fn intel_l2() -> CacheLevel {
    CacheLevel {
        line_size: 64,
        associativity: 8,
        size_bytes: 256 * 1024,
        sharing: SharingScope::Core,
        write_allocate: WriteAllocate::Allocate,
        prefetcher: PrefetcherConfig::Stride {
            degree: INTEL_L2_PREF_DEGREE,
            max_distance: INTEL_L2_MAX_PREF_DISTANCE,
        },
        latency_cycles: 12.0,
    }
}

fn intel_l3(size_bytes: usize) -> CacheLevel {
    CacheLevel {
        line_size: 64,
        associativity: 16,
        size_bytes,
        sharing: SharingScope::Chip,
        write_allocate: WriteAllocate::Allocate,
        prefetcher: PrefetcherConfig::None,
        latency_cycles: 38.0,
    }
}

/// Intel i7-6700 (Skylake): 4 cores × 2 threads, 32 KiB 8-way L1,
/// 256 KiB 8-way L2, 8 MiB shared L3, AVX2.
pub fn intel_i7_6700() -> Architecture {
    Architecture {
        name: "Intel i7-6700".into(),
        caches: vec![intel_l1(), intel_l2(), intel_l3(8 * 1024 * 1024)],
        cores: 4,
        threads_per_core: 2,
        vector_bytes: 32,
        supports_nt_stores: true,
        timing: TimingModel {
            freq_ghz: 3.4,
            mem_latency_cycles: 210.0,
            mem_transfer_cycles: 12.0,
            compute_cycles_per_iter: 1.0,
            hit_exposed_fraction: 0.15,
        },
    }
}

/// Intel i7-5930K (Haswell-E): 6 cores × 2 threads, 32 KiB 8-way L1,
/// 256 KiB 8-way L2, 15 MiB shared L3, AVX2.
pub fn intel_i7_5930k() -> Architecture {
    Architecture {
        name: "Intel i7-5930K".into(),
        caches: vec![intel_l1(), intel_l2(), intel_l3(15 * 1024 * 1024)],
        cores: 6,
        threads_per_core: 2,
        vector_bytes: 32,
        supports_nt_stores: true,
        timing: TimingModel {
            freq_ghz: 3.5,
            mem_latency_cycles: 230.0,
            mem_transfer_cycles: 10.0,
            compute_cycles_per_iter: 1.0,
            hit_exposed_fraction: 0.15,
        },
    }
}

/// ARM Cortex-A15: 4 cores × 1 thread, 32 KiB 2-way L1, 512 KiB 16-way
/// *shared* L2, no L3, NEON (no non-temporal vector stores).
pub fn arm_cortex_a15() -> Architecture {
    Architecture {
        name: "ARM Cortex-A15".into(),
        caches: vec![
            CacheLevel {
                line_size: 64,
                associativity: 2,
                size_bytes: 32 * 1024,
                sharing: SharingScope::Core,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::NextLine,
                latency_cycles: 4.0,
            },
            CacheLevel {
                line_size: 64,
                associativity: 16,
                size_bytes: 512 * 1024,
                sharing: SharingScope::Chip,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::Stride { degree: 1, max_distance: 8 },
                latency_cycles: 21.0,
            },
        ],
        cores: 4,
        threads_per_core: 1,
        vector_bytes: 16,
        supports_nt_stores: false,
        timing: TimingModel {
            freq_ghz: 1.9,
            mem_latency_cycles: 250.0,
            mem_transfer_cycles: 30.0,
            compute_cycles_per_iter: 2.0,
            hit_exposed_fraction: 0.30,
        },
    }
}

/// All three Table-3 presets, in the paper's column order.
pub fn all() -> Vec<Architecture> {
    vec![intel_i7_5930k(), intel_i7_6700(), arm_cortex_a15()]
}

/// AMD Zen 2 (Ryzen 3700X-style): 8 cores × 2 threads, 32 KiB 8-way L1
/// with a next-line streamer, 512 KiB 8-way L2 driven by a
/// *stream-with-confirmation* engine (unit-stride only, 2 confirmations,
/// degree 4 up to 16 lines ahead), 16 MiB shared L3, AVX2.
pub fn amd_zen2() -> Architecture {
    Architecture {
        name: "AMD Zen 2".into(),
        caches: vec![
            CacheLevel {
                line_size: 64,
                associativity: 8,
                size_bytes: 32 * 1024,
                sharing: SharingScope::Core,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::NextLine,
                latency_cycles: 4.0,
            },
            CacheLevel {
                line_size: 64,
                associativity: 8,
                size_bytes: 512 * 1024,
                sharing: SharingScope::Core,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::Stream {
                    degree: 4,
                    max_distance: 16,
                    confirm: 2,
                },
                latency_cycles: 12.0,
            },
            CacheLevel {
                line_size: 64,
                associativity: 16,
                size_bytes: 16 * 1024 * 1024,
                sharing: SharingScope::Chip,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::None,
                latency_cycles: 39.0,
            },
        ],
        cores: 8,
        threads_per_core: 2,
        vector_bytes: 32,
        supports_nt_stores: true,
        timing: TimingModel {
            freq_ghz: 3.6,
            mem_latency_cycles: 240.0,
            mem_transfer_cycles: 11.0,
            compute_cycles_per_iter: 1.0,
            hit_exposed_fraction: 0.15,
        },
    }
}

/// ARM Neoverse N1: 4 cores × 1 thread, 64 KiB 4-way L1 with an
/// adjacent-pair unit, 1 MiB 8-way private L2 with a slow-training
/// *confident-stride* engine (3 confirmations, degree 2 up to 12 lines),
/// 4 MiB shared SLC, NEON.
pub fn arm_neoverse_n1() -> Architecture {
    Architecture {
        name: "ARM Neoverse N1".into(),
        caches: vec![
            CacheLevel {
                line_size: 64,
                associativity: 4,
                size_bytes: 64 * 1024,
                sharing: SharingScope::Core,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::AdjacentPair,
                latency_cycles: 4.0,
            },
            CacheLevel {
                line_size: 64,
                associativity: 8,
                size_bytes: 1024 * 1024,
                sharing: SharingScope::Core,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::ConfidentStride {
                    degree: 2,
                    max_distance: 12,
                    min_confidence: 3,
                },
                latency_cycles: 11.0,
            },
            CacheLevel {
                line_size: 64,
                associativity: 16,
                size_bytes: 4 * 1024 * 1024,
                sharing: SharingScope::Chip,
                write_allocate: WriteAllocate::Allocate,
                prefetcher: PrefetcherConfig::None,
                latency_cycles: 28.0,
            },
        ],
        cores: 4,
        threads_per_core: 1,
        vector_bytes: 16,
        supports_nt_stores: false,
        timing: TimingModel {
            freq_ghz: 2.6,
            mem_latency_cycles: 220.0,
            mem_transfer_cycles: 16.0,
            compute_cycles_per_iter: 1.5,
            hit_exposed_fraction: 0.20,
        },
    }
}

/// [`intel_i7_6700`] with every hardware prefetcher disabled — the
/// ablation personality: the optimizer must stop discounting
/// prefetch-covered misses and decisions shift accordingly.
pub fn intel_i7_6700_no_prefetch() -> Architecture {
    let mut arch = intel_i7_6700();
    arch.name = "Intel i7-6700 (no prefetch)".into();
    for level in &mut arch.caches {
        level.prefetcher = PrefetcherConfig::None;
    }
    arch
}

/// The prefetcher-zoo presets added on top of the paper's Table-3 trio,
/// in golden-suite row order.
pub fn zoo() -> Vec<Architecture> {
    vec![amd_zen2(), arm_neoverse_n1(), intel_i7_6700_no_prefetch()]
}

/// Presets for the *reproduction's scaled problem sizes* (DESIGN.md §5).
///
/// The paper's working sets exceed the last-level cache by large factors
/// (e.g. matmul 2048²: 48 MiB vs a 15 MiB L3). The reproduction scales
/// every problem by ~4× per dimension to keep trace simulation
/// tractable; to preserve the *working-set : LLC* ratio — and with it
/// the memory-bound regime the paper studies — these variants scale the
/// L3 capacity by the same 16× area factor (floored at twice the L2).
/// L1, L2, core counts and timing are untouched, so the optimizer's
/// decisions are essentially identical to the Table-3 presets'.
pub mod repro {
    use super::Architecture;

    fn shrink_llc(mut arch: Architecture) -> Architecture {
        if arch.caches.len() > 2 {
            let l2_size = arch.caches[1].size_bytes;
            let llc = arch.caches.last_mut().expect("validated hierarchy");
            llc.size_bytes = (llc.size_bytes / 16).max(2 * l2_size);
        }
        arch
    }

    /// [`super::intel_i7_6700`] with the L3 scaled to 512 KiB.
    pub fn intel_i7_6700() -> Architecture {
        shrink_llc(super::intel_i7_6700())
    }

    /// [`super::intel_i7_5930k`] with the L3 scaled to ~960 KiB.
    pub fn intel_i7_5930k() -> Architecture {
        shrink_llc(super::intel_i7_5930k())
    }

    /// [`super::arm_cortex_a15`] — unchanged: its shared 512 KiB L2 is
    /// already far smaller than every scaled working set.
    pub fn arm_cortex_a15() -> Architecture {
        super::arm_cortex_a15()
    }

    /// [`super::amd_zen2`] with the L3 scaled to 1 MiB.
    pub fn amd_zen2() -> Architecture {
        shrink_llc(super::amd_zen2())
    }

    /// [`super::arm_neoverse_n1`] with the SLC scaled to 2 MiB.
    pub fn arm_neoverse_n1() -> Architecture {
        shrink_llc(super::arm_neoverse_n1())
    }

    /// [`super::intel_i7_6700_no_prefetch`] with the L3 scaled to 512 KiB.
    pub fn intel_i7_6700_no_prefetch() -> Architecture {
        shrink_llc(super::intel_i7_6700_no_prefetch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharingScope;

    #[test]
    fn arm_l2_is_shared() {
        let arm = arm_cortex_a15();
        assert_eq!(arm.l2().sharing, SharingScope::Chip);
        assert!(arm.l3().is_none());
    }

    #[test]
    fn intel_l2_is_private() {
        assert_eq!(intel_i7_6700().l2().sharing, SharingScope::Core);
    }

    #[test]
    fn all_returns_three() {
        assert_eq!(all().len(), 3);
    }

    #[test]
    fn intel_prefetch_distance_is_twenty() {
        let p = intel_i7_5930k();
        assert_eq!(p.l2().prefetcher.max_distance(), 20);
    }

    #[test]
    fn zoo_presets_validate() {
        let zoo = zoo();
        assert_eq!(zoo.len(), 3);
        for arch in zoo {
            arch.validate().unwrap_or_else(|e| panic!("{}: {e}", arch.name));
        }
    }

    #[test]
    fn zoo_covers_distinct_strategies() {
        assert!(matches!(amd_zen2().l2().prefetcher, PrefetcherConfig::Stream { .. }));
        assert!(matches!(
            arm_neoverse_n1().l2().prefetcher,
            PrefetcherConfig::ConfidentStride { .. }
        ));
        assert!(matches!(arm_neoverse_n1().l1().prefetcher, PrefetcherConfig::AdjacentPair));
        let nopf = intel_i7_6700_no_prefetch();
        assert!(nopf.caches.iter().all(|c| !c.prefetcher.is_enabled()));
    }
}
