//! Cache-level and prefetcher descriptions.

use serde::{Deserialize, Serialize};

/// Which execution contexts share a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingScope {
    /// Private to one core (shared only between its hardware threads).
    Core,
    /// Shared by every core on the chip (e.g. Intel L3, Cortex-A15 L2).
    Chip,
}

/// Write-miss policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteAllocate {
    /// Write misses allocate the line (read-for-ownership traffic).
    Allocate,
    /// Write misses are forwarded outward without allocating.
    NoAllocate,
}

/// Hardware prefetcher attached to a cache level.
///
/// The paper models two units — an L1 *next-line streamer* that fetches
/// the successor of every referenced line, and an L2 *constant-stride*
/// prefetcher that issues `degree` requests per access (`L2pref`) up to a
/// maximum distance of `max_distance` lines ahead of the demand stream
/// (`L2maxpref`, "usually 20 for Intel processors"). The remaining
/// variants describe the wider prefetcher zoo found on shipping cores
/// (Intel's adjacent-sector unit, AMD/ARM L2 stream engines with
/// confirmation thresholds); each maps onto one simulator strategy and
/// one analytic-coverage rule, so platform presets can mix them freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherConfig {
    /// No prefetcher at this level.
    None,
    /// Next-line streamer: on each demand access to line `l`, fetch `l + 1`.
    NextLine,
    /// Constant-stride streamer.
    Stride {
        /// Prefetch requests issued per triggering access (`L2pref`).
        degree: usize,
        /// Maximum lines of run-ahead past the demand stream (`L2maxpref`).
        max_distance: usize,
    },
    /// Adjacent-pair (buddy-line) unit: on a demand miss to line `l`,
    /// fetch the other half of the aligned two-line sector (`l ^ 1`),
    /// like Intel's adjacent-cache-line or spatial prefetcher.
    AdjacentPair,
    /// Constant-stride streamer with an explicit confirmation threshold:
    /// a stream must repeat its stride `min_confidence` times before any
    /// prefetch issues (ARM L2 units train slower than Intel's).
    ConfidentStride {
        /// Prefetch requests issued per triggering access.
        degree: usize,
        /// Maximum lines of run-ahead past the demand stream.
        max_distance: usize,
        /// Consecutive stride confirmations required before issuing.
        min_confidence: u8,
    },
    /// Stream engine with confirmation, styled after AMD L2 stream
    /// prefetchers: only unit-stride (ascending or descending) streams
    /// ever issue, and only after `confirm` consecutive confirmations.
    Stream {
        /// Prefetch requests issued per triggering access.
        degree: usize,
        /// Maximum lines of run-ahead past the demand stream.
        max_distance: usize,
        /// Consecutive direction confirmations required before issuing.
        confirm: u8,
    },
}

impl PrefetcherConfig {
    /// Prefetch degree (`L2pref` in the paper); zero when disabled.
    pub fn degree(&self) -> usize {
        match self {
            PrefetcherConfig::None => 0,
            PrefetcherConfig::NextLine | PrefetcherConfig::AdjacentPair => 1,
            PrefetcherConfig::Stride { degree, .. }
            | PrefetcherConfig::ConfidentStride { degree, .. }
            | PrefetcherConfig::Stream { degree, .. } => *degree,
        }
    }

    /// Maximum run-ahead distance in lines (`L2maxpref`); zero when disabled.
    pub fn max_distance(&self) -> usize {
        match self {
            PrefetcherConfig::None => 0,
            PrefetcherConfig::NextLine | PrefetcherConfig::AdjacentPair => 1,
            PrefetcherConfig::Stride { max_distance, .. }
            | PrefetcherConfig::ConfidentStride { max_distance, .. }
            | PrefetcherConfig::Stream { max_distance, .. } => *max_distance,
        }
    }

    /// Whether any prefetching happens at this level.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PrefetcherConfig::None)
    }

    /// Confirmations a stream needs before this unit issues (the seed's
    /// stride table used a fixed threshold of two).
    pub fn min_confidence(&self) -> u8 {
        match self {
            PrefetcherConfig::ConfidentStride { min_confidence, .. } => *min_confidence,
            PrefetcherConfig::Stream { confirm, .. } => *confirm,
            _ => 2,
        }
    }

    /// Whether the unit follows constant-stride demand streams, i.e.
    /// covers the cold misses of a streamed row walk (the premise behind
    /// the analytic model's `rows()`-based miss discount). The
    /// adjacent-pair unit is the one enabled strategy that does not: it
    /// fetches a fixed buddy line instead of running ahead of a stream.
    pub fn covers_streams(&self) -> bool {
        matches!(
            self,
            PrefetcherConfig::NextLine
                | PrefetcherConfig::Stride { .. }
                | PrefetcherConfig::ConfidentStride { .. }
                | PrefetcherConfig::Stream { .. }
        )
    }

    /// Extra successor lines fetched alongside each contiguous row, used
    /// by the analytic model's L1 footprint inflation (Algorithm 1 adds
    /// one line per row for the next-line streamer). Every enabled
    /// strategy overshoots a row's end by one line; `None` fetches
    /// nothing.
    pub fn line_inflation(&self) -> usize {
        if self.is_enabled() {
            1
        } else {
            0
        }
    }
}

impl std::fmt::Display for PrefetcherConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetcherConfig::None => write!(f, "none"),
            PrefetcherConfig::NextLine => write!(f, "next-line"),
            PrefetcherConfig::AdjacentPair => write!(f, "adjacent-pair"),
            PrefetcherConfig::Stride { degree, max_distance } => {
                write!(f, "stride:{degree}:{max_distance}")
            }
            PrefetcherConfig::ConfidentStride { degree, max_distance, min_confidence } => {
                write!(f, "confident-stride:{degree}:{max_distance}:{min_confidence}")
            }
            PrefetcherConfig::Stream { degree, max_distance, confirm } => {
                write!(f, "stream:{degree}:{max_distance}:{confirm}")
            }
        }
    }
}

impl std::str::FromStr for PrefetcherConfig {
    type Err = String;

    /// Parses the CLI spelling produced by [`Display`](std::fmt::Display):
    /// `none`, `next-line`, `adjacent-pair`, `stride:D:M`,
    /// `confident-stride:D:M:C`, `stream:D:M:C`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let mut nums = Vec::new();
        for p in parts {
            nums.push(p.parse::<usize>().map_err(|_| format!("bad prefetcher knob {p:?}"))?);
        }
        let knobs = |n: usize| -> Result<(), String> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(format!("{head} takes {n} knobs, got {}", nums.len()))
            }
        };
        let conf = |v: usize| -> Result<u8, String> {
            u8::try_from(v).map_err(|_| format!("confidence {v} out of range"))
        };
        match head {
            "none" => knobs(0).map(|()| PrefetcherConfig::None),
            "next-line" => knobs(0).map(|()| PrefetcherConfig::NextLine),
            "adjacent-pair" => knobs(0).map(|()| PrefetcherConfig::AdjacentPair),
            "stride" => {
                knobs(2)?;
                Ok(PrefetcherConfig::Stride { degree: nums[0], max_distance: nums[1] })
            }
            "confident-stride" => {
                knobs(3)?;
                Ok(PrefetcherConfig::ConfidentStride {
                    degree: nums[0],
                    max_distance: nums[1],
                    min_confidence: conf(nums[2])?,
                })
            }
            "stream" => {
                knobs(3)?;
                Ok(PrefetcherConfig::Stream {
                    degree: nums[0],
                    max_distance: nums[1],
                    confirm: conf(nums[2])?,
                })
            }
            other => Err(format!(
                "unknown prefetcher {other:?} (try none, next-line, adjacent-pair, \
                 stride:D:M, confident-stride:D:M:C, stream:D:M:C)"
            )),
        }
    }
}

/// Geometry and behaviour of a single cache level (Table 1 parameters
/// `LiCLS`, `Liway`, `LiCS`, plus prefetcher and sharing information).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Line size in bytes (`LiCLS`).
    pub line_size: usize,
    /// Associativity (`Liway`).
    pub associativity: usize,
    /// Total capacity in bytes (`LiCS`).
    pub size_bytes: usize,
    /// Which contexts share this level.
    pub sharing: SharingScope,
    /// Write-miss behaviour.
    pub write_allocate: WriteAllocate,
    /// Hardware prefetcher attached to this level.
    pub prefetcher: PrefetcherConfig,
    /// Access latency in cycles (used as the relative weight `ai` of the
    /// paper's cost function for the *next* level's hits: a hit in L2
    /// costs `a2`, etc.).
    pub latency_cycles: f64,
}

impl CacheLevel {
    /// Number of sets: `size / (associativity * line_size)`.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_size)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_size
    }

    /// Elements of a `dts`-byte type that fit in one line (`lc` in the
    /// paper, `⌊LiCLS / DTS⌋`).
    pub fn elems_per_line(&self, dts: usize) -> usize {
        (self.line_size / dts).max(1)
    }

    /// Checks geometric consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when any dimension is zero, not a power of two
    /// where required, or the capacity is not divisible into sets.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err("line size must be a nonzero power of two".into());
        }
        if self.associativity == 0 {
            return Err("associativity must be nonzero".into());
        }
        if self.size_bytes == 0 {
            return Err("capacity must be nonzero".into());
        }
        if !self.size_bytes.is_multiple_of(self.associativity * self.line_size) {
            return Err("capacity not divisible by associativity * line size".into());
        }
        if self.latency_cycles <= 0.0 {
            return Err("latency must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheLevel {
        CacheLevel {
            line_size: 64,
            associativity: 8,
            size_bytes: 32 * 1024,
            sharing: SharingScope::Core,
            write_allocate: WriteAllocate::Allocate,
            prefetcher: PrefetcherConfig::NextLine,
            latency_cycles: 4.0,
        }
    }

    #[test]
    fn geometry() {
        let c = l1();
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.elems_per_line(4), 16);
        assert_eq!(c.elems_per_line(8), 8);
        assert_eq!(c.elems_per_line(128), 1);
        c.validate().unwrap();
    }

    #[test]
    fn prefetcher_accessors() {
        assert_eq!(PrefetcherConfig::None.degree(), 0);
        assert!(!PrefetcherConfig::None.is_enabled());
        assert_eq!(PrefetcherConfig::NextLine.degree(), 1);
        let s = PrefetcherConfig::Stride { degree: 2, max_distance: 20 };
        assert_eq!(s.degree(), 2);
        assert_eq!(s.max_distance(), 20);
        assert!(s.is_enabled());
    }

    #[test]
    fn zoo_accessors() {
        let cs = PrefetcherConfig::ConfidentStride {
            degree: 2,
            max_distance: 12,
            min_confidence: 3,
        };
        assert_eq!(cs.degree(), 2);
        assert_eq!(cs.max_distance(), 12);
        assert_eq!(cs.min_confidence(), 3);
        assert!(cs.covers_streams());
        let st = PrefetcherConfig::Stream { degree: 4, max_distance: 16, confirm: 2 };
        assert_eq!(st.degree(), 4);
        assert_eq!(st.min_confidence(), 2);
        assert!(st.covers_streams());
        let ap = PrefetcherConfig::AdjacentPair;
        assert_eq!(ap.degree(), 1);
        assert!(!ap.covers_streams());
        assert_eq!(ap.line_inflation(), 1);
        assert_eq!(PrefetcherConfig::None.line_inflation(), 0);
        assert_eq!(PrefetcherConfig::NextLine.line_inflation(), 1);
    }

    #[test]
    fn prefetcher_parse_round_trips() {
        let all = [
            PrefetcherConfig::None,
            PrefetcherConfig::NextLine,
            PrefetcherConfig::AdjacentPair,
            PrefetcherConfig::Stride { degree: 2, max_distance: 20 },
            PrefetcherConfig::ConfidentStride { degree: 1, max_distance: 8, min_confidence: 3 },
            PrefetcherConfig::Stream { degree: 4, max_distance: 16, confirm: 2 },
        ];
        for cfg in all {
            let s = cfg.to_string();
            assert_eq!(s.parse::<PrefetcherConfig>(), Ok(cfg), "{s}");
        }
        assert!("bogus".parse::<PrefetcherConfig>().is_err());
        assert!("stride:2".parse::<PrefetcherConfig>().is_err());
        assert!("stream:1:2:999".parse::<PrefetcherConfig>().is_err());
    }

    #[test]
    fn validate_accepts_non_pow2_sets() {
        // Real LLCs (e.g. the 5930K's 15 MiB L3) have non-power-of-two set
        // counts; the simulator indexes sets by modulo.
        let mut c = l1();
        c.size_bytes = 24 * 1024; // 48 sets
        assert!(c.validate().is_ok());
        assert_eq!(c.num_sets(), 48);
    }

    #[test]
    fn validate_rejects_zero_assoc() {
        let mut c = l1();
        c.associativity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_indivisible_capacity() {
        let mut c = l1();
        c.size_bytes = 1000;
        assert!(c.validate().is_err());
    }
}
