//! Cache-level and prefetcher descriptions.

use serde::{Deserialize, Serialize};

/// Which execution contexts share a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingScope {
    /// Private to one core (shared only between its hardware threads).
    Core,
    /// Shared by every core on the chip (e.g. Intel L3, Cortex-A15 L2).
    Chip,
}

/// Write-miss policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteAllocate {
    /// Write misses allocate the line (read-for-ownership traffic).
    Allocate,
    /// Write misses are forwarded outward without allocating.
    NoAllocate,
}

/// Hardware prefetcher attached to a cache level.
///
/// The paper models two units: an L1 *next-line streamer* that fetches the
/// successor of every referenced line, and an L2 *constant-stride*
/// prefetcher that issues `degree` requests per access (`L2pref`) up to a
/// maximum distance of `max_distance` lines ahead of the demand stream
/// (`L2maxpref`, "usually 20 for Intel processors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherConfig {
    /// No prefetcher at this level.
    None,
    /// Next-line streamer: on each demand access to line `l`, fetch `l + 1`.
    NextLine,
    /// Constant-stride streamer.
    Stride {
        /// Prefetch requests issued per triggering access (`L2pref`).
        degree: usize,
        /// Maximum lines of run-ahead past the demand stream (`L2maxpref`).
        max_distance: usize,
    },
}

impl PrefetcherConfig {
    /// Prefetch degree (`L2pref` in the paper); zero when disabled.
    pub fn degree(&self) -> usize {
        match self {
            PrefetcherConfig::None => 0,
            PrefetcherConfig::NextLine => 1,
            PrefetcherConfig::Stride { degree, .. } => *degree,
        }
    }

    /// Maximum run-ahead distance in lines (`L2maxpref`); zero when disabled.
    pub fn max_distance(&self) -> usize {
        match self {
            PrefetcherConfig::None => 0,
            PrefetcherConfig::NextLine => 1,
            PrefetcherConfig::Stride { max_distance, .. } => *max_distance,
        }
    }

    /// Whether any prefetching happens at this level.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PrefetcherConfig::None)
    }
}

/// Geometry and behaviour of a single cache level (Table 1 parameters
/// `LiCLS`, `Liway`, `LiCS`, plus prefetcher and sharing information).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Line size in bytes (`LiCLS`).
    pub line_size: usize,
    /// Associativity (`Liway`).
    pub associativity: usize,
    /// Total capacity in bytes (`LiCS`).
    pub size_bytes: usize,
    /// Which contexts share this level.
    pub sharing: SharingScope,
    /// Write-miss behaviour.
    pub write_allocate: WriteAllocate,
    /// Hardware prefetcher attached to this level.
    pub prefetcher: PrefetcherConfig,
    /// Access latency in cycles (used as the relative weight `ai` of the
    /// paper's cost function for the *next* level's hits: a hit in L2
    /// costs `a2`, etc.).
    pub latency_cycles: f64,
}

impl CacheLevel {
    /// Number of sets: `size / (associativity * line_size)`.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_size)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_size
    }

    /// Elements of a `dts`-byte type that fit in one line (`lc` in the
    /// paper, `⌊LiCLS / DTS⌋`).
    pub fn elems_per_line(&self, dts: usize) -> usize {
        (self.line_size / dts).max(1)
    }

    /// Checks geometric consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when any dimension is zero, not a power of two
    /// where required, or the capacity is not divisible into sets.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err("line size must be a nonzero power of two".into());
        }
        if self.associativity == 0 {
            return Err("associativity must be nonzero".into());
        }
        if self.size_bytes == 0 {
            return Err("capacity must be nonzero".into());
        }
        if !self.size_bytes.is_multiple_of(self.associativity * self.line_size) {
            return Err("capacity not divisible by associativity * line size".into());
        }
        if self.latency_cycles <= 0.0 {
            return Err("latency must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheLevel {
        CacheLevel {
            line_size: 64,
            associativity: 8,
            size_bytes: 32 * 1024,
            sharing: SharingScope::Core,
            write_allocate: WriteAllocate::Allocate,
            prefetcher: PrefetcherConfig::NextLine,
            latency_cycles: 4.0,
        }
    }

    #[test]
    fn geometry() {
        let c = l1();
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.elems_per_line(4), 16);
        assert_eq!(c.elems_per_line(8), 8);
        assert_eq!(c.elems_per_line(128), 1);
        c.validate().unwrap();
    }

    #[test]
    fn prefetcher_accessors() {
        assert_eq!(PrefetcherConfig::None.degree(), 0);
        assert!(!PrefetcherConfig::None.is_enabled());
        assert_eq!(PrefetcherConfig::NextLine.degree(), 1);
        let s = PrefetcherConfig::Stride { degree: 2, max_distance: 20 };
        assert_eq!(s.degree(), 2);
        assert_eq!(s.max_distance(), 20);
        assert!(s.is_enabled());
    }

    #[test]
    fn validate_accepts_non_pow2_sets() {
        // Real LLCs (e.g. the 5930K's 15 MiB L3) have non-power-of-two set
        // counts; the simulator indexes sets by modulo.
        let mut c = l1();
        c.size_bytes = 24 * 1024; // 48 sets
        assert!(c.validate().is_ok());
        assert_eq!(c.num_sets(), 48);
    }

    #[test]
    fn validate_rejects_zero_assoc() {
        let mut c = l1();
        c.associativity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_indivisible_capacity() {
        let mut c = l1();
        c.size_bytes = 1000;
        assert!(c.validate().is_err());
    }
}
