//! Timing parameters used to convert simulated cache events to time.

use serde::{Deserialize, Serialize};

/// Converts simulated event counts into estimated execution time.
///
/// The optimizer itself only needs the *relative* level access costs
/// (`a2`, `a3` in the paper's `Ctotal = a2·CL1 + a3·CL2`); the simulator
/// additionally uses memory latency and a per-iteration compute cost to
/// turn a trace into estimated milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Core frequency in GHz, used to convert cycles to wall-clock time.
    pub freq_ghz: f64,
    /// Latency of a main-memory access in cycles.
    pub mem_latency_cycles: f64,
    /// Bandwidth-side cost of one cache-line transfer to/from memory in
    /// cycles (used for writebacks, prefetch fills and non-temporal
    /// stores, which overlap with execution instead of stalling it).
    pub mem_transfer_cycles: f64,
    /// Cycles of computation per innermost-statement execution for scalar
    /// code (amortized; captures FMA throughput, address generation, ...).
    pub compute_cycles_per_iter: f64,
    /// Fraction of a cache hit's latency that is *exposed* (not hidden by
    /// out-of-order execution and pipelining). Out-of-order cores overlap
    /// almost all L1/L2 hit latency with useful work; in-order cores
    /// expose more.
    pub hit_exposed_fraction: f64,
}

impl TimingModel {
    /// Wall-clock milliseconds for a given number of cycles.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9) * 1e3
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a message when any rate or latency is non-positive or the
    /// prefetch-hit fraction is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.mem_latency_cycles <= 0.0 {
            return Err("memory latency must be positive".into());
        }
        if self.compute_cycles_per_iter < 0.0 {
            return Err("compute cost must be nonnegative".into());
        }
        if !(0.0..=1.0).contains(&self.hit_exposed_fraction) {
            return Err("exposed-latency fraction must be in [0, 1]".into());
        }
        Ok(())
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            freq_ghz: 3.5,
            mem_latency_cycles: 200.0,
            mem_transfer_cycles: 12.0,
            compute_cycles_per_iter: 1.0,
            hit_exposed_fraction: 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_ms_matches_frequency() {
        let t = TimingModel { freq_ghz: 1.0, ..TimingModel::default() };
        assert!((t.cycles_to_ms(1e9) - 1000.0).abs() < 1e-9);
        let t = TimingModel { freq_ghz: 2.0, ..TimingModel::default() };
        assert!((t.cycles_to_ms(2e9) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn default_validates() {
        TimingModel::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_fraction() {
        let t = TimingModel { hit_exposed_fraction: 1.5, ..TimingModel::default() };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_freq() {
        let t = TimingModel { freq_ghz: 0.0, ..TimingModel::default() };
        assert!(t.validate().is_err());
    }
}
