//! Figure 4: throughput relative to the fastest implementation on the
//! two Intel platforms, five techniques × twelve benchmarks.

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{autotuner_budget_1h, bar, measure_benchmark, print_table};
use palo_suite::Benchmark;

fn main() {
    let budget = autotuner_budget_1h();
    for arch in [presets::repro::intel_i7_6700(), presets::repro::intel_i7_5930k()] {
        let techniques = [
            Technique::Proposed,
            Technique::ProposedNti,
            Technique::AutoScheduler,
            Technique::Baseline,
            Technique::Autotuner { budget },
        ];
        let mut rows = Vec::new();
        for b in Benchmark::all() {
            let times: Vec<f64> =
                techniques.iter().map(|&t| measure_benchmark(b, t, &arch, 0xC60)).collect();
            let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut row = vec![b.name().to_string()];
            for ms in &times {
                let rel = best / ms; // throughput (1/s) relative to fastest
                row.push(format!("{rel:.2} {}", bar(rel, 10)));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 4: throughput relative to fastest — {} (autotuner budget {budget})",
                arch.name
            ),
            &[
                "Benchmark",
                "Proposed",
                "Proposed+NTI",
                "Auto-Scheduler",
                "Baseline",
                "Autotuner",
            ],
            &rows,
        );
    }
}
