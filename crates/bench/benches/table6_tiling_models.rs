//! Table 6: the proposed model vs. the TSS and TTS analytical tile-size
//! models on matmul, trmm, syrk, syr2k across four problem sizes,
//! Intel 5930K.
//!
//! Sizes are the paper's {400, 800, 1024, 1600} scaled by 1/4 to
//! {100, 200, 256, 400} plus 512 for headroom... the reproduction uses
//! {128, 256, 320, 512} (divisor-friendly, same cache-pressure ordering).

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{measure_technique, print_table, quick};
use palo_suite::Benchmark;

fn main() {
    let arch = presets::repro::intel_i7_5930k();
    let sizes: &[usize] = if quick() { &[128, 256] } else { &[128, 256, 320, 512] };
    let benchmarks = [Benchmark::Matmul, Benchmark::Trmm, Benchmark::Syrk, Benchmark::Syr2k];
    let techniques = [Technique::Tts, Technique::Tss, Technique::Proposed];

    for &size in sizes {
        let mut rows = Vec::new();
        for b in benchmarks {
            let nests = b.build(size).expect("suite kernels build");
            let mut row = vec![b.name().to_string()];
            for &t in &techniques {
                let ms = measure_technique(&nests, t, &arch, 0);
                row.push(format!("{ms:.2}"));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Table 6: estimated execution time (ms), problem size {size} — Intel 5930K"
            ),
            &["Benchmark", "TTS", "TSS", "Proposed"],
            &rows,
        );
    }
    println!("\nPaper sizes 400/800/1024/1600 are scaled to 128/256/320/512 (÷~3.2);");
    println!("the expected shape is Proposed <= TTS <= TSS on average, with the gap");
    println!("growing with problem size (paper: 26% over TTS, 41% over TSS).");
}
