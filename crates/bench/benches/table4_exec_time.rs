//! Table 4: average execution time of the best implementation per
//! benchmark per platform.
//!
//! The paper reports the wall-clock of the fastest schedule; here the
//! fastest *estimated* time across the non-autotuned techniques (the
//! autotuner never wins in the paper's Table 4 columns and is costly to
//! run; enable it by unsetting PALO_QUICK and editing TECHNIQUES below).

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{measure_benchmark, print_table};
use palo_suite::Benchmark;

const TECHNIQUES: &[Technique] = &[
    Technique::ProposedNti,
    Technique::Proposed,
    Technique::AutoScheduler,
    Technique::Baseline,
];

fn main() {
    let archs = [
        presets::repro::intel_i7_6700(),
        presets::repro::intel_i7_5930k(),
        presets::repro::arm_cortex_a15(),
    ];
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let mut row = vec![b.name().to_string(), b.scaled_size().to_string()];
        for arch in &archs {
            // ARM lacks vector NT stores; copy/mask are excluded there as
            // in the paper.
            if arch.name.starts_with("ARM") && matches!(b, Benchmark::Copy | Benchmark::Mask) {
                row.push("-".into());
                continue;
            }
            let best = TECHNIQUES
                .iter()
                .map(|&t| measure_benchmark(b, t, arch, 0))
                .fold(f64::INFINITY, f64::min);
            row.push(format!("{best:.2}"));
        }
        rows.push(row);
    }
    print_table(
        "Table 4: estimated execution time (ms) — best implementation (scaled sizes)",
        &["Benchmark", "Problem size", "Intel i7 6700", "Intel 5930K", "ARM A15"],
        &rows,
    );
    println!("\nNote: absolute values are simulator estimates at the scaled problem");
    println!("sizes of DESIGN.md §5; compare orderings and ratios, not magnitudes.");
}
