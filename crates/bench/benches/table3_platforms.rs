//! Table 3: experimental platforms.
//!
//! Prints the simulated platform parameters so runs are self-describing;
//! values must match the paper's Table 3.

use palo_arch::presets;
use palo_bench::print_table;

fn main() {
    let archs =
        [presets::intel_i7_5930k(), presets::intel_i7_6700(), presets::arm_cortex_a15()];
    let mut rows = Vec::new();
    let field = |name: &str, f: &dyn Fn(&palo_arch::Architecture) -> String| {
        let mut row = vec![name.to_string()];
        row.extend(archs.iter().map(f));
        row
    };
    rows.push(field("LCLS", &|a| format!("{}B", a.l1().line_size)));
    rows.push(field("L1way", &|a| a.l1().associativity.to_string()));
    rows.push(field("L1CS", &|a| format!("{}KB", a.l1().size_bytes / 1024)));
    rows.push(field("L2way", &|a| a.l2().associativity.to_string()));
    rows.push(field("L2CS", &|a| format!("{}KB", a.l2().size_bytes / 1024)));
    rows.push(field("L3CS", &|a| {
        a.l3().map(|c| format!("{}MB", c.size_bytes / 1024 / 1024)).unwrap_or("-".into())
    }));
    rows.push(field("NCores", &|a| a.cores.to_string()));
    rows.push(field("Nthreads", &|a| a.threads_per_core.to_string()));
    rows.push(field("NT stores", &|a| if a.supports_nt_stores { "yes" } else { "no" }.into()));

    print_table(
        "Table 3: Experimental platforms (simulated)",
        &["Parameter", "Intel i7 5930k", "Intel i7 6700", "ARM Cortex A15"],
        &rows,
    );
}
