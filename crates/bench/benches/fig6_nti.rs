//! Figure 6: the effect of non-temporal stores on the kernels whose
//! output has no temporal reuse (tp&m, tp, copy, mask), Intel 5930K.
//!
//! Throughput is reported relative to the *Proposed non-NTI*
//! implementation, as in the paper — values above 1.0 for Proposed+NTI
//! demonstrate the benefit of the new scheduling directive.

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{bar, measure_benchmark, print_table};
use palo_suite::Benchmark;

fn main() {
    let arch = presets::repro::intel_i7_5930k();
    let benchmarks = [Benchmark::Tpm, Benchmark::Tp, Benchmark::Copy, Benchmark::Mask];
    let mut rows = Vec::new();
    for b in benchmarks {
        let proposed = measure_benchmark(b, Technique::Proposed, &arch, 0);
        let nti = measure_benchmark(b, Technique::ProposedNti, &arch, 0);
        let autos = measure_benchmark(b, Technique::AutoScheduler, &arch, 0);
        let rel = |ms: f64| proposed / ms;
        rows.push(vec![
            b.name().to_string(),
            format!("{:.2} {}", rel(proposed), bar(rel(proposed) / 1.6, 10)),
            format!("{:.2} {}", rel(nti), bar(rel(nti) / 1.6, 10)),
            format!("{:.2} {}", rel(autos), bar(rel(autos) / 1.6, 10)),
        ]);
    }
    print_table(
        "Figure 6: throughput relative to Proposed (non-NTI), Intel 5930K",
        &["Benchmark", "Proposed", "Proposed+NTI", "Auto-Scheduler"],
        &rows,
    );
}
