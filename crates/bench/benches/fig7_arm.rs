//! Figure 7: the ARM Cortex-A15 platform (no L3, shared 16-way L2,
//! one thread per core, no vector NT stores).
//!
//! copy and mask are excluded as in the paper (without NT stores all
//! three implementations are identical). The model correction for the
//! shared L2 (`L2way / NCores`) is derived automatically from the
//! level's `SharingScope::Chip`.

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{bar, measure_benchmark, print_table};
use palo_suite::Benchmark;

fn main() {
    let arch = presets::repro::arm_cortex_a15();
    let techniques = [Technique::Proposed, Technique::AutoScheduler, Technique::Baseline];
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        if matches!(b, Benchmark::Copy | Benchmark::Mask) {
            continue;
        }
        let times: Vec<f64> =
            techniques.iter().map(|&t| measure_benchmark(b, t, &arch, 0)).collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut row = vec![b.name().to_string()];
        for ms in &times {
            row.push(format!("{:.2} {}", best / ms, bar(best / ms, 10)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 7: throughput relative to fastest — ARM Cortex A15",
        &["Benchmark", "Proposed", "Auto-Scheduler", "Baseline"],
        &rows,
    );
}
