//! Figure 5: the proposed schedule vs. the autotuner given a full day of
//! tuning, on the four benchmarks with 2/3/4/5-dimensional loop nests
//! (tp&m, matmul, doitgen, convolution layer), Intel 5930K.
//!
//! The paper's point: even after a day, the autotuner — which only tiles
//! the output dimensions — does not reach the proposed analytical
//! schedule. The evaluation budget stands in for tuning wall-clock.

use palo_arch::presets;
use palo_baselines::Technique;
use palo_bench::{autotuner_budget_1d, bar, measure_benchmark, print_table};
use palo_suite::Benchmark;

fn main() {
    let arch = presets::repro::intel_i7_5930k();
    let budget = autotuner_budget_1d();
    let benchmarks =
        [Benchmark::Tpm, Benchmark::Convlayer, Benchmark::Matmul, Benchmark::Doitgen];
    let mut rows = Vec::new();
    for b in benchmarks {
        let proposed = measure_benchmark(b, Technique::ProposedNti, &arch, 0);
        let tuned = measure_benchmark(b, Technique::Autotuner { budget }, &arch, 0xDA1);
        let best = proposed.min(tuned);
        rows.push(vec![
            b.name().to_string(),
            format!("{:.2} {}", best / proposed, bar(best / proposed, 10)),
            format!("{:.2} {}", best / tuned, bar(best / tuned, 10)),
        ]);
    }
    print_table(
        &format!(
            "Figure 5: throughput relative to fastest — autotuner at 'one day' budget ({budget} evals), Intel 5930K"
        ),
        &["Benchmark", "Proposed+NTI", "Autotuner"],
        &rows,
    );
}
