//! Criterion micro-benchmarks of the infrastructure:
//!
//! * `opt_runtime/*` — Table 5's quantity as a statistical benchmark:
//!   the optimizer's wall-clock per kernel;
//! * `emu/*` — Algorithm 1's cost;
//! * `cachesim/stream` — simulator line-touch throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use palo_arch::presets;
use palo_cachesim::{AccessKind, Hierarchy};
use palo_core::{emu, EmuParams, Optimizer};
use palo_suite::kernels;

fn opt_runtime(c: &mut Criterion) {
    let arch = presets::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    let mut group = c.benchmark_group("opt_runtime");
    group.sample_size(10);
    let cases = [
        ("matmul", kernels::matmul(512).expect("builds")),
        ("doitgen", kernels::doitgen(64).expect("builds")),
        ("tpm", kernels::tpm(1024).expect("builds")),
        ("syr2k", kernels::syr2k(384).expect("builds")),
    ];
    for (name, nest) in &cases {
        group.bench_function(name, |b| b.iter(|| std::hint::black_box(opt.optimize(nest))));
    }
    group.finish();
}

fn emu_bounds(c: &mut Criterion) {
    let arch = presets::intel_i7_5930k();
    let mut group = c.benchmark_group("emu");
    group.sample_size(20);
    group.bench_function("l2_bound", |b| {
        b.iter(|| {
            emu(&EmuParams {
                level: arch.l2(),
                dts: 4,
                row_len: 256,
                row_stride: 2048 + 16,
                threads: 2,
                addr: 0,
                l2_pref: 2,
                l2_max_pref: 20,
                for_l2: true,
                halve_l2_sets: true,
                inflate_lines: 0,
                cap: 1 << 16,
            })
        })
    });
    group.finish();
}

fn cachesim_stream(c: &mut Criterion) {
    let arch = presets::intel_i7_6700();
    let mut group = c.benchmark_group("cachesim");
    group.sample_size(10);
    group.bench_function("stream_1mib", |b| {
        b.iter(|| {
            let mut h = Hierarchy::from_architecture(&arch);
            for addr in (0..1u64 << 20).step_by(64) {
                h.access(addr, AccessKind::Load);
            }
            std::hint::black_box(h.stats().total_accesses)
        })
    });
    group.finish();
}

criterion_group!(benches, opt_runtime, emu_bounds, cachesim_stream);
criterion_main!(benches);
