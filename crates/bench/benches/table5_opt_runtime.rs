//! Table 5: optimization runtime of the proposed tool per benchmark.
//!
//! Wall-clock of `Optimizer::optimize` (median of several runs). The
//! paper reports milliseconds for most kernels and ~7.6 s for the
//! convolution layer (many loop levels → many permutations); the same
//! gradient should appear here.

use palo_arch::presets;
use palo_bench::print_table;
use palo_core::Optimizer;
use palo_suite::Benchmark;
use std::time::Instant;

fn main() {
    let arch = presets::intel_i7_5930k();
    let opt = Optimizer::new(&arch);
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let nests = b.build_scaled().expect("suite kernels build");
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            for nest in &nests {
                std::hint::black_box(opt.optimize(nest));
            }
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        rows.push(vec![b.name().to_string(), format!("{:.3}s", median)]);
    }
    print_table("Table 5: optimization runtime", &["Benchmark", "Runtime"], &rows);
}
