//! Ablation of the design choices DESIGN.md §6 calls out:
//!
//! 1. prefetch discounting in the miss model (Eq. 2 → Eq. 3),
//! 2. the halved effective L2 set count,
//! 3. the `Corder` reorder step,
//! 4. the Eq. 13 parallel-grain constraint,
//! 5. non-temporal stores.
//!
//! Each switch is disabled in isolation and the resulting schedule is
//! measured on the simulator for one temporal kernel (matmul) and one
//! spatial kernel (tpm).

use palo_arch::presets;
use palo_bench::print_table;
use palo_core::{OptimizerConfig, Pipeline, PipelineConfig};
use palo_suite::kernels;

fn main() {
    let arch = presets::repro::intel_i7_5930k();
    let variants: Vec<(&str, OptimizerConfig)> = vec![
        ("full model (paper)", OptimizerConfig::default()),
        (
            "no prefetch discount",
            OptimizerConfig { prefetch_discount: false, ..OptimizerConfig::default() },
        ),
        (
            "no halved L2 sets",
            OptimizerConfig { halve_l2_sets: false, ..OptimizerConfig::default() },
        ),
        (
            "no reorder step",
            OptimizerConfig { reorder_step: false, ..OptimizerConfig::default() },
        ),
        (
            "no parallel-grain constraint",
            OptimizerConfig { parallel_grain_constraint: false, ..OptimizerConfig::default() },
        ),
        ("no NTI", OptimizerConfig { enable_nti: false, ..OptimizerConfig::default() }),
    ];

    let nests = [("matmul 512", kernels::matmul(512)), ("tpm 1024", kernels::tpm(1024))];
    for (bench, nest) in nests {
        let nest = match nest {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{bench}: kernel failed to build: {e}");
                continue;
            }
        };
        let mut rows = Vec::new();
        for (label, config) in &variants {
            let pipeline = Pipeline::with_config(
                &arch,
                PipelineConfig { optimizer: config.clone(), ..PipelineConfig::default() },
            );
            let out = match pipeline.run(&nest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{bench} / {label}: pipeline failed: {e}");
                    continue;
                }
            };
            if out.report.fallback_fired() {
                eprintln!("{bench} / {label}: fell back to the {} schedule", out.report.rung);
            }
            let ms = out.report.estimate.as_ref().map(|e| e.ms).unwrap_or(f64::INFINITY);
            let (tile, nti) = out
                .decision
                .as_ref()
                .map(|d| (format!("{:?}", d.tile), d.use_nti.to_string()))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            rows.push(vec![label.to_string(), format!("{ms:.2}"), tile, nti]);
        }
        print_table(
            &format!("Ablation — {bench}, Intel 5930K"),
            &["Variant", "est. ms", "tile", "NTI"],
            &rows,
        );
    }
}
