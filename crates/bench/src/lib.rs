//! Shared harness for the table/figure generators.
//!
//! Every bench target in this crate regenerates one table or figure of
//! the paper (DESIGN.md §4) on the simulator substrate. The helpers here
//! measure a technique on a benchmark, format tables, and read the
//! `PALO_QUICK` environment variable that trades fidelity for runtime.

use palo_arch::Architecture;
use palo_baselines::{schedule_for, Technique};
use palo_core::Pipeline;
use palo_ir::LoopNest;
use palo_suite::Benchmark;

/// Estimated execution time (ms) of `technique` on a multi-stage
/// benchmark: stages are scheduled independently and their times summed,
/// as the paper's per-function Halide tool does.
///
/// Each stage runs through the fault-tolerant [`Pipeline`]: a schedule
/// that fails to lower degrades to a fallback rung (reported on stderr)
/// instead of aborting the whole table, and a stage with no measurable
/// schedule at all contributes `f64::INFINITY`.
pub fn measure_technique(
    nests: &[LoopNest],
    technique: Technique,
    arch: &Architecture,
    seed: u64,
) -> f64 {
    let pipeline = Pipeline::new(arch);
    nests
        .iter()
        .map(|nest| {
            let sched = schedule_for(technique, nest, arch, seed);
            match pipeline.run_schedule(nest, &sched) {
                Ok(out) => {
                    if out.report.fallback_fired() {
                        eprintln!(
                            "palo-bench: {} on {}: fell back to {} schedule",
                            technique.label(),
                            nest.name(),
                            out.report.rung
                        );
                    }
                    out.report.estimate.as_ref().map(|e| e.ms).unwrap_or(f64::INFINITY)
                }
                Err(e) => {
                    eprintln!(
                        "palo-bench: {} on {}: unmeasurable: {e}",
                        technique.label(),
                        nest.name()
                    );
                    f64::INFINITY
                }
            }
        })
        .sum()
}

/// Measures a benchmark at its scaled size; an unbuildable benchmark is
/// reported on stderr and measured as `f64::INFINITY`.
pub fn measure_benchmark(
    benchmark: Benchmark,
    technique: Technique,
    arch: &Architecture,
    seed: u64,
) -> f64 {
    match benchmark.build_scaled() {
        Ok(nests) => measure_technique(&nests, technique, arch, seed),
        Err(e) => {
            eprintln!("palo-bench: benchmark failed to build: {e}");
            f64::INFINITY
        }
    }
}

/// Whether the `PALO_QUICK` environment variable asks for reduced
/// budgets/sizes.
pub fn quick() -> bool {
    std::env::var_os("PALO_QUICK").is_some()
}

/// Autotuner evaluation budget standing in for the paper's one hour.
pub fn autotuner_budget_1h() -> usize {
    if quick() {
        4
    } else {
        20
    }
}

/// Autotuner evaluation budget standing in for the paper's one day.
pub fn autotuner_budget_1d() -> usize {
    if quick() {
        10
    } else {
        100
    }
}

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate().take(ncols) {
            line.push_str(&format!("{:width$}  ", cell, width = widths[c]));
        }
        line.trim_end().to_string()
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a value in `[0, 1]` as a unicode bar (for figure-style
/// relative-throughput output).
pub fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;

    #[test]
    fn measure_copy_is_positive() {
        let ms = measure_benchmark(
            Benchmark::Copy,
            Technique::Baseline,
            &presets::intel_i7_6700(),
            0,
        );
        assert!(ms > 0.0);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 2), "##");
    }

    #[test]
    fn budgets_positive() {
        assert!(autotuner_budget_1h() > 0);
        assert!(autotuner_budget_1d() > autotuner_budget_1h() / 2);
    }
}
