//! Perf-tracking harness for the serving layer (`palo-serve`).
//!
//! Drives one warm [`Server`] with a deterministic burst of
//! mixed-priority requests — the same generator shape as the chaos soak,
//! minus the fault injection — and writes latency percentiles (overall
//! and per lane) plus the admission/shedding counters to
//! `BENCH_serve.json`.
//!
//! Exit status is non-zero when a response is lost (the client ledger
//! and the server's terminal counters disagree), when a worker panics,
//! or when nothing was served at all. Shedding and door rejections are
//! *reported*, not failed on: an overloaded run is a valid measurement.
//!
//! Environment:
//!
//! * `PALO_BENCH_SERVE_REQUESTS` — request count, default 400;
//! * `PALO_BENCH_SERVE_WORKERS` — worker threads, default 4;
//! * `PALO_BENCH_SERVE_QUEUE` — admission-queue capacity, default 16;
//! * `PALO_BENCH_SERVE_PACE_US` — microseconds each client thread
//!   breathes after a burst of 4 submissions, default 15000; `0` blasts
//!   the whole load at once (pure-overload measurement);
//! * `PALO_BENCH_SERVE_PLATFORM` — one of `5930k,6700,a15`, default
//!   `6700`;
//! * `PALO_BENCH_SERVE_OUT` — output path, default `BENCH_serve.json`.

use palo_arch::{presets, Architecture};
use palo_core::{PipelineConfig, Priority};
use palo_serve::{Fidelity, Request, Response, ServeConfig, Server, ShedPolicy};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Deterministic request mix (no global RNG: reruns are comparable).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const POOL: [(&str, usize); 8] = [
    ("matmul", 16),
    ("matmul", 32),
    ("gemm", 16),
    ("trmm", 16),
    ("copy", 48),
    ("mask", 48),
    ("tp", 48),
    ("3mm", 12),
];

fn request(n: usize, rng: &mut Lcg) -> Request {
    let (kernel, size) = POOL[(rng.next() % POOL.len() as u64) as usize];
    let priority =
        if rng.next().is_multiple_of(3) { Priority::Interactive } else { Priority::Batch };
    let fidelity =
        if rng.next().is_multiple_of(7) { Fidelity::Analytic } else { Fidelity::Full };
    Request {
        id: format!("b{n}"),
        kernel: kernel.to_string(),
        size: Some(size),
        priority,
        deadline: None,
        max_trace_lines: None,
        fidelity,
        faults: None,
    }
}

/// `p` in `[0,1]` over a sorted latency slice, nearest-rank.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct LaneRow {
    lane: &'static str,
    count: usize,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn lane_row(lane: &'static str, mut latencies_ms: Vec<f64>) -> LaneRow {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    LaneRow {
        lane,
        count: latencies_ms.len(),
        p50: percentile_ms(&latencies_ms, 0.50),
        p95: percentile_ms(&latencies_ms, 0.95),
        p99: percentile_ms(&latencies_ms, 0.99),
    }
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn platform(name: &str) -> Option<(&'static str, Architecture)> {
    match name {
        "5930k" => Some(("5930k", presets::repro::intel_i7_5930k())),
        "6700" => Some(("6700", presets::repro::intel_i7_6700())),
        "a15" => Some(("a15", presets::repro::arm_cortex_a15())),
        _ => None,
    }
}

fn main() {
    let total: usize = env_parse("PALO_BENCH_SERVE_REQUESTS", 400);
    let workers: usize = env_parse("PALO_BENCH_SERVE_WORKERS", 4);
    let queue: usize = env_parse("PALO_BENCH_SERVE_QUEUE", 16);
    let pace_us: u64 = env_parse("PALO_BENCH_SERVE_PACE_US", 15_000);
    let out_path =
        std::env::var("PALO_BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let platform_name =
        std::env::var("PALO_BENCH_SERVE_PLATFORM").unwrap_or_else(|_| "6700".into());
    let Some((platform_label, arch)) = platform(platform_name.trim()) else {
        eprintln!("bench_serve: unknown platform '{platform_name}'");
        std::process::exit(2);
    };

    let server = match Server::start(
        &arch,
        ServeConfig {
            pipeline: PipelineConfig::default(),
            workers: Some(workers.max(1)),
            queue_capacity: queue,
            shed: ShedPolicy::default(),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve: cannot open session: {e}");
            std::process::exit(2);
        }
    };

    let mut rng = Lcg(0x0be1_1c45_e44e);
    let requests: Vec<Request> = (0..total).map(|n| request(n, &mut rng)).collect();

    // Three client threads; each responder reports (lane, ok, latency)
    // measured from its own submission instant.
    let (tx, rx) = mpsc::channel::<(Priority, bool, Duration)>();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in requests.chunks(total.div_ceil(3).max(1)) {
            let server = &server;
            let tx = tx.clone();
            scope.spawn(move || {
                for (i, req) in chunk.iter().enumerate() {
                    let tx = tx.clone();
                    let lane = req.priority;
                    let submitted = Instant::now();
                    server.submit(
                        req.clone(),
                        Box::new(move |r: Response| {
                            let _ = tx.send((lane, r.is_ok(), submitted.elapsed()));
                        }),
                    );
                    if pace_us > 0 && i % 4 == 3 {
                        std::thread::sleep(Duration::from_micros(pace_us));
                    }
                }
            });
        }
    });
    drop(tx);

    let mut all: Vec<f64> = Vec::with_capacity(total);
    let mut interactive: Vec<f64> = Vec::new();
    let mut batch: Vec<f64> = Vec::new();
    let mut ok_count: u64 = 0;
    for (lane, ok, latency) in rx.iter() {
        let ms = latency.as_secs_f64() * 1e3;
        all.push(ms);
        match lane {
            Priority::Interactive => interactive.push(ms),
            Priority::Batch => batch.push(ms),
        }
        ok_count += u64::from(ok);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let responses = all.len();
    let cache = server.session().cache_stats();
    let stats = server.shutdown();

    let rows =
        [lane_row("all", all), lane_row("interactive", interactive), lane_row("batch", batch)];

    let mut failed = false;
    if responses != total || stats.responses() != total as u64 {
        eprintln!(
            "bench_serve: lost responses: client saw {responses}/{total}, server counted {}",
            stats.responses()
        );
        failed = true;
    }
    if stats.worker_panics > 0 {
        eprintln!("bench_serve: {} worker panics", stats.worker_panics);
        failed = true;
    }
    if ok_count != stats.served {
        eprintln!(
            "bench_serve: served disagreement: client {ok_count}, server {}",
            stats.served
        );
        failed = true;
    }
    if stats.served == 0 {
        eprintln!("bench_serve: nothing was served");
        failed = true;
    }

    println!(
        "{platform_label}: {total} requests in {wall_ms:.1} ms: {} served ({} shed, {} retried), \
         {} full, {} expired, {} failed; levels g/y/r {}/{}/{}",
        stats.served,
        stats.shed,
        stats.retried,
        stats.rejected_full,
        stats.expired,
        stats.failed,
        stats.levels[0],
        stats.levels[1],
        stats.levels[2],
    );
    for r in &rows {
        println!(
            "  {:<11} {:>4} responses: p50 {:>8.3} ms, p95 {:>8.3} ms, p99 {:>8.3} ms",
            r.lane, r.count, r.p50, r.p95, r.p99
        );
    }

    // Hand-rendered like the other bench reports: the vendored serde is
    // a no-op stub (offline build).
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(out, "  \"platform\": \"{platform_label}\",");
    let _ = writeln!(out, "  \"requests\": {total},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"queue_capacity\": {queue},");
    let _ = writeln!(out, "  \"pace_us\": {pace_us},");
    let _ = writeln!(out, "  \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(
        out,
        "  \"served\": {}, \"shed\": {}, \"retried\": {}, \"rejected_full\": {}, \
         \"expired\": {}, \"failed\": {},",
        stats.served,
        stats.shed,
        stats.retried,
        stats.rejected_full,
        stats.expired,
        stats.failed
    );
    let _ = writeln!(
        out,
        "  \"levels\": {{\"green\": {}, \"yellow\": {}, \"red\": {}}},",
        stats.levels[0], stats.levels[1], stats.levels[2]
    );
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"bypasses\": {}, \"hit_rate\": {:.4}}},",
        cache.hits,
        cache.misses,
        cache.bypasses,
        cache.hit_rate()
    );
    out.push_str("  \"latency_ms\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"lane\": \"{}\", \"count\": {}, \"p50\": {:.3}, \"p95\": {:.3}, \
             \"p99\": {:.3}}}",
            r.lane, r.count, r.p50, r.p95, r.p99
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &out) {
        eprintln!("bench_serve: cannot write {out_path}: {e}");
        failed = true;
    } else {
        println!("wrote {out_path}");
    }
    if failed {
        std::process::exit(1);
    }
}
