//! Model-fidelity harness: how well does each *analytical* cost model
//! rank candidates compared to the simulator's measured time?
//!
//! For each scenario — kernel × platform preset, where the platforms
//! cover the prefetcher zoo (the paper's i7-5930k next-line + stride
//! units, an AMD-styled L2 stream unit, an ARM-styled confident-stride
//! unit behind an adjacent-pair L1, and a prefetch-less control) — this
//! enumerates a fixed grid of candidate points (tile + the
//! driver-default `(x, u)` orders), scores every point with the three
//! analytical models — the paper's prefetch-aware model, TSS and TTS,
//! each under its own *effective* `(config, arch)` pair — and with the
//! [`SimulatedModel`] oracle (estimated milliseconds on the cache
//! simulator). Per model it reports the Spearman rank correlation
//! between predicted cost and simulated time (average ranks under ties;
//! model-infeasible points count as tied-worst), plus whether the
//! model's argmin point is also the simulator's. Results go to
//! `BENCH_models.json`.
//!
//! Exit status is non-zero when a kernel fails to build, when the
//! simulator cannot score any point, or when *no* analytical model
//! achieves a positive rank correlation on any kernel (the models would
//! then be anti-predictive, which the acceptance criteria treat as a
//! regression).
//!
//! Environment:
//!
//! * `PALO_BENCH_MODELS_OUT` — output path, default `BENCH_models.json`.
//!
//! Usage: `bench_models [kernel ...]`; default is the temporal trio
//! `matmul gemm syrk` plus the spatial `tp`, at sizes small enough that
//! simulating the full grid takes seconds.

use palo_arch::{presets, Architecture};
use palo_baselines::{TssModel, TtsModel};
use palo_core::{
    classify, post, CandidatePoint, Class, CostModel, Footprints, ModelKind, OptimizerConfig,
    PrefetchAwareModel, SearchCounters, SimulatedModel, TileContext,
};
use palo_ir::{LoopNest, NestInfo};
use palo_suite::Benchmark;
use std::fmt::Write as _;

/// One candidate point of the shared grid: every model and the oracle
/// score exactly this `(tile, x, u)` triple.
struct Point {
    tile: Vec<usize>,
    x: Option<usize>,
    u: Option<usize>,
}

struct ModelRow {
    model: &'static str,
    spearman: Option<f64>,
    finite_points: usize,
    best_agrees: bool,
}

struct KernelRow {
    name: &'static str,
    platform: &'static str,
    size: usize,
    points: usize,
    models: Vec<ModelRow>,
}

/// The fidelity scenarios' platforms: the paper's reference machine plus
/// the prefetcher-zoo presets, so every strategy family gets ranked
/// against the simulator.
fn platforms() -> Vec<(&'static str, Architecture)> {
    vec![
        ("5930k", presets::intel_i7_5930k()),
        ("zen2", presets::amd_zen2()),
        ("n1", presets::arm_neoverse_n1()),
        ("nopf", presets::intel_i7_6700_no_prefetch()),
    ]
}

/// Benchmark size: the simulator traces the full kernel once per point,
/// so sizes stay small (seconds per kernel, not minutes).
fn bench_size(b: Benchmark) -> usize {
    match b {
        Benchmark::Convlayer => 12,
        Benchmark::Doitgen => 32,
        Benchmark::Tpm | Benchmark::Tp | Benchmark::Copy | Benchmark::Mask => 768,
        _ => 160,
    }
}

/// The candidate grid. Temporal: a coarse sweep of column-tile ×
/// other-dims tile sizes under the driver-default `(x, u)` (x = first
/// non-column variable, u = the column loop). Spatial: a width × height
/// sweep with the remaining dims untiled. Tiles are clipped to the
/// extents and deduplicated.
fn candidate_points(class: Class, extents: &[usize], col: usize, row: usize) -> Vec<Point> {
    let n = extents.len();
    let mut points: Vec<Point> = Vec::new();
    let mut seen: Vec<Vec<usize>> = Vec::new();
    let mut push = |tile: Vec<usize>, x: Option<usize>, u: Option<usize>| {
        if !seen.contains(&tile) {
            seen.push(tile.clone());
            points.push(Point { tile, x, u });
        }
    };
    match class {
        Class::Temporal => {
            let x = (0..n).find(|&v| v != col);
            for tc in [8usize, 32, usize::MAX] {
                for t in [4usize, 16, 64, usize::MAX] {
                    let mut tile: Vec<usize> = extents.iter().map(|&e| t.min(e)).collect();
                    tile[col] = tc.min(extents[col]);
                    push(tile, x, Some(col));
                }
            }
        }
        _ => {
            for tw in [8usize, 32, 128] {
                for th in [8usize, 32, 128] {
                    let mut tile = extents.to_vec();
                    tile[col] = tw.min(extents[col]);
                    tile[row] = th.min(extents[row]);
                    push(tile, None, None);
                }
            }
        }
    }
    points
}

/// Scores every point with `model` under its effective `(config, arch)`
/// pair; a point the model rejects (budget/validity) scores `+inf`.
#[allow(clippy::too_many_arguments)]
fn score_points(
    nest: &LoopNest,
    info: &NestInfo,
    base_arch: &Architecture,
    class: Class,
    kind: ModelKind,
    model: &dyn CostModel,
    col: usize,
    row: usize,
    points: &[Point],
) -> Vec<f64> {
    let config = kind.effective_config(&OptimizerConfig::default());
    let arch = kind.effective_arch(base_arch);
    let extents = nest.extents();
    let fp = Footprints::new(nest, arch.l1().line_size);
    let use_nti = post::nti_eligible(info, &arch, &config);
    let counters = SearchCounters::default();
    let ctx = match class {
        Class::Temporal => {
            TileContext::temporal(nest, &fp, &extents, &arch, &config, col, use_nti, &counters)
        }
        _ => TileContext::spatial(
            nest, &fp, &extents, &arch, &config, col, row, use_nti, &counters,
        ),
    };
    points
        .iter()
        .map(|p| {
            let point = CandidatePoint { tile: &p.tile, x: p.x, u: p.u };
            model.evaluate(&ctx, &point).map(|bd| bd.total).unwrap_or(f64::INFINITY)
        })
        .collect()
}

/// Average ranks (1-based, ties share the mean rank); `+inf` entries tie
/// at the bottom.
fn average_ranks(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mean = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = mean;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rho as the Pearson correlation of the average ranks
/// (exact under ties). `None` when either ranking is constant.
fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    let (ra, rb) = (average_ranks(a), average_ranks(b));
    let n = ra.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

fn argmin(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s < scores[best] {
            best = i;
        }
    }
    best
}

fn run_kernel(
    b: Benchmark,
    pname: &'static str,
    base_arch: &Architecture,
) -> Result<Option<KernelRow>, String> {
    let size = bench_size(b);
    let nests: Vec<LoopNest> = b.build(size).map_err(|e| format!("{}: {e}", b.name()))?;
    // Multi-stage benchmarks: score the first transformable stage.
    for nest in &nests {
        let info = NestInfo::analyze(nest);
        let class = classify(&info);
        if class == Class::ContiguousOnly {
            continue;
        }
        let Some(col) = nest.column_var().map(|v| v.index()) else { continue };
        let out_order = nest.statement().output.var_order();
        let Some(row) = out_order.iter().rev().map(|v| v.index()).find(|&v| v != col) else {
            continue;
        };
        let extents = nest.extents();
        let points = candidate_points(class, &extents, col, row);

        // The oracle: simulated milliseconds under the *real* arch and
        // the paper-default config (budgets are irrelevant for explicit
        // points; only the canonical schedule matters).
        let truth = score_points(
            nest,
            &info,
            base_arch,
            class,
            ModelKind::Paper,
            &SimulatedModel::default(),
            col,
            row,
            &points,
        );
        let measured = truth.iter().filter(|t| t.is_finite()).count();
        if measured == 0 {
            return Err(format!("{} @ {pname}: simulator scored no candidate point", b.name()));
        }
        let truth_best = argmin(&truth);

        let analytical: [(&'static str, ModelKind, &dyn CostModel); 3] = [
            ("paper", ModelKind::Paper, &PrefetchAwareModel::paper()),
            ("tss", ModelKind::Tss, &TssModel),
            ("tts", ModelKind::Tts, &TtsModel),
        ];
        let mut models = Vec::new();
        for (name, kind, model) in analytical {
            let pred =
                score_points(nest, &info, base_arch, class, kind, model, col, row, &points);
            models.push(ModelRow {
                model: name,
                spearman: spearman(&pred, &truth),
                finite_points: pred.iter().filter(|p| p.is_finite()).count(),
                best_agrees: argmin(&pred) == truth_best,
            });
        }
        return Ok(Some(KernelRow {
            name: b.name(),
            platform: pname,
            size,
            points: points.len(),
            models,
        }));
    }
    Ok(None) // nothing transformable (contiguous benchmark)
}

fn render_json(rows: &[KernelRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"models\",\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"platform\": \"{}\", \"size\": {}, \"points\": {}, \
             \"models\": [",
            r.name, r.platform, r.size, r.points
        );
        for (j, m) in r.models.iter().enumerate() {
            let rho = match m.spearman {
                Some(v) => format!("{v:.4}"),
                None => "null".into(),
            };
            let _ = write!(
                out,
                "{{\"model\": \"{}\", \"spearman\": {}, \"finite_points\": {}, \
                 \"best_agrees\": {}}}",
                m.model, rho, m.finite_points, m.best_agrees
            );
            if j + 1 < r.models.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"mean_spearman\": {");
    for (j, name) in ["paper", "tss", "tts"].iter().enumerate() {
        let rhos: Vec<f64> = rows
            .iter()
            .flat_map(|r| &r.models)
            .filter(|m| m.model == *name)
            .filter_map(|m| m.spearman)
            .collect();
        let mean = if rhos.is_empty() {
            "null".into()
        } else {
            format!("{:.4}", rhos.iter().sum::<f64>() / rhos.len() as f64)
        };
        let _ = write!(out, "\"{name}\": {mean}");
        if j < 2 {
            out.push_str(", ");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let out_path =
        std::env::var("PALO_BENCH_MODELS_OUT").unwrap_or_else(|_| "BENCH_models.json".into());
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let kernels: Vec<Benchmark> = if requested.is_empty() {
        vec![Benchmark::Matmul, Benchmark::Gemm, Benchmark::Syrk, Benchmark::Tp]
    } else {
        let mut ks = Vec::new();
        for want in &requested {
            match Benchmark::all().iter().find(|b| b.name() == want) {
                Some(b) => ks.push(*b),
                None => {
                    eprintln!("bench_models: unknown kernel '{want}'");
                    std::process::exit(2);
                }
            }
        }
        ks
    };

    let mut rows = Vec::new();
    let mut failed = false;
    for (pname, arch) in &platforms() {
        for &b in &kernels {
            match run_kernel(b, pname, arch) {
                Ok(Some(row)) => {
                    for m in &row.models {
                        println!(
                            "{:<10} @ {:<5} size {:>4}, {:>2} points: {:<5} spearman {}, \
                             argmin agrees: {}",
                            row.name,
                            row.platform,
                            row.size,
                            row.points,
                            m.model,
                            m.spearman.map(|v| format!("{v:+.3}")).unwrap_or("n/a ".into()),
                            m.best_agrees,
                        );
                    }
                    rows.push(row);
                }
                Ok(None) => println!("{:<10} skipped (no transformable stage)", b.name()),
                Err(e) => {
                    eprintln!("bench_models: {e}");
                    failed = true;
                }
            }
        }
    }

    // Regression tripwire: at least one analytical model must rank
    // usefully (positive rho) on at least one kernel.
    let any_positive =
        rows.iter().flat_map(|r| &r.models).any(|m| m.spearman.is_some_and(|v| v > 0.0));
    if !rows.is_empty() && !any_positive {
        eprintln!("bench_models: no model achieved a positive rank correlation");
        failed = true;
    }
    if rows.is_empty() {
        eprintln!("bench_models: no kernel produced data");
        failed = true;
    }

    let json = render_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_models: cannot write {out_path}: {e}");
        failed = true;
    } else {
        println!("wrote {out_path}");
    }
    if failed {
        std::process::exit(1);
    }
}
