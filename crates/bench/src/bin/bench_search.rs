//! Perf-tracking harness for the candidate-search engine.
//!
//! For each requested kernel this runs the optimizer twice — once with
//! [`SearchOptions::exhaustive`] (the pre-engine sequential sweep: one
//! worker, no pruning, no memoization) and once with the default engine
//! configuration — takes the median wall time of each over several
//! repetitions, verifies the two return the *same decision bit-for-bit*,
//! and writes the medians plus the engine's work counters to
//! `BENCH_search.json`.
//!
//! Exit status is non-zero when any kernel disagrees, when the engine's
//! median search time exceeds the ceiling, or when the engine did no
//! pruning/memoization at all (the counters the acceptance criteria
//! track). CI runs this on one kernel as a smoke job.
//!
//! Environment:
//!
//! * `PALO_BENCH_SEARCH_CEILING_MS` — per-kernel wall ceiling for the
//!   engine's search, default 30000 (generous: seconds, not the
//!   milliseconds it actually takes);
//! * `PALO_BENCH_SEARCH_REPS` — repetitions per configuration, default 5;
//! * `PALO_BENCH_SEARCH_OUT` — output path, default `BENCH_search.json`;
//! * `PALO_SEARCH_THREADS` — engine worker count (the engine's own knob).
//!
//! Usage: `bench_search [kernel ...]` where `kernel` is a paper name
//! (`matmul`, `gemm`, `tp`, ...); default is the matmul-class trio
//! `matmul gemm syrk` plus the spatial `tp`.

use palo_arch::presets;
use palo_core::{Optimizer, OptimizerConfig, SearchOptions, SearchStats};
use palo_ir::LoopNest;
use palo_suite::Benchmark;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct KernelRow {
    name: &'static str,
    size: usize,
    reps: usize,
    exhaustive_ms: f64,
    engine_ms: f64,
    agree: bool,
    stats: SearchStats,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// Benchmark size: small enough that the exhaustive reference sweep
/// finishes in seconds, large enough that the candidate space is real.
fn bench_size(b: Benchmark) -> usize {
    match b {
        Benchmark::Convlayer => 16,
        Benchmark::Doitgen => 96,
        Benchmark::Tpm | Benchmark::Tp | Benchmark::Copy | Benchmark::Mask => 512,
        _ => 1440,
    }
}

fn run_kernel(b: Benchmark, reps: usize) -> Result<KernelRow, String> {
    let arch = presets::intel_i7_5930k();
    let nests: Vec<LoopNest> =
        b.build(bench_size(b)).map_err(|e| format!("{}: {e}", b.name()))?;

    let exhaustive_opt = Optimizer::with_config(
        &arch,
        OptimizerConfig { search: SearchOptions::exhaustive(), ..OptimizerConfig::default() },
    );
    let engine_opt = Optimizer::with_config(
        &arch,
        OptimizerConfig { search: SearchOptions::default(), ..OptimizerConfig::default() },
    );

    let mut exhaustive_samples = Vec::with_capacity(reps);
    let mut engine_samples = Vec::with_capacity(reps);
    let mut agree = true;
    let mut stats = SearchStats::default();
    for rep in 0..reps {
        let t0 = Instant::now();
        let reference: Vec<_> = nests.iter().map(|n| exhaustive_opt.optimize(n)).collect();
        exhaustive_samples.push(t0.elapsed());

        let t1 = Instant::now();
        let mut rep_stats = SearchStats::default();
        let engine: Vec<_> = nests
            .iter()
            .map(|n| {
                let (d, s) = engine_opt.optimize_with_stats(n);
                rep_stats.absorb(&s);
                d
            })
            .collect();
        engine_samples.push(t1.elapsed());

        agree &= engine == reference
            && engine
                .iter()
                .zip(&reference)
                .all(|(e, r)| e.predicted_cost.to_bits() == r.predicted_cost.to_bits());
        if rep == 0 {
            stats = rep_stats; // first rep: cold engine-local memo tables
        }
    }

    Ok(KernelRow {
        name: b.name(),
        size: bench_size(b),
        reps,
        exhaustive_ms: median_ms(&mut exhaustive_samples),
        engine_ms: median_ms(&mut engine_samples),
        agree,
        stats,
    })
}

fn json_escape_free(name: &str) -> &str {
    // Kernel names are [a-z0-9]+ by construction; guarded anyway.
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric()));
    name
}

fn render_json(rows: &[KernelRow], ceiling_ms: f64) -> String {
    // The vendored serde is a no-op stub (offline build), so the report
    // is rendered by hand; the schema is flat on purpose.
    let mut out = String::from("{\n  \"bench\": \"search\",\n");
    let _ = writeln!(out, "  \"ceiling_ms\": {ceiling_ms},");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = if r.engine_ms > 0.0 { r.exhaustive_ms / r.engine_ms } else { f64::NAN };
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"size\": {}, \"reps\": {}, \
             \"exhaustive_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.2}, \
             \"agree\": {}, \"workers\": {}, \"candidates_evaluated\": {}, \
             \"candidates_pruned\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
             \"emu_memo_hits\": {}, \"emu_memo_misses\": {}}}",
            json_escape_free(r.name),
            r.size,
            r.reps,
            r.exhaustive_ms,
            r.engine_ms,
            speedup,
            r.agree,
            r.stats.workers,
            r.stats.candidates_evaluated,
            r.stats.candidates_pruned,
            r.stats.memo_hits,
            r.stats.memo_misses,
            r.stats.emu_memo_hits,
            r.stats.emu_memo_misses,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let reps: usize = env_parse("PALO_BENCH_SEARCH_REPS", 5).max(1);
    let ceiling_ms: f64 = env_parse("PALO_BENCH_SEARCH_CEILING_MS", 30_000.0);
    let out_path =
        std::env::var("PALO_BENCH_SEARCH_OUT").unwrap_or_else(|_| "BENCH_search.json".into());

    let requested: Vec<String> = std::env::args().skip(1).collect();
    let kernels: Vec<Benchmark> = if requested.is_empty() {
        vec![Benchmark::Matmul, Benchmark::Gemm, Benchmark::Syrk, Benchmark::Tp]
    } else {
        let mut ks = Vec::new();
        for want in &requested {
            match Benchmark::all().iter().find(|b| b.name() == want) {
                Some(b) => ks.push(*b),
                None => {
                    eprintln!("bench_search: unknown kernel '{want}'");
                    std::process::exit(2);
                }
            }
        }
        ks
    };

    let mut rows = Vec::new();
    let mut failed = false;
    for b in kernels {
        match run_kernel(b, reps) {
            Ok(row) => {
                println!(
                    "{:<10} size {:>4}: exhaustive {:>9.2} ms, engine {:>9.2} ms \
                     ({:.2}x), evaluated {}, pruned {}, memo hits {}, agree: {}",
                    row.name,
                    row.size,
                    row.exhaustive_ms,
                    row.engine_ms,
                    row.exhaustive_ms / row.engine_ms.max(1e-9),
                    row.stats.candidates_evaluated,
                    row.stats.candidates_pruned,
                    row.stats.memo_hits,
                    row.agree,
                );
                if !row.agree {
                    eprintln!("bench_search: {}: engine diverged from exhaustive", row.name);
                    failed = true;
                }
                if row.engine_ms > ceiling_ms {
                    eprintln!(
                        "bench_search: {}: engine {:.1} ms over ceiling {:.1} ms",
                        row.name, row.engine_ms, ceiling_ms
                    );
                    failed = true;
                }
                rows.push(row);
            }
            Err(e) => {
                eprintln!("bench_search: {e}");
                failed = true;
            }
        }
    }

    // The acceptance criteria track these counters: an engine that never
    // prunes or memoizes is a regression even if it agrees.
    let total_pruned: u64 = rows.iter().map(|r| r.stats.candidates_pruned).sum();
    let total_memo: u64 = rows.iter().map(|r| r.stats.memo_hits + r.stats.emu_memo_hits).sum();
    if rows.iter().any(|r| r.name != "tp") && total_pruned == 0 {
        eprintln!("bench_search: no candidate was ever pruned");
        failed = true;
    }
    if total_memo == 0 {
        eprintln!("bench_search: the memo tables never hit");
        failed = true;
    }

    let json = render_json(&rows, ceiling_ms);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_search: cannot write {out_path}: {e}");
        failed = true;
    } else {
        println!("wrote {out_path}");
    }
    if failed {
        std::process::exit(1);
    }
}
