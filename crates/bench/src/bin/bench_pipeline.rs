//! Perf-tracking harness for the session pipeline's artifact cache.
//!
//! For each requested platform this builds the full evaluation suite
//! and climbs the three-rung cache ladder (DESIGN.md §15):
//!
//! 1. **cold** — one [`Session`], empty cache, full batch through the
//!    concurrent [`palo_core::BatchDriver`];
//! 2. **warm-memory** — the same session runs the batch again; every
//!    pass request should be served from the in-memory tier;
//! 3. **warm-disk** — a session with a persistent `--cache-dir`
//!    populates a fresh directory, is dropped, and a *new* session on
//!    that directory runs the batch served entirely from the disk tier
//!    (the in-process stand-in for a process restart; the CI smoke job
//!    covers the true cross-process case via `palo-opt`).
//!
//! All three wall-clock times and cache-counter windows go to
//! `BENCH_pipeline.json`.
//!
//! Exit status is non-zero when any batch item fails, when the
//! warm-memory or warm-disk hit rate is not above the floor (default
//! 0.5; the acceptance criterion is that a warm suite run is mostly
//! cache-served), or when either warm rung recomputed anything it
//! should have cached. CI runs this at a reduced size as a smoke job.
//!
//! Environment:
//!
//! * `PALO_BENCH_PIPELINE_SIZE` — problem size for every kernel;
//!   `0` (default) means each kernel's paper-scaled size;
//! * `PALO_BENCH_PIPELINE_SIMULATE` — `1` (default) runs the trace
//!   simulation stage, `0` stops after validation (much faster);
//! * `PALO_BENCH_PIPELINE_PLATFORMS` — comma list out of
//!   `5930k,6700,a15` (default: all three);
//! * `PALO_BENCH_PIPELINE_MIN_HIT_RATE` — warm hit-rate floor,
//!   default 0.5;
//! * `PALO_BENCH_PIPELINE_MAX_COLD_MS` — cold-batch wall-clock ceiling in
//!   milliseconds per platform (regression gate for the run-compressed
//!   replay engine); `0` (default) disables the gate;
//! * `PALO_BENCH_PIPELINE_OUT` — output path, default
//!   `BENCH_pipeline.json`;
//! * `PALO_SEARCH_THREADS` — worker count for both the batch driver and
//!   the candidate search.

use palo_arch::{presets, Architecture};
use palo_core::{BatchReport, CacheConfig, CacheStats, PipelineConfig, Session};
use palo_ir::LoopNest;
use palo_suite::Benchmark;
use std::fmt::Write as _;

/// One pass's aggregate over a whole (cold) batch.
struct PassRow {
    pass: &'static str,
    total_ms: f64,
    requests: u64,
    cached: u64,
}

struct PlatformRow {
    platform: &'static str,
    nests: usize,
    cold_ms: f64,
    warm_ms: f64,
    /// Batch time for a fresh session replaying a warm `--cache-dir`.
    warm_disk_ms: f64,
    cold: CacheStats,
    warm: CacheStats,
    warm_disk: CacheStats,
    /// Per-pass wall-clock breakdown of the cold batch.
    passes: Vec<PassRow>,
    failed: usize,
}

/// Sums every item's per-pass timings, in first-seen pass order.
fn aggregate_passes(report: &BatchReport) -> Vec<PassRow> {
    let mut rows: Vec<PassRow> = Vec::new();
    for item in &report.items {
        let Ok(out) = &item.outcome else { continue };
        for t in &out.report.timings {
            let ms = t.elapsed.as_secs_f64() * 1e3;
            match rows.iter_mut().find(|r| r.pass == t.pass) {
                Some(r) => {
                    r.total_ms += ms;
                    r.requests += 1;
                    r.cached += u64::from(t.cached);
                }
                None => rows.push(PassRow {
                    pass: t.pass,
                    total_ms: ms,
                    requests: 1,
                    cached: u64::from(t.cached),
                }),
            }
        }
    }
    rows
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn platform(name: &str) -> Option<(&'static str, Architecture)> {
    match name {
        "5930k" => Some(("5930k", presets::repro::intel_i7_5930k())),
        "6700" => Some(("6700", presets::repro::intel_i7_6700())),
        "a15" => Some(("a15", presets::repro::arm_cortex_a15())),
        _ => None,
    }
}

fn suite_nests(size: usize) -> Result<Vec<LoopNest>, String> {
    let mut nests = Vec::new();
    for b in Benchmark::all() {
        let built = if size == 0 { b.build_scaled() } else { b.build(size) };
        nests.extend(built.map_err(|e| format!("{}: {e}", b.name()))?);
    }
    Ok(nests)
}

fn run_platform(
    platform: &'static str,
    arch: &Architecture,
    nests: &[LoopNest],
    simulate: bool,
) -> Result<PlatformRow, String> {
    let config = PipelineConfig { simulate, ..PipelineConfig::default() };
    let session = Session::new(arch, config.clone()).map_err(|e| format!("{platform}: {e}"))?;

    let cold = session.batch().run(nests);
    let warm = session.batch().run(nests);

    // Warm-disk rung: populate a persistent directory, drop that
    // session, and replay the batch from a fresh session whose only
    // shared state with the writer is the on-disk tier.
    let root = std::env::temp_dir()
        .join(format!("palo-bench-pipeline-{platform}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let disk_config = PipelineConfig {
        cache: CacheConfig { dir: Some(root.clone()), ..CacheConfig::default() },
        ..config
    };
    let writer =
        Session::new(arch, disk_config.clone()).map_err(|e| format!("{platform}: {e}"))?;
    let populate = writer.batch().run(nests);
    drop(writer);
    let reader = Session::new(arch, disk_config).map_err(|e| format!("{platform}: {e}"))?;
    let warm_disk = reader.batch().run(nests);
    let _ = std::fs::remove_dir_all(&root);

    let failed = cold.failed() + warm.failed() + populate.failed() + warm_disk.failed();
    for report in [&cold, &warm, &populate, &warm_disk] {
        for item in &report.items {
            if let Err(e) = &item.outcome {
                eprintln!("bench_pipeline: {platform}/{}: {e}", item.name);
            }
        }
    }
    Ok(PlatformRow {
        platform,
        nests: nests.len(),
        cold_ms: cold.elapsed.as_secs_f64() * 1e3,
        warm_ms: warm.elapsed.as_secs_f64() * 1e3,
        warm_disk_ms: warm_disk.elapsed.as_secs_f64() * 1e3,
        passes: aggregate_passes(&cold),
        cold: cold.cache,
        warm: warm.cache,
        warm_disk: warm_disk.cache,
        failed,
    })
}

fn render_json(rows: &[PlatformRow], size: usize, simulate: bool) -> String {
    // Hand-rendered like the other bench reports: the vendored serde is
    // a no-op stub (offline build).
    let mut out = String::from("{\n  \"bench\": \"pipeline\",\n");
    let _ = writeln!(out, "  \"size\": {size},");
    let _ = writeln!(out, "  \"simulate\": {simulate},");
    out.push_str("  \"platforms\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = if r.warm_ms > 0.0 { r.cold_ms / r.warm_ms } else { f64::NAN };
        let disk_speedup =
            if r.warm_disk_ms > 0.0 { r.cold_ms / r.warm_disk_ms } else { f64::NAN };
        let _ = write!(
            out,
            "    {{\"platform\": \"{}\", \"nests\": {}, \
             \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"warm_speedup\": {:.2}, \
             \"warm_disk_ms\": {:.3}, \"warm_disk_speedup\": {:.2}, \
             \"cold_hits\": {}, \"cold_misses\": {}, \"cold_bypasses\": {}, \
             \"warm_hits\": {}, \"warm_misses\": {}, \"warm_bypasses\": {}, \
             \"warm_hit_rate\": {:.4}, \
             \"warm_disk_hits\": {}, \"warm_disk_misses\": {}, \
             \"warm_disk_hit_rate\": {:.4}, \"warm_disk_tier_hits\": {}, \
             \"warm_disk_anomalies\": {}, \"failed\": {}}}",
            r.platform,
            r.nests,
            r.cold_ms,
            r.warm_ms,
            speedup,
            r.warm_disk_ms,
            disk_speedup,
            r.cold.hits,
            r.cold.misses,
            r.cold.bypasses,
            r.warm.hits,
            r.warm.misses,
            r.warm.bypasses,
            r.warm.hit_rate(),
            r.warm_disk.hits,
            r.warm_disk.misses,
            r.warm_disk.hit_rate(),
            r.warm_disk.disk.hits,
            r.warm_disk.anomalies,
            r.failed,
        );
        // Per-pass cold-batch breakdown (classify → simulate, in
        // execution order).
        out.truncate(out.len() - 1); // reopen the platform object
        out.push_str(", \"cold_passes\": [");
        for (j, p) in r.passes.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"pass\": \"{}\", \"total_ms\": {:.3}, \"requests\": {}, \
                 \"cached\": {}}}",
                if j > 0 { ", " } else { "" },
                p.pass,
                p.total_ms,
                p.requests,
                p.cached,
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let size: usize = env_parse("PALO_BENCH_PIPELINE_SIZE", 0);
    let simulate = env_parse::<u8>("PALO_BENCH_PIPELINE_SIMULATE", 1) != 0;
    let min_hit_rate: f64 = env_parse("PALO_BENCH_PIPELINE_MIN_HIT_RATE", 0.5);
    let max_cold_ms: f64 = env_parse("PALO_BENCH_PIPELINE_MAX_COLD_MS", 0.0);
    let out_path = std::env::var("PALO_BENCH_PIPELINE_OUT")
        .unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let platforms = std::env::var("PALO_BENCH_PIPELINE_PLATFORMS")
        .unwrap_or_else(|_| "5930k,6700,a15".into());

    let nests = match suite_nests(size) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bench_pipeline: cannot build suite: {e}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    let mut failed = false;
    for name in platforms.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((label, arch)) = platform(name) else {
            eprintln!("bench_pipeline: unknown platform '{name}'");
            std::process::exit(2);
        };
        match run_platform(label, &arch, &nests, simulate) {
            Ok(row) => {
                println!(
                    "{:<6} {:>2} nests: cold {:>9.2} ms, warm {:>9.2} ms ({:.1}x), \
                     warm-disk {:>9.2} ms ({:.1}x), \
                     warm cache {} hits / {} misses / {} bypasses ({:.0}% hit rate), \
                     disk replay {} hits ({:.0}% hit rate)",
                    row.platform,
                    row.nests,
                    row.cold_ms,
                    row.warm_ms,
                    row.cold_ms / row.warm_ms.max(1e-9),
                    row.warm_disk_ms,
                    row.cold_ms / row.warm_disk_ms.max(1e-9),
                    row.warm.hits,
                    row.warm.misses,
                    row.warm.bypasses,
                    row.warm.hit_rate() * 100.0,
                    row.warm_disk.hits,
                    row.warm_disk.hit_rate() * 100.0,
                );
                for p in &row.passes {
                    println!(
                        "       {:<9} {:>9.2} ms over {:>3} requests ({} cached)",
                        p.pass, p.total_ms, p.requests, p.cached
                    );
                }
                if max_cold_ms > 0.0 && row.cold_ms > max_cold_ms {
                    eprintln!(
                        "bench_pipeline: {}: cold batch {:.1} ms above ceiling {:.1} ms",
                        row.platform, row.cold_ms, max_cold_ms
                    );
                    failed = true;
                }
                if row.failed > 0 {
                    eprintln!(
                        "bench_pipeline: {}: {} batch items failed",
                        row.platform, row.failed
                    );
                    failed = true;
                }
                for (rung, stats) in [("warm", &row.warm), ("warm-disk", &row.warm_disk)] {
                    if stats.hit_rate() <= min_hit_rate {
                        eprintln!(
                            "bench_pipeline: {}: {rung} hit rate {:.2} not above floor {:.2}",
                            row.platform,
                            stats.hit_rate(),
                            min_hit_rate
                        );
                        failed = true;
                    }
                    if stats.misses > 0 {
                        eprintln!(
                            "bench_pipeline: {}: {rung} batch recomputed {} cached requests",
                            row.platform, stats.misses
                        );
                        failed = true;
                    }
                }
                if row.warm_disk.anomalies > 0 {
                    eprintln!(
                        "bench_pipeline: {}: disk replay recorded {} cache anomalies",
                        row.platform, row.warm_disk.anomalies
                    );
                    failed = true;
                }
                rows.push(row);
            }
            Err(e) => {
                eprintln!("bench_pipeline: {e}");
                failed = true;
            }
        }
    }

    let json = render_json(&rows, size, simulate);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_pipeline: cannot write {out_path}: {e}");
        failed = true;
    } else {
        println!("wrote {out_path}");
    }
    if failed {
        std::process::exit(1);
    }
}
