//! Reimplementations of the TSS and TTS analytical tile-size models
//! (§5.2, Table 6).
//!
//! Both models are expressed by reconfiguring the shared cost machinery
//! of [`palo_core`]:
//!
//! * **TSS** \[Mehta et al., TACO 2013\] exploits reuse in the L1 and L2
//!   with associativity awareness but "without taking prefetching into
//!   account": prefetched references are *not* discounted from the cold
//!   miss counts, and no cache capacity is reserved for prefetch streams.
//! * **TTS / TurboTiling** \[Mehta et al., ICS 2016\] "optimizes for L2
//!   and L3 cache while taking advantage of hardware prefetching.
//!   However, prefetching is not considered in the analytical model":
//!   the same search is run one level down the hierarchy (L2 plays L1's
//!   role, the L3 — or memory on two-level platforms — plays L2's), again
//!   without prefetch discounting. The resulting tiles are characteristically
//!   larger than TSS's.

use palo_arch::Architecture;
use palo_core::{temporal, Decision, OptimizerConfig};
use palo_ir::{LoopNest, NestInfo};

/// TSS tile-size selection: L1+L2 reuse, associativity-aware, no
/// prefetch modeling.
pub fn tss(nest: &LoopNest, arch: &Architecture) -> Decision {
    let config = OptimizerConfig {
        prefetch_discount: false,
        halve_l2_sets: false,
        ..OptimizerConfig::default()
    };
    let info = NestInfo::analyze(nest);
    temporal::optimize(nest, &info, arch, &config)
}

/// TTS/TurboTiling tile-size selection: L2+L3 reuse, prefetch streams
/// assumed to fill the LLC but not modeled in the miss estimates.
pub fn tts(nest: &LoopNest, arch: &Architecture) -> Decision {
    let shifted = shift_hierarchy(arch);
    let config = OptimizerConfig {
        prefetch_discount: false,
        halve_l2_sets: false,
        ..OptimizerConfig::default()
    };
    let info = NestInfo::analyze(nest);
    temporal::optimize(nest, &info, &shifted, &config)
}

/// Builds a pseudo-architecture whose first two levels are the real L2
/// and L3 (so the level-generic search optimizes one level further out).
/// On two-level platforms the L2 doubles as both.
fn shift_hierarchy(arch: &Architecture) -> Architecture {
    let mut shifted = arch.clone();
    let caches = &arch.caches;
    shifted.caches = if caches.len() >= 3 {
        caches[1..].to_vec()
    } else {
        vec![caches[1].clone(), caches[1].clone()]
    };
    shifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_suite::kernels;

    #[test]
    fn tss_and_tts_produce_lowerable_schedules() {
        let nest = kernels::matmul(256).unwrap();
        let arch = presets::intel_i7_5930k();
        for d in [tss(&nest, &arch), tts(&nest, &arch)] {
            d.schedule().lower(&nest).unwrap();
            assert!(d.tile.iter().any(|&t| t > 1));
        }
    }

    #[test]
    fn tts_tiles_are_at_least_as_large_in_volume() {
        // TTS targets a bigger cache, so its tile volume should not be
        // smaller than TSS's.
        let nest = kernels::matmul(512).unwrap();
        let arch = presets::intel_i7_5930k();
        let v_tss: usize = tss(&nest, &arch).tile.iter().product();
        let v_tts: usize = tts(&nest, &arch).tile.iter().product();
        assert!(v_tts >= v_tss, "tts {v_tts} < tss {v_tss}");
    }

    #[test]
    fn shift_hierarchy_on_arm_reuses_l2() {
        let arm = presets::arm_cortex_a15();
        let shifted = shift_hierarchy(&arm);
        assert_eq!(shifted.caches.len(), 2);
        assert_eq!(shifted.caches[0].size_bytes, arm.l2().size_bytes);
    }
}
