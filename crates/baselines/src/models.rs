//! Reimplementations of the TSS and TTS analytical tile-size models
//! (§5.2, Table 6), expressed as [`CostModel`] impls.
//!
//! Both models are the shared cost machinery of [`palo_core::model`]
//! running under an *effective* configuration
//! ([`ModelKind::effective_config`]) — the same search engine, the same
//! [`CostBreakdown`](palo_core::CostBreakdown) reporting:
//!
//! * **TSS** \[Mehta et al., TACO 2013\] exploits reuse in the L1 and L2
//!   with associativity awareness but "without taking prefetching into
//!   account": prefetched references are *not* discounted from the cold
//!   miss counts, and no cache capacity is reserved for prefetch streams.
//! * **TTS / TurboTiling** \[Mehta et al., ICS 2016\] "optimizes for L2
//!   and L3 cache while taking advantage of hardware prefetching.
//!   However, prefetching is not considered in the analytical model":
//!   the same search is run one level down the hierarchy
//!   ([`palo_core::shift_hierarchy`]: L2 plays L1's role, the L3 — or
//!   memory on two-level platforms — plays L2's), again without prefetch
//!   discounting. The resulting tiles are characteristically larger than
//!   TSS's.

use palo_arch::Architecture;
use palo_core::model::{
    CandidatePoint, CostBreakdown, CostModel, PrefetchAwareModel, TileContext,
};
use palo_core::{temporal, Decision, ModelKind, OptimizerConfig};
use palo_ir::{LoopNest, NestInfo};

/// The TSS cost model: the paper's analytical machinery with the
/// prefetch awareness switched off. The prefetch-free knobs live in the
/// *effective* configuration carried by the [`TileContext`]
/// ([`ModelKind::Tss`]), so this impl only rebrands the shared scoring.
pub struct TssModel;

impl CostModel for TssModel {
    fn name(&self) -> &'static str {
        "tss"
    }
    fn lower_bound(&self, ctx: &TileContext<'_>, tile: &[usize]) -> Option<f64> {
        PrefetchAwareModel::named("tss").lower_bound(ctx, tile)
    }
    fn evaluate(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        PrefetchAwareModel::named("tss").evaluate(ctx, point)
    }
}

/// The TTS/TurboTiling cost model: [`TssModel`]'s scoring against the
/// shifted hierarchy ([`ModelKind::Tts`]'s effective architecture).
pub struct TtsModel;

impl CostModel for TtsModel {
    fn name(&self) -> &'static str {
        "tts"
    }
    fn lower_bound(&self, ctx: &TileContext<'_>, tile: &[usize]) -> Option<f64> {
        PrefetchAwareModel::named("tts").lower_bound(ctx, tile)
    }
    fn evaluate(
        &self,
        ctx: &TileContext<'_>,
        point: &CandidatePoint<'_>,
    ) -> Option<CostBreakdown> {
        PrefetchAwareModel::named("tts").evaluate(ctx, point)
    }
}

/// TSS tile-size selection: L1+L2 reuse, associativity-aware, no
/// prefetch modeling. (The original models are temporal-reuse tilers, so
/// every kernel runs through the temporal driver, as in the paper's
/// comparison.)
pub fn tss(nest: &LoopNest, arch: &Architecture) -> Decision {
    let mut config = ModelKind::Tss.effective_config(&OptimizerConfig::default());
    config.model = ModelKind::Tss;
    let info = NestInfo::analyze(nest);
    temporal::optimize_with_model(nest, &info, arch, &config, &TssModel).0
}

/// TTS/TurboTiling tile-size selection: L2+L3 reuse, prefetch streams
/// assumed to fill the LLC but not modeled in the miss estimates.
pub fn tts(nest: &LoopNest, arch: &Architecture) -> Decision {
    let mut config = ModelKind::Tts.effective_config(&OptimizerConfig::default());
    config.model = ModelKind::Tts;
    let shifted = ModelKind::Tts.effective_arch(arch);
    let info = NestInfo::analyze(nest);
    temporal::optimize_with_model(nest, &info, &shifted, &config, &TtsModel).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_core::{shift_hierarchy, Optimizer};
    use palo_suite::kernels;

    #[test]
    fn tss_and_tts_produce_lowerable_schedules() {
        let nest = kernels::matmul(256).unwrap();
        let arch = presets::intel_i7_5930k();
        for d in [tss(&nest, &arch), tts(&nest, &arch)] {
            d.schedule().lower(&nest).unwrap();
            assert!(d.tile.iter().any(|&t| t > 1));
        }
    }

    #[test]
    fn tts_tiles_are_at_least_as_large_in_volume() {
        // TTS targets a bigger cache, so its tile volume should not be
        // smaller than TSS's.
        let nest = kernels::matmul(512).unwrap();
        let arch = presets::intel_i7_5930k();
        let v_tss: usize = tss(&nest, &arch).tile.iter().product();
        let v_tts: usize = tts(&nest, &arch).tile.iter().product();
        assert!(v_tts >= v_tss, "tts {v_tts} < tss {v_tss}");
    }

    #[test]
    fn baseline_models_match_config_level_model_selection() {
        // The dedicated entry points and `OptimizerConfig::model` are two
        // doors to the same machinery: identical decisions, same cost
        // bits.
        let nest = kernels::matmul(256).unwrap();
        let arch = presets::intel_i7_5930k();
        for (kind, d_fn) in
            [(ModelKind::Tss, tss(&nest, &arch)), (ModelKind::Tts, tts(&nest, &arch))]
        {
            let config = OptimizerConfig { model: kind, ..OptimizerConfig::default() };
            let d_cfg = Optimizer::with_config(&arch, config).optimize(&nest);
            assert_eq!(d_fn.tile, d_cfg.tile, "{kind:?}");
            assert_eq!(d_fn.predicted_cost.to_bits(), d_cfg.predicted_cost.to_bits());
            assert_eq!(d_fn.breakdown, d_cfg.breakdown);
        }
    }

    #[test]
    fn shift_hierarchy_on_arm_reuses_l2() {
        let arm = presets::arm_cortex_a15();
        let shifted = shift_hierarchy(&arm);
        assert_eq!(shifted.caches.len(), 2);
        assert_eq!(shifted.caches[0].size_bytes, arm.l2().size_bytes);
    }
}
