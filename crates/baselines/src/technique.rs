//! Uniform access to every scheduling technique of the evaluation.

use crate::{auto_scheduler, baseline, tss, tts, Autotuner};
use palo_arch::Architecture;
use palo_core::{Optimizer, OptimizerConfig};
use palo_ir::LoopNest;
use palo_sched::Schedule;
use serde::{Deserialize, Serialize};

/// A scheduling technique compared in Figures 4–7 and Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// The paper's optimizer, NTI disabled ("Proposed").
    Proposed,
    /// The paper's optimizer with non-temporal stores ("Proposed+NTI").
    ProposedNti,
    /// The Halide-Auto-Scheduler-like heuristic.
    AutoScheduler,
    /// Parallel outer + vectorized inner, untiled.
    Baseline,
    /// Stochastic search with the given evaluation budget.
    Autotuner {
        /// Evaluation budget (the reproduction's stand-in for tuning
        /// wall-clock).
        budget: usize,
    },
    /// TSS analytical model (§5.2).
    Tss,
    /// TTS / TurboTiling analytical model (§5.2).
    Tts,
}

impl Technique {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            Technique::Proposed => "Proposed".into(),
            Technique::ProposedNti => "Proposed+NTI".into(),
            Technique::AutoScheduler => "Auto-Scheduler".into(),
            Technique::Baseline => "Baseline".into(),
            Technique::Autotuner { .. } => "Autotuner".into(),
            Technique::Tss => "TSS".into(),
            Technique::Tts => "TTS".into(),
        }
    }
}

/// Produces the schedule of `technique` for `nest` on `arch`.
///
/// `seed` feeds the autotuner's RNG and is ignored by the deterministic
/// techniques.
pub fn schedule_for(
    technique: Technique,
    nest: &LoopNest,
    arch: &Architecture,
    seed: u64,
) -> Schedule {
    schedule_for_within(technique, nest, arch, seed, None)
}

/// [`schedule_for`] under an optional wall-clock deadline.
///
/// The deadline is forwarded to the one technique with an unbounded
/// search — the autotuner, whose [`Autotuner::deadline`] guard stops
/// admitting candidate measurements once it expires (the best schedule
/// found so far is returned). The analytical techniques run in
/// microseconds and ignore it. This is the hook a request-serving
/// caller uses to propagate a per-request deadline's *remainder* into
/// the search itself, not just the trace walk.
pub fn schedule_for_within(
    technique: Technique,
    nest: &LoopNest,
    arch: &Architecture,
    seed: u64,
    deadline: Option<std::time::Duration>,
) -> Schedule {
    match technique {
        Technique::Proposed => {
            let config = OptimizerConfig { enable_nti: false, ..OptimizerConfig::default() };
            Optimizer::with_config(arch, config).optimize(nest).into_schedule()
        }
        Technique::ProposedNti => Optimizer::new(arch).optimize(nest).into_schedule(),
        Technique::AutoScheduler => auto_scheduler(nest, arch),
        Technique::Baseline => baseline(nest, arch),
        Technique::Autotuner { budget } => {
            let mut tuner = Autotuner::new(budget, seed);
            if let Some(d) = deadline {
                tuner = tuner.with_deadline(d);
            }
            tuner.tune(nest, arch).schedule
        }
        Technique::Tss => tss(nest, arch).into_schedule(),
        Technique::Tts => tts(nest, arch).into_schedule(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_suite::kernels;

    #[test]
    fn all_techniques_schedule_matmul() {
        let nest = kernels::matmul(128).unwrap();
        let arch = presets::intel_i7_6700();
        for t in [
            Technique::Proposed,
            Technique::ProposedNti,
            Technique::AutoScheduler,
            Technique::Baseline,
            Technique::Autotuner { budget: 3 },
            Technique::Tss,
            Technique::Tts,
        ] {
            let s = schedule_for(t, &nest, &arch, 1);
            s.lower(&nest).unwrap_or_else(|e| panic!("{}: {e}", t.label()));
        }
    }

    #[test]
    fn expired_deadline_autotune_still_returns_a_lowerable_schedule() {
        let nest = kernels::matmul(64).unwrap();
        let arch = presets::intel_i7_6700();
        let s = schedule_for_within(
            Technique::Autotuner { budget: 50 },
            &nest,
            &arch,
            7,
            Some(std::time::Duration::ZERO),
        );
        // The deadline guard stops the search, never the answer: the
        // fallback schedule must lower.
        s.lower(&nest).unwrap();
    }

    #[test]
    fn proposed_nti_differs_only_on_write_only_outputs() {
        let arch = presets::intel_i7_5930k();
        // matmul accumulates: NTI must not appear in either variant.
        let mm = kernels::matmul(128).unwrap();
        assert!(!schedule_for(Technique::ProposedNti, &mm, &arch, 0).uses_nt_stores());
        // transpose is write-only: only the NTI variant streams.
        let tp = kernels::tp(256).unwrap();
        assert!(schedule_for(Technique::ProposedNti, &tp, &arch, 0).uses_nt_stores());
        assert!(!schedule_for(Technique::Proposed, &tp, &arch, 0).uses_nt_stores());
    }
}
