//! The baseline schedule.

use palo_arch::Architecture;
use palo_ir::LoopNest;
use palo_sched::Schedule;

/// "The most basic optimization a developer may perform, which usually
/// includes parallelization of the outer loop and vectorization of the
/// inner one" (§5.1): the column loop is rotated innermost (as a Halide
/// developer writing `vectorize(x)` effectively does), the outermost loop
/// is parallelized, and nothing is tiled.
pub fn baseline(nest: &LoopNest, arch: &Architecture) -> Schedule {
    let mut s = Schedule::new();
    let names: Vec<&str> = nest.vars().iter().map(|v| v.name.as_str()).collect();
    let n = names.len();
    let col = nest.column_var().map(|v| v.index());

    // Rotate the column loop innermost, keeping everything else in
    // program order.
    let order: Vec<&str> = match col {
        Some(c) => {
            let mut o: Vec<&str> = (0..n).filter(|&v| v != c).map(|v| names[v]).collect();
            o.push(names[c]);
            o
        }
        None => names.clone(),
    };
    if n > 1 && order != names {
        s.reorder(&order);
    }

    if let Some(c) = col {
        let lanes = arch.vector_lanes(nest.dtype().size_bytes());
        if lanes > 1 && nest.extent(palo_ir::VarId(c)) >= lanes {
            s.vectorize(names[c], lanes);
        }
    }
    if let Some(&outer) = order.first() {
        if n > 1 {
            s.parallel(outer);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn matmul_baseline_rotates_j_innermost() {
        let nest = matmul(64);
        let arch = presets::intel_i7_6700();
        let low = baseline(&nest, &arch).lower(&nest).unwrap();
        let names: Vec<_> = low.loops().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["i", "k", "j"]);
        assert_eq!(low.vector_lanes(), 8);
        assert_eq!(low.parallel_loop(), Some(0));
    }

    #[test]
    fn small_inner_loop_not_vectorized() {
        let nest = matmul(4);
        let arch = presets::intel_i7_6700(); // 8 f32 lanes > 4
        let low = baseline(&nest, &arch).lower(&nest).unwrap();
        assert_eq!(low.vector_lanes(), 1);
    }
}
