//! The comparison techniques of the paper's evaluation (§5):
//!
//! * [`baseline`] — "the most basic optimization a developer may
//!   perform": parallelize the outer loop, vectorize the inner one;
//! * [`auto_scheduler`] — a faithful simplification of the Halide
//!   Auto-Scheduler \[Mullapudi et al. 2016\]: bounds-inference footprints,
//!   a *single* cache level, tiling only the output dimensions, no
//!   source-pattern awareness — exactly the two limitations the paper
//!   exploits;
//! * [`Autotuner`] — an OpenTuner-style stochastic search over the
//!   restricted schedule space the paper describes (output-dimension
//!   tiling only), with an evaluation budget standing in for wall-clock
//!   tuning time;
//! * [`tss`] — the TSS tile-size-selection model \[Mehta et al.,
//!   TACO 2013\]: L1+L2 reuse with associativity awareness but *no*
//!   prefetch modeling;
//! * [`tts`] — the TurboTiling model \[Mehta et al., ICS 2016\]: tiles for
//!   reuse in the last two levels (L2+L3), relying on prefetching to
//!   stream data inward but not discounting prefetched lines from its
//!   miss estimates.
//!
//! All techniques emit [`palo_sched::Schedule`]s comparable with the
//! proposed optimizer's output on the same measurement substrate.

mod autosched;
mod autotuner;
mod basic;
mod models;
mod technique;

pub use autosched::auto_scheduler;
pub use autotuner::{Autotuner, TuneResult};
pub use basic::baseline;
pub use models::{tss, tts, TssModel, TtsModel};
pub use technique::{schedule_for, schedule_for_within, Technique};
