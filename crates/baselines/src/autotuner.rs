//! An OpenTuner-style stochastic autotuner over the restricted Halide
//! schedule space the paper describes.
//!
//! The paper's autotuner observations (§2, §5.1) that this
//! reimplementation preserves:
//!
//! * it "iteratively run\[s\] an application using different optimization
//!   configurations" — here each candidate is *measured* on the cache
//!   simulator through the shared measurement oracle
//!   ([`SimulatedModel::score_lowered`], the same model the optimizer can
//!   select via `OptimizerConfig::model`);
//! * "part of the design space is sometimes actually excluded": candidates
//!   only tile the *output* dimensions (Fig. 5's observation), with
//!   power-of-two sizes;
//! * quality is budget-bound: the number of evaluations stands in for the
//!   paper's one-hour / one-day wall-clock budgets, and an optional
//!   wall-clock [`deadline`](Autotuner::deadline) bounds real time.
//!
//! Tuning is *fault-tolerant*: each candidate is evaluated with panics
//! caught ([`palo_core::catch_panic`]) and measurement errors recorded,
//! so one pathological candidate is skipped instead of aborting the run.
//!
//! Candidate *generation* is sequential (it consumes the seeded RNG, so
//! the candidate list is a pure function of the seed) with the
//! loop-invariant facts of the space hoisted into one [`CandidateSpace`];
//! candidate *measurement* — the expensive part, a full trace simulation
//! each — runs on the [`palo_core::search`] worker pool, merged by
//! `(estimated ms, candidate index)` so the parallel tuner returns
//! bit-identically what the sequential first-best rule returned.

use palo_arch::Architecture;
use palo_core::search::{self, cost_bits, resolve_threads, Candidate, SearchStats};
use palo_core::{PaloError, SimulatedModel};
use palo_ir::LoopNest;
use palo_sched::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best schedule found.
    pub schedule: Schedule,
    /// Its estimated execution time in milliseconds.
    pub est_ms: f64,
    /// Candidates evaluated.
    pub evals: usize,
    /// Candidates skipped because measuring them failed or panicked.
    pub skipped: usize,
    /// Whether the wall-clock deadline cut the run short.
    pub deadline_hit: bool,
    /// What the candidate search did (workers, wall time).
    pub search: SearchStats,
}

/// The stochastic autotuner.
#[derive(Debug, Clone)]
pub struct Autotuner {
    /// Evaluation budget ("1 hour" ≈ 20, "1 day" ≈ 150 in the
    /// reproduction's experiment mapping).
    pub budget: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Optional wall-clock guard: no new candidate starts once this much
    /// time has elapsed (`None` = evaluation budget only).
    pub deadline: Option<Duration>,
    /// Worker threads for candidate measurement (`None` defers to
    /// `PALO_SEARCH_THREADS`, then to the machine).
    pub threads: Option<usize>,
}

/// The loop-invariant facts of the schedule space, computed once per
/// tuning run instead of once per candidate.
struct CandidateSpace<'a> {
    extents: Vec<usize>,
    names: Vec<&'a str>,
    out_vars: Vec<usize>,
    col: Option<usize>,
    lanes: usize,
}

impl<'a> CandidateSpace<'a> {
    fn of(nest: &'a LoopNest, arch: &Architecture) -> Self {
        CandidateSpace {
            extents: nest.extents(),
            names: nest.vars().iter().map(|v| v.name.as_str()).collect(),
            out_vars: nest.statement().output.var_order().iter().map(|v| v.index()).collect(),
            col: nest.column_var().map(|v| v.index()),
            lanes: arch.vector_lanes(nest.dtype().size_bytes()),
        }
    }
}

/// One measured candidate, ranked by `(est ms, trial index)` — the index
/// tie-break reproduces the sequential tuner's first-best rule.
struct TunedCand {
    est_ms: f64,
    idx: [usize; 1],
}

impl Candidate for TunedCand {
    fn cost_key(&self) -> (u64, u64) {
        (cost_bits(self.est_ms), 0)
    }
    fn tie_key(&self) -> &[usize] {
        &self.idx
    }
}

impl Autotuner {
    /// A tuner with the given evaluation budget and seed, no deadline.
    pub fn new(budget: usize, seed: u64) -> Self {
        Autotuner { budget, seed, deadline: None, threads: None }
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the measurement worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Tunes `nest` for `arch`, returning the best schedule found within
    /// the budget — falling back to the untiled baseline (with an
    /// infinite time estimate) when every candidate fails to measure.
    pub fn tune(&self, nest: &LoopNest, arch: &Architecture) -> TuneResult {
        self.try_tune(nest, arch).unwrap_or_else(|_| TuneResult {
            schedule: crate::basic::baseline(nest, arch),
            est_ms: f64::INFINITY,
            evals: 0,
            skipped: self.budget.max(1),
            deadline_hit: false,
            search: SearchStats::default(),
        })
    }

    /// Fallible tuning: the best schedule found within the evaluation
    /// budget and deadline. The first candidate is always the untiled
    /// parallel+vectorize schedule, so the tuner never returns something
    /// worse than that.
    ///
    /// # Errors
    ///
    /// Returns the last measurement failure when *no* candidate could be
    /// evaluated (e.g. the trace budget aborts the first estimate, or the
    /// deadline was already spent), or [`PaloError::DeadlineExceeded`]
    /// when the deadline fired before any evaluation.
    pub fn try_tune(
        &self,
        nest: &LoopNest,
        arch: &Architecture,
    ) -> Result<TuneResult, PaloError> {
        let start = Instant::now();
        let space = CandidateSpace::of(nest, arch);

        // Generate candidates sequentially: the list is a pure function
        // of the seed, independent of worker count and deadline.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let schedules: Vec<Schedule> = (0..self.budget.max(1))
            .map(|trial| {
                if trial == 0 {
                    crate::basic::baseline(nest, arch)
                } else {
                    random_candidate(&space, &mut rng)
                }
            })
            .collect();

        // Measure in parallel; each measurement is a full (panic-guarded)
        // trace simulation. The deadline gates *starting* a measurement,
        // as in the sequential tuner.
        let evals = AtomicUsize::new(0);
        let skipped = AtomicUsize::new(0);
        let deadline_hit = AtomicBool::new(false);
        let last_err: Mutex<Option<PaloError>> = Mutex::new(None);
        let workers = resolve_threads(self.threads);
        let oracle = SimulatedModel::default();
        // Chunk of 1: each candidate is a whole trace simulation, so even
        // a budget of 10 is worth spreading across the pool.
        let best = search::search_min_grained(workers, schedules.len(), 1, |i, _incumbent| {
            if let Some(dl) = self.deadline {
                if start.elapsed() >= dl {
                    deadline_hit.store(true, Ordering::Relaxed);
                    return None;
                }
            }
            let sched = &schedules[i];
            let Ok(lowered) = sched.lower(nest) else { return None };
            // A panicking or failing measurement skips the candidate, it
            // does not abort the tuning run (`score_lowered` catches
            // panics internally).
            match oracle.score_lowered(nest, arch, &lowered) {
                Ok(bd) => {
                    evals.fetch_add(1, Ordering::Relaxed);
                    Some(TunedCand { est_ms: bd.total, idx: [i] })
                }
                Err(e) => {
                    skipped.fetch_add(1, Ordering::Relaxed);
                    if let Ok(mut slot) = last_err.lock() {
                        *slot = Some(e);
                    }
                    None
                }
            }
        });

        let stats = SearchStats {
            workers,
            candidates_evaluated: evals.load(Ordering::Relaxed) as u64,
            wall: start.elapsed(),
            ..SearchStats::default()
        };
        match best {
            Some(TunedCand { est_ms, idx: [i] }) => Ok(TuneResult {
                schedule: schedules[i].clone(),
                est_ms,
                evals: evals.load(Ordering::Relaxed),
                skipped: skipped.load(Ordering::Relaxed),
                deadline_hit: deadline_hit.load(Ordering::Relaxed),
                search: stats,
            }),
            None => {
                let held = last_err.lock().ok().and_then(|mut s| s.take());
                Err(held.unwrap_or(PaloError::DeadlineExceeded {
                    budget: self.deadline.unwrap_or(Duration::ZERO),
                }))
            }
        }
    }
}

/// One random point of the restricted space: power-of-two tiles on
/// output dims (possibly untiled), random inter order, intra order
/// with the column dim innermost, parallel outermost, vectorized
/// column.
fn random_candidate(space: &CandidateSpace<'_>, rng: &mut StdRng) -> Schedule {
    let CandidateSpace { extents, names, out_vars, col, lanes } = space;
    let n = extents.len();

    let mut s = Schedule::new();
    let mut tiled: Vec<usize> = Vec::new();
    let mut tile = extents.clone();
    for &v in out_vars {
        if rng.gen_bool(0.8) && extents[v] >= 4 {
            let max_pow = (usize::BITS - 1 - extents[v].leading_zeros()) as usize;
            let p = rng.gen_range(1..=max_pow);
            let t = (1usize << p).min(extents[v]);
            if t < extents[v] {
                tile[v] = t;
                tiled.push(v);
                s.split(names[v], &format!("{}_o", names[v]), &format!("{}_i", names[v]), t);
            }
        }
    }

    // Random inter order over the tiled dims.
    let mut inter = tiled.clone();
    for i in (1..inter.len()).rev() {
        let j = rng.gen_range(0..=i);
        inter.swap(i, j);
    }
    let mut order: Vec<String> = inter.iter().map(|&v| format!("{}_o", names[v])).collect();
    // Reduction loops in random relative position: before or after
    // the intra tiles (coin flip), column always innermost.
    let reductions: Vec<usize> = (0..n).filter(|&v| !out_vars.contains(&v)).collect();
    let red_first = rng.gen_bool(0.5);
    let mut intra: Vec<usize> = out_vars.clone();
    if let Some(c) = *col {
        intra.retain(|&v| v != c);
        intra.push(c);
    }
    let intra_names = |v: usize| {
        if tile[v] < extents[v] {
            format!("{}_i", names[v])
        } else {
            names[v].to_string()
        }
    };
    match (red_first, intra.split_last()) {
        (false, Some((last, rest))) => {
            order.extend(rest.iter().map(|&v| intra_names(v)));
            order.extend(reductions.iter().map(|&v| names[v].to_string()));
            order.push(intra_names(*last));
        }
        _ => {
            order.extend(reductions.iter().map(|&v| names[v].to_string()));
            order.extend(intra.iter().map(|&v| intra_names(v)));
        }
    }
    if order.len() > 1 {
        let refs: Vec<&str> = order.iter().map(|x| x.as_str()).collect();
        s.reorder(&refs);
    }
    if let (Some(c), Some(innermost)) = (*col, order.last()) {
        if *lanes > 1 && tile[c] >= *lanes {
            s.vectorize(innermost, *lanes);
        }
    }
    if n > 1 {
        if let Some(first) = order.first() {
            s.parallel(first);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let nest = matmul(64);
        let arch = presets::intel_i7_6700();
        let t = Autotuner::new(5, 42);
        let r1 = t.tune(&nest, &arch);
        let r2 = t.tune(&nest, &arch);
        assert_eq!(r1.schedule, r2.schedule);
        assert_eq!(r1.est_ms, r2.est_ms);
        assert_eq!(r1.skipped, 0);
        assert!(!r1.deadline_hit);
    }

    #[test]
    fn worker_count_does_not_change_the_winner() {
        let nest = matmul(64);
        let arch = presets::intel_i7_6700();
        let seq = Autotuner::new(8, 42).with_threads(1).tune(&nest, &arch);
        for threads in [2, 5] {
            let par = Autotuner::new(8, 42).with_threads(threads).tune(&nest, &arch);
            assert_eq!(par.schedule, seq.schedule, "threads {threads}");
            assert_eq!(par.est_ms.to_bits(), seq.est_ms.to_bits());
            assert_eq!(par.evals, seq.evals);
        }
    }

    #[test]
    fn bigger_budget_never_worse() {
        let nest = matmul(96);
        let arch = presets::intel_i7_6700();
        let small = Autotuner::new(3, 7).tune(&nest, &arch);
        let large = Autotuner::new(12, 7).tune(&nest, &arch);
        assert!(large.est_ms <= small.est_ms + 1e-12);
        assert_eq!(large.evals, 12);
    }

    #[test]
    fn candidates_are_always_lowerable() {
        let nest = matmul(64);
        let arch = presets::arm_cortex_a15();
        let r = Autotuner::new(10, 3).tune(&nest, &arch);
        assert_eq!(r.evals, 10, "every candidate must lower");
        r.schedule.lower(&nest).unwrap();
    }

    #[test]
    fn zero_deadline_reports_deadline_exceeded() {
        let nest = matmul(32);
        let arch = presets::intel_i7_6700();
        let t = Autotuner::new(10, 3).with_deadline(Duration::ZERO);
        let err = t.try_tune(&nest, &arch).unwrap_err();
        assert!(matches!(err, PaloError::DeadlineExceeded { .. }));
        // The infallible entry point still hands back a usable schedule.
        let r = t.tune(&nest, &arch);
        assert_eq!(r.evals, 0);
        assert!(r.est_ms.is_infinite());
        r.schedule.lower(&nest).unwrap();
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let nest = matmul(64);
        let arch = presets::intel_i7_6700();
        let plain = Autotuner::new(5, 42).tune(&nest, &arch);
        let guarded =
            Autotuner::new(5, 42).with_deadline(Duration::from_secs(3600)).tune(&nest, &arch);
        assert_eq!(plain.schedule, guarded.schedule);
        assert!(!guarded.deadline_hit);
    }
}
