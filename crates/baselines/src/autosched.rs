//! A faithful simplification of the Halide Auto-Scheduler
//! \[Mullapudi et al. 2016\].
//!
//! The paper characterizes the Auto-Scheduler's weaknesses (§2): "the
//! cache and tiling analysis it employs is limited (considering only one
//! level of cache hierarchy)" and "it uses the bounds inference
//! information ... and is thus unable to discern patterns in the source
//! code". This reimplementation keeps exactly those properties:
//!
//! * tiles only the *output* dimensions (bounds-inference view);
//! * sizes the tile so the bounds-inferred footprint fits one cache level
//!   (the L2), with no prefetcher model and no set-conflict analysis;
//! * same strategy for every kernel — no classification;
//! * never emits non-temporal stores.

use palo_arch::Architecture;
use palo_core::Footprints;
use palo_ir::LoopNest;
use palo_sched::Schedule;

/// Generates the Auto-Scheduler-like schedule for `nest` on `arch`.
pub fn auto_scheduler(nest: &LoopNest, arch: &Architecture) -> Schedule {
    let extents = nest.extents();
    let n = extents.len();
    let dts = nest.dtype().size_bytes();
    let lanes = arch.vector_lanes(dts);
    let fp = Footprints::new(nest, arch.l1().line_size);
    let budget = (arch.l2().size_bytes / dts) as f64;

    let out_vars: Vec<usize> =
        nest.statement().output.var_order().iter().map(|v| v.index()).collect();
    let col = nest.column_var().map(|v| v.index());

    // Grid search over power-of-two tiles on the output dims only,
    // maximizing per-tile compute while the bounds-inferred footprint
    // (reduction dims at full extent — the Auto-Scheduler's view after
    // bounds inference) fits in the L2.
    let mut tile: Vec<usize> = extents.clone();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut sizes: Vec<Vec<usize>> = Vec::new();
    for &v in &out_vars {
        let mut list = Vec::new();
        let mut t = 1usize;
        while t <= extents[v] {
            list.push(t);
            t *= 2;
        }
        if *list.last().unwrap() != extents[v] {
            list.push(extents[v]);
        }
        sizes.push(list);
    }
    let mut idx = vec![0usize; out_vars.len()];
    'grid: loop {
        for (pos, &v) in out_vars.iter().enumerate() {
            tile[v] = sizes[pos][idx[pos]];
        }
        let footprint: f64 = (0..fp.shapes().len()).map(|a| fp.elems(a, &tile)).sum();
        if footprint <= budget {
            let work: f64 = out_vars.iter().map(|&v| tile[v] as f64).product();
            // Prefer more work per tile; tie-break toward wider columns.
            let score = work + col.map(|c| tile[c] as f64).unwrap_or(0.0) * 1e-3;
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, tile.clone()));
            }
        }
        let mut d = idx.len();
        loop {
            if d == 0 {
                break 'grid;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < sizes[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
    let tile = best.map(|(_, t)| t).unwrap_or_else(|| extents.clone());

    // Emit: split tiled output dims, order = outer tiles (program order),
    // inner tiles, then reduction loops... with the column inner tile
    // innermost for vectorization (the Auto-Scheduler always vectorizes
    // the innermost storage dimension).
    let names: Vec<&str> = nest.vars().iter().map(|v| v.name.as_str()).collect();
    let mut s = Schedule::new();
    let tiled: Vec<usize> =
        out_vars.iter().copied().filter(|&v| tile[v] < extents[v]).collect();
    for &v in &tiled {
        s.split(names[v], &format!("{}_o", names[v]), &format!("{}_i", names[v]), tile[v]);
    }
    let mut order: Vec<String> = tiled.iter().map(|&v| format!("{}_o", names[v])).collect();
    // reduction loops (non-output vars) next
    for (v, name) in names.iter().enumerate().take(n) {
        if !out_vars.contains(&v) {
            order.push(name.to_string());
        }
    }
    // inner tiles / untiled output vars, column last
    let mut inner: Vec<usize> = out_vars.clone();
    if let Some(c) = col {
        inner.retain(|&v| v != c);
        inner.push(c);
    }
    for &v in &inner {
        if tile[v] < extents[v] {
            order.push(format!("{}_i", names[v]));
        } else {
            order.push(names[v].to_string());
        }
    }
    if order.len() > 1 {
        let refs: Vec<&str> = order.iter().map(|x| x.as_str()).collect();
        s.reorder(&refs);
    }
    if let Some(c) = col {
        if lanes > 1 && tile[c] >= lanes {
            s.vectorize(order.last().expect("nonempty"), lanes);
        }
    }
    if let Some(first) = order.first() {
        if n > 1 {
            s.parallel(first);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn matmul_tiles_output_dims_only() {
        let nest = matmul(512);
        let arch = presets::intel_i7_6700();
        let sched = auto_scheduler(&nest, &arch);
        let low = sched.lower(&nest).unwrap();
        let names: Vec<_> = low.loops().iter().map(|l| l.name.as_str()).collect();
        // k must remain a single full loop (reduction not tiled).
        assert!(names.contains(&"k"));
        assert!(!names.contains(&"k_o"));
        // j vectorized innermost.
        assert_eq!(*names.last().unwrap(), "j_i");
        assert!(low.vector_lanes() > 1);
        assert!(low.parallel_loop().is_some());
    }

    #[test]
    fn footprint_fits_l2() {
        // With k at full extent the footprint must still fit L2, so the
        // output tile cannot be the whole matrix.
        let nest = matmul(512);
        let arch = presets::intel_i7_6700();
        let sched = auto_scheduler(&nest, &arch);
        let text = format!("{sched}");
        assert!(text.contains(".split("), "{text}");
    }

    #[test]
    fn never_emits_nti() {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", 512);
        let j = b.var("j", 512);
        let src = b.array("src", &[512, 512]);
        let dst = b.array("dst", &[512, 512]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        let nest = b.build().unwrap();
        let sched = auto_scheduler(&nest, &presets::intel_i7_5930k());
        assert!(!sched.uses_nt_stores());
    }
}
