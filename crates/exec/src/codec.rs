//! [`Codec`] implementation for [`TimeEstimate`], so simulation reports
//! can live in the persistent artifact store. Floats round-trip through
//! their bit patterns, so a stored estimate replays bit-identically.

use crate::timing::TimeEstimate;
use palo_cachesim::{HierarchyStats, ReplayStats};
use palo_codec::{ByteReader, ByteWriter, Codec, DecodeError};

impl Codec for TimeEstimate {
    fn encode(&self, w: &mut ByteWriter) {
        w.write_f64(self.ms);
        w.write_f64(self.memory_cycles);
        w.write_f64(self.bus_cycles);
        w.write_f64(self.compute_cycles);
        w.write_f64(self.speedup);
        self.stats.encode(w);
        self.replay.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(TimeEstimate {
            ms: r.read_f64()?,
            memory_cycles: r.read_f64()?,
            bus_cycles: r.read_f64()?,
            compute_cycles: r.read_f64()?,
            speedup: r.read_f64()?,
            stats: HierarchyStats::decode(r)?,
            replay: ReplayStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_round_trip_bit_exactly() {
        let est = TimeEstimate {
            ms: 1.5,
            memory_cycles: 2.25,
            bus_cycles: 3.5,
            compute_cycles: 4.75,
            speedup: 8.0,
            stats: HierarchyStats::default(),
            replay: ReplayStats { runs: 1, run_lines: 2, cycles_skipped: 3, lines_skipped: 4 },
        };
        let bytes = est.encode_to_vec();
        let back = TimeEstimate::decode_from_slice(&bytes).unwrap();
        assert_eq!(back.ms.to_bits(), est.ms.to_bits());
        assert_eq!(back.stats, est.stats);
        assert_eq!(back.replay, est.replay);
    }
}
