//! Array storage for compute-mode execution.

use palo_ir::{ArrayId, LoopNest};

/// One `f64` buffer per array of a nest (values are interpreted per the
/// nest's dtype at the operator level).
///
/// For reduction kernels, schedule equivalence is checked bit-exactly, so
/// the default initialization uses small integers: sums of small integers
/// in `f64` are exact under any association order.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffers {
    data: Vec<Vec<f64>>,
}

impl Buffers {
    /// Allocates buffers for every array of `nest`, filled with a
    /// deterministic pattern of small integers (0..=7) derived from
    /// `seed`.
    pub fn for_nest(nest: &LoopNest, seed: u64) -> Self {
        let data = nest
            .arrays()
            .iter()
            .enumerate()
            .map(|(ai, decl)| {
                let mut state = seed ^ (ai as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (0..decl.len())
                    .map(|_| {
                        // xorshift64*
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % 8) as f64
                    })
                    .collect()
            })
            .collect();
        Buffers { data }
    }

    /// Allocates zero-filled buffers.
    pub fn zeroed(nest: &LoopNest) -> Self {
        Buffers { data: nest.arrays().iter().map(|d| vec![0.0; d.len()]).collect() }
    }

    /// The buffer of one array.
    pub fn array(&self, id: ArrayId) -> &[f64] {
        &self.data[id.index()]
    }

    /// Mutable buffer of one array.
    pub fn array_mut(&mut self, id: ArrayId) -> &mut [f64] {
        &mut self.data[id.index()]
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no arrays.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub(crate) fn raw(&mut self) -> &mut [Vec<f64>] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{DType, NestBuilder};

    fn nest() -> LoopNest {
        let mut b = NestBuilder::new("t", DType::F32);
        let i = b.var("i", 4);
        let a = b.array("A", &[4, 4]);
        let c = b.array("C", &[4]);
        let ld = b.load_expr(a, vec![i.into(), i.into()]);
        b.store(c, &[i], ld);
        b.build().unwrap()
    }

    #[test]
    fn deterministic_and_small() {
        let n = nest();
        let b1 = Buffers::for_nest(&n, 1);
        let b2 = Buffers::for_nest(&n, 1);
        assert_eq!(b1, b2);
        let b3 = Buffers::for_nest(&n, 2);
        assert_ne!(b1, b3);
        assert!(b1.array(palo_ir::ArrayId(0)).iter().all(|&v| (0.0..8.0).contains(&v)));
    }

    #[test]
    fn shapes_match_arrays() {
        let n = nest();
        let b = Buffers::for_nest(&n, 0);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.array(palo_ir::ArrayId(0)).len(), 16);
        assert_eq!(b.array(palo_ir::ArrayId(1)).len(), 4);
        let z = Buffers::zeroed(&n);
        assert!(z.array(palo_ir::ArrayId(0)).iter().all(|&v| v == 0.0));
    }
}
