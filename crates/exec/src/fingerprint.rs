//! Stable fingerprints for execution-layer values.
//!
//! [`TraceOptions`] is key *input* material for the pass framework's
//! Simulate pass (a different trace budget can legitimately produce a
//! different — aborted vs. complete — artifact), and [`TimeEstimate`] is
//! the pass's *artifact*, fingerprinted so cached estimates can be
//! identified and compared across sessions.

use crate::timing::TimeEstimate;
use crate::trace::TraceOptions;
use palo_ir::{StableHash, StableHasher};

impl StableHash for TraceOptions {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.flush_first.stable_hash(h);
        self.max_lines.stable_hash(h);
        match self.deadline {
            None => h.write_u8(0),
            Some(d) => {
                h.write_u8(1);
                h.write_u64(d.as_nanos() as u64);
            }
        }
    }
}

impl StableHash for TimeEstimate {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(self.ms);
        h.write_f64(self.memory_cycles);
        h.write_f64(self.bus_cycles);
        h.write_f64(self.compute_cycles);
        h.write_f64(self.speedup);
        let s = &self.stats;
        h.write_usize(s.levels.len());
        for l in &s.levels {
            h.write_u64(l.demand_hits);
            h.write_u64(l.demand_misses);
            h.write_u64(l.prefetch_hits);
            h.write_u64(l.prefetch_fills);
            h.write_u64(l.dirty_evictions);
        }
        h.write_u64(s.mem_demand_fills);
        h.write_u64(s.mem_prefetch_fills);
        h.write_u64(s.mem_writebacks);
        h.write_u64(s.nt_store_lines);
        h.write_u64(s.total_accesses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_options_digest_tracks_guards() {
        let base = TraceOptions::default().digest();
        assert_eq!(base, TraceOptions::default().digest());
        let capped = TraceOptions { max_lines: Some(10), ..TraceOptions::default() };
        assert_ne!(base, capped.digest());
        let deadlined = TraceOptions {
            deadline: Some(Duration::from_millis(5)),
            ..TraceOptions::default()
        };
        assert_ne!(base, deadlined.digest());
        // None vs Some(0) must differ (tagged encoding).
        let zero = TraceOptions { max_lines: Some(0), ..TraceOptions::default() };
        assert_ne!(base, zero.digest());
    }
}
