//! Compute-mode interpreter.

use crate::buffers::Buffers;
use crate::error::ExecError;
use palo_ir::{BinOp, Expr, LoopNest, Statement, UnOp};
use palo_sched::{LoweredNest, Schedule};

/// Executes `lowered` (a scheduled version of `nest`) over `bufs`.
///
/// Parallel loops are executed sequentially — a legal schedule's parallel
/// loops carry no loop-carried dependence on distinct output elements, so
/// the values are identical.
///
/// # Errors
///
/// Returns [`ExecError::OutOfBounds`] when a subscript leaves its array —
/// impossible for nests validated by `NestBuilder::build`, but a
/// hand-assembled nest can trigger it.
pub fn run(
    nest: &LoopNest,
    lowered: &LoweredNest,
    bufs: &mut Buffers,
) -> Result<(), ExecError> {
    let stmt = nest.statement();
    let strides: Vec<Vec<usize>> = nest.arrays().iter().map(|a| a.strides()).collect();
    lowered.try_for_each_point(|point| exec_stmt(stmt, point, &strides, bufs))
}

/// Executes `nest` in program order (the reference semantics).
///
/// # Errors
///
/// Propagates [`run`]'s errors, plus [`ExecError::Sched`] should the
/// empty schedule fail to lower (it cannot for a validated nest).
pub fn run_reference(nest: &LoopNest, bufs: &mut Buffers) -> Result<(), ExecError> {
    let lowered = Schedule::new().lower(nest)?;
    run(nest, &lowered, bufs)
}

fn exec_stmt(
    stmt: &Statement,
    point: &[i64],
    strides: &[Vec<usize>],
    bufs: &mut Buffers,
) -> Result<(), ExecError> {
    let value = eval(&stmt.rhs, point, strides, bufs)?;
    let out = &stmt.output;
    let off = out.linear_offset(point, &strides[out.array.index()]).ok_or_else(|| {
        ExecError::OutOfBounds { array: out.array.index(), point: point.to_vec() }
    })?;
    bufs.raw()[out.array.index()][off] = value;
    Ok(())
}

fn eval(
    e: &Expr,
    point: &[i64],
    strides: &[Vec<usize>],
    bufs: &Buffers,
) -> Result<f64, ExecError> {
    Ok(match e {
        Expr::Load(a) => {
            let off = a.linear_offset(point, &strides[a.array.index()]).ok_or_else(|| {
                ExecError::OutOfBounds { array: a.array.index(), point: point.to_vec() }
            })?;
            bufs.array(a.array)[off]
        }
        Expr::Const(c) => *c,
        Expr::Bin(op, l, r) => {
            let lv = eval(l, point, strides, bufs)?;
            let rv = eval(r, point, strides, bufs)?;
            match op {
                BinOp::Add => lv + rv,
                BinOp::Sub => lv - rv,
                BinOp::Mul => lv * rv,
                BinOp::Max => lv.max(rv),
                BinOp::Min => lv.min(rv),
                BinOp::And => ((lv as i64) & (rv as i64)) as f64,
            }
        }
        Expr::Un(op, inner) => {
            let v = eval(inner, point, strides, bufs)?;
            match op {
                UnOp::Neg => -v,
                UnOp::Abs => v.abs(),
            }
        }
        Expr::GeIndicator(l, r) => {
            if l.eval(point) >= r.eval(point) {
                1.0
            } else {
                0.0
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_ir::{ArrayId, DType, NestBuilder};

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn reference_matmul_matches_manual() {
        let nest = matmul(4);
        let mut bufs = Buffers::for_nest(&nest, 42);
        // Save inputs to compute expected result.
        let a: Vec<f64> = bufs.array(ArrayId(0)).to_vec();
        let b: Vec<f64> = bufs.array(ArrayId(1)).to_vec();
        let c0: Vec<f64> = bufs.array(ArrayId(2)).to_vec();
        run_reference(&nest, &mut bufs).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let mut expect = c0[i * 4 + j];
                for k in 0..4 {
                    expect += a[i * 4 + k] * b[k * 4 + j];
                }
                assert_eq!(bufs.array(ArrayId(2))[i * 4 + j], expect);
            }
        }
    }

    #[test]
    fn tiled_schedule_is_equivalent() {
        let nest = matmul(8);
        let mut s = Schedule::new();
        s.split("i", "ii", "it", 3) // non-dividing on purpose
            .split("j", "jj", "jt", 4)
            .split("k", "kk", "kt", 8)
            .reorder(&["ii", "kk", "jj", "it", "kt", "jt"]);
        let lowered = s.lower(&nest).unwrap();

        let mut reference = Buffers::for_nest(&nest, 7);
        let mut scheduled = reference.clone();
        run_reference(&nest, &mut reference).unwrap();
        run(&nest, &lowered, &mut scheduled).unwrap();
        assert_eq!(reference, scheduled);
    }

    #[test]
    fn guard_indicator_executes_triangular() {
        // out[i] = sum_k (k >= i) * A[i][k]  — upper-triangular row sums
        let mut b = NestBuilder::new("tri", DType::F32);
        let i = b.var("i", 4);
        let k = b.var("k", 4);
        let a = b.array("A", &[4, 4]);
        let out = b.array("out", &[4]);
        let guard = palo_ir::ExprBuilder::ge(k, i);
        let term = guard * b.load(a, &[i, k]);
        b.accumulate(out, &[i], term);
        let nest = b.build().unwrap();
        let mut bufs = Buffers::zeroed(&nest);
        for v in bufs.array_mut(ArrayId(0)) {
            *v = 1.0;
        }
        run_reference(&nest, &mut bufs).unwrap();
        assert_eq!(bufs.array(ArrayId(1)), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn max_min_neg_abs_operators() {
        use palo_ir::{BinOp, Expr, UnOp};
        let mut b = NestBuilder::new("ops", DType::F32);
        let i = b.var("i", 3);
        let a = b.array("A", &[3]);
        let bb = b.array("B", &[3]);
        let out = b.array("out", &[3]);
        // out = max(A, B) + min(A, B) - abs(-A)  ==  A + B - |A|
        let max = Expr::bin(BinOp::Max, b.load(a, &[i]), b.load(bb, &[i]));
        let min = Expr::bin(BinOp::Min, b.load(a, &[i]), b.load(bb, &[i]));
        let neg = Expr::Un(UnOp::Neg, Box::new(b.load(a, &[i])));
        let abs = Expr::Un(UnOp::Abs, Box::new(neg));
        b.store(out, &[i], max + min - abs);
        let nest = b.build().unwrap();
        let mut bufs = Buffers::zeroed(&nest);
        bufs.array_mut(ArrayId(0)).copy_from_slice(&[3.0, 1.0, 5.0]);
        bufs.array_mut(ArrayId(1)).copy_from_slice(&[2.0, 4.0, 5.0]);
        run_reference(&nest, &mut bufs).unwrap();
        assert_eq!(bufs.array(ArrayId(2)), &[2.0, 4.0, 5.0]);
    }

    #[test]
    fn and_operator_masks_bits() {
        let mut b = NestBuilder::new("mask", DType::I32);
        let i = b.var("i", 4);
        let a = b.array("A", &[4]);
        let m = b.array("M", &[4]);
        let out = b.array("out", &[4]);
        let rhs = Expr::bin(BinOp::And, b.load(a, &[i]), b.load(m, &[i]));
        b.store(out, &[i], rhs);
        let nest = b.build().unwrap();
        let mut bufs = Buffers::zeroed(&nest);
        bufs.array_mut(ArrayId(0)).copy_from_slice(&[0b1100_i32 as f64, 7.0, 5.0, 15.0]);
        bufs.array_mut(ArrayId(1)).copy_from_slice(&[0b1010_i32 as f64, 3.0, 4.0, 8.0]);
        run_reference(&nest, &mut bufs).unwrap();
        assert_eq!(bufs.array(ArrayId(2)), &[8.0, 3.0, 4.0, 8.0]);
    }
}
