//! Trace-mode execution: walk a lowered nest and feed the address stream
//! of every array reference to a streaming [`LineSink`].
//!
//! The walker never materializes a trace: contiguous runs of the
//! innermost loop are batched into [`LineSink::access_range`] calls and
//! constant-stride walks into run-compressed [`LineSink::access_run`]
//! events (line-granular), which keeps tracing of multi-hundred-megabyte
//! iteration spaces tractable while preserving the per-line
//! demand/prefetch behaviour the paper's analysis is about. On top of
//! run compression, simple non-innermost loops are watched for
//! *steady-state cycles*: when consecutive iterations produce the same
//! per-iteration fingerprint and the sink proves its state repeats up to
//! a line translation, the remaining iterations are applied analytically
//! ([`LineSink::apply_cycles`]) instead of being walked. Both layers are
//! exact — statistics are bit-identical to the scalar walk, which stays
//! available via [`TraceOptions::run_compressed`] `= false` as the
//! differential-testing reference. The production sink is the cache
//! simulator ([`Hierarchy`]); a [`palo_cachesim::CountingSink`] sizes a
//! trace without simulating it.

use crate::error::TraceError;
use palo_cachesim::{AccessKind, AccessRun, CycleSnapshot, Hierarchy, LineSink};
use palo_ir::{Access, LoopNest};
use palo_sched::LoweredNest;
use std::time::{Duration, Instant};

/// Options for a trace run.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Flush caches and stream tables before tracing (cold start).
    pub flush_first: bool,
    /// Abort with [`TraceError::LineBudgetExceeded`] once the trace has
    /// issued this many line accesses (`None` = unlimited).
    pub max_lines: Option<u64>,
    /// Abort with [`TraceError::DeadlineExceeded`] once the trace has run
    /// for this long (`None` = unlimited). Checked coarsely (every few
    /// thousand walk steps), so overrun is bounded but not zero.
    pub deadline: Option<Duration>,
    /// Use the run-compressed replay engine (batched [`AccessRun`]
    /// events plus steady-state cycle skipping). Statistics are
    /// bit-identical either way; `false` forces the scalar reference
    /// path and exists for differential testing and debugging.
    pub run_compressed: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            flush_first: true,
            max_lines: None,
            deadline: None,
            run_compressed: true,
        }
    }
}

struct TraceAccess {
    kind: AccessKind,
    /// Current byte address (updated incrementally during the walk).
    addr: i64,
    /// Address delta in bytes per unit step of each original variable.
    var_strides: Vec<i64>,
    /// Address delta in bytes per step of each lowered loop
    /// (`None` for fused loops, which are recomputed per iteration).
    loop_deltas: Vec<Option<i64>>,
}

struct Walker<'a> {
    loops: &'a [palo_sched::LoweredLoop],
    extents: Vec<usize>,
    values: Vec<i64>,
    accesses: Vec<TraceAccess>,
    dts: i64,
    line: i64,
    /// Whether the line size is a power of two (required by the
    /// run-compression shift arithmetic).
    line_pow2: bool,
    /// Emit run-compressed events and watch for steady-state cycles.
    compressed: bool,
    /// Per-depth count of failed cycle verifications; a depth that burns
    /// [`MAX_VERIFY_FAILS`] attempts stops snapshotting for the rest of
    /// the trace (snapshots and state compares are O(cache capacity)).
    cycle_fails: Vec<u32>,
    /// Absolute `total_accesses` threshold (entry count + budget).
    line_limit: Option<u64>,
    /// The configured budget, for the error report.
    max_lines: u64,
    /// Absolute wall-clock cutoff.
    deadline_at: Option<Instant>,
    /// The configured wall-clock budget, for the error report.
    deadline_budget: Duration,
    /// Walk steps since the last deadline probe (clock reads are
    /// expensive relative to a walk step).
    steps_since_check: u32,
}

/// How many walk steps pass between wall-clock probes.
const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// Maximum run length issued per [`LineSink::access_run`] call; longer
/// strided walks are chunked so the budget/deadline guards keep their
/// scalar-path granularity.
const RUN_CHUNK: u64 = 4096;

/// Largest steady-state period the cycle detector will propose.
const MAX_PERIOD: usize = 128;

/// Per-iteration fingerprints retained for period guessing.
const PROBE_WINDOW: usize = 256;

/// Minimum trip count of a loop before cycle detection is attempted.
const MIN_CYCLE_STEPS: usize = 8;

/// Failed state verifications before a loop depth gives up on cycle
/// detection for the rest of the trace. Generous because warm-up defeats
/// early attempts by design: fingerprints go periodic as soon as the
/// traffic does (streaming misses look alike immediately), but the state
/// only becomes translation-periodic once every cache level has wrapped.
/// The exponential attempt back-off makes the later, post-warm-up
/// attempts cheap enough to afford.
const MAX_VERIFY_FAILS: u32 = 6;

/// Watches the per-iteration fingerprint stream of one simple loop for a
/// repeating period, then asks the sink to verify that a whole period
/// really is a state translation before any iteration is skipped.
/// Detection is heuristic; *only* [`LineSink::cycle_matches`] gates
/// skipping, so a wrong guess costs time, never accuracy.
struct CycleDetector {
    probes: Vec<u64>,
    state: DetectorState,
    fails: u32,
    /// No snapshot before this step — exponential back-off after failed
    /// verifications, so attempts straddle the warm-up instead of all
    /// burning out inside it.
    cooldown_until: usize,
}

enum DetectorState {
    /// Accumulating fingerprints, looking for a candidate period.
    Watch,
    /// A candidate period `p` was found and the sink state snapshotted;
    /// `left` more iterations complete the candidate cycle.
    Verify { snap: CycleSnapshot, p: usize, left: usize, lines_at_snap: u64 },
    /// Detection abandoned (or a skip already applied) for this loop.
    Off,
}

impl CycleDetector {
    fn new(fails: u32) -> Self {
        let state =
            if fails >= MAX_VERIFY_FAILS { DetectorState::Off } else { DetectorState::Watch };
        CycleDetector { probes: Vec::new(), state, fails, cooldown_until: 0 }
    }

    fn push_probe(&mut self, probe: u64) {
        if self.probes.len() == 2 * PROBE_WINDOW {
            self.probes.drain(..PROBE_WINDOW);
        }
        self.probes.push(probe);
    }

    /// Smallest period `p` such that the last `p` fingerprints repeat the
    /// `p` before them.
    fn find_period(&self) -> Option<usize> {
        let n = self.probes.len();
        (1..=MAX_PERIOD.min(n / 2))
            .find(|&p| self.probes[n - p..] == self.probes[n - 2 * p..n - p])
    }
}

/// Streams every memory reference of `lowered` (a schedule of `nest`)
/// into the cache simulator `hier`. Equivalent to [`trace_stream`] with a
/// [`Hierarchy`] sink.
///
/// # Errors
///
/// As for [`trace_stream`].
pub fn trace_into(
    nest: &LoopNest,
    lowered: &LoweredNest,
    hier: &mut Hierarchy,
    opts: &TraceOptions,
) -> Result<(), TraceError> {
    trace_stream(nest, lowered, hier, opts)
}

/// Streams every memory reference of `lowered` (a schedule of `nest`)
/// into `sink`, one batched contiguous run at a time.
///
/// Array base addresses are assigned sequentially, page-aligned, with one
/// guard page between arrays, mirroring what a real allocator does for
/// large arrays.
///
/// # Errors
///
/// Returns [`TraceError::LineBudgetExceeded`] / [`TraceError::DeadlineExceeded`]
/// when the corresponding [`TraceOptions`] guard trips (whatever the sink
/// accumulated up to that point is kept), and
/// [`TraceError::MissingLoopDelta`] when the lowered nest is internally
/// inconsistent.
pub fn trace_stream<S: LineSink>(
    nest: &LoopNest,
    lowered: &LoweredNest,
    sink: &mut S,
    opts: &TraceOptions,
) -> Result<(), TraceError> {
    if opts.flush_first {
        sink.flush();
    }
    let dts = nest.dtype().size_bytes() as i64;
    let nvars = nest.vars().len();

    // Page-aligned base address per array.
    let mut bases = Vec::with_capacity(nest.arrays().len());
    let mut cursor: i64 = 4096;
    for decl in nest.arrays() {
        bases.push(cursor);
        let bytes = decl.len() as i64 * dts;
        cursor += (bytes + 4095) / 4096 * 4096 + 4096;
    }

    let strides: Vec<Vec<usize>> = nest.arrays().iter().map(|a| a.strides()).collect();
    let mk = |acc: &Access, kind: AccessKind| -> TraceAccess {
        let st = &strides[acc.array.index()];
        let mut var_strides = vec![0i64; nvars];
        let mut addr = bases[acc.array.index()];
        for (ix, &s) in acc.indices.iter().zip(st) {
            addr += ix.offset() * s as i64 * dts;
            for &(v, c) in ix.terms() {
                var_strides[v.index()] += c * s as i64 * dts;
            }
        }
        let loop_deltas = lowered
            .loops()
            .iter()
            .map(|l| {
                if l.contribs.len() == 1 && l.contribs[0].divisor == 1 {
                    let c = l.contribs[0];
                    Some(c.stride as i64 * var_strides[c.var.index()])
                } else {
                    None
                }
            })
            .collect();
        TraceAccess { kind, addr, var_strides, loop_deltas }
    };

    let stmt = nest.statement();
    let mut accesses: Vec<TraceAccess> =
        stmt.inputs().map(|a| mk(a, AccessKind::Load)).collect();
    let store_kind = if lowered.nt_store() { AccessKind::NtStore } else { AccessKind::Store };
    accesses.push(mk(&stmt.output, store_kind));

    let line = sink.line_size() as i64;
    let mut walker = Walker {
        loops: lowered.loops(),
        extents: lowered.extents().to_vec(),
        values: vec![0i64; nvars],
        accesses,
        dts,
        line,
        line_pow2: line.count_ones() == 1,
        compressed: opts.run_compressed,
        cycle_fails: vec![0; lowered.loops().len()],
        line_limit: opts.max_lines.map(|m| sink.lines_issued().saturating_add(m)),
        max_lines: opts.max_lines.unwrap_or(u64::MAX),
        deadline_at: opts.deadline.map(|d| Instant::now() + d),
        deadline_budget: opts.deadline.unwrap_or(Duration::ZERO),
        steps_since_check: 0,
    };
    walker.walk(0, sink)
}

impl Walker<'_> {
    /// Trips the line-budget and wall-clock guards. Called once per walk
    /// step; the clock is only read every [`DEADLINE_CHECK_INTERVAL`]
    /// steps.
    fn check_guards(&mut self, sink: &impl LineSink) -> Result<(), TraceError> {
        if let Some(limit) = self.line_limit {
            if sink.lines_issued() >= limit {
                return Err(TraceError::LineBudgetExceeded { limit: self.max_lines });
            }
        }
        if let Some(at) = self.deadline_at {
            // Probe the clock on the very first step (so an
            // already-expired deadline aborts immediately even for tiny
            // traces), then once per interval.
            if self.steps_since_check == 0 && Instant::now() >= at {
                return Err(TraceError::DeadlineExceeded { budget: self.deadline_budget });
            }
            self.steps_since_check += 1;
            if self.steps_since_check >= DEADLINE_CHECK_INTERVAL {
                self.steps_since_check = 0;
            }
        }
        Ok(())
    }

    fn missing_delta(&self, d: usize) -> TraceError {
        TraceError::MissingLoopDelta { loop_name: self.loops[d].name.clone() }
    }
    /// In-bounds steps of loop `d` (which must be simple) from the current
    /// variable values.
    fn simple_steps(&self, d: usize) -> (usize, usize, i64) {
        let l = &self.loops[d];
        let c = l.contribs[0];
        let v = c.var.index();
        let stride = c.stride as i64;
        let remaining = self.extents[v] as i64 - self.values[v];
        let steps = if remaining <= 0 {
            0
        } else if stride == 0 {
            l.trip
        } else {
            (l.trip as i64).min((remaining + stride - 1) / stride) as usize
        };
        (steps, v, stride)
    }

    fn walk<S: LineSink>(&mut self, d: usize, sink: &mut S) -> Result<(), TraceError> {
        self.check_guards(sink)?;
        if d == self.loops.len() {
            for a in &self.accesses {
                sink.access_range(a.addr as u64, self.dts as u64, a.kind);
            }
            return Ok(());
        }
        let l = &self.loops[d];
        let simple = l.contribs.len() == 1 && l.contribs[0].divisor == 1;
        let innermost = d + 1 == self.loops.len();

        if simple {
            let (steps, v, stride) = self.simple_steps(d);
            if innermost {
                return self.issue_innermost(d, steps, sink);
            }
            if let Some(delta) = self.cycle_delta(d, steps, sink) {
                return self.walk_cyclic(d, steps, v, stride, delta, sink);
            }
            for _ in 0..steps {
                self.walk(d + 1, sink)?;
                self.values[v] += stride;
                for ai in 0..self.accesses.len() {
                    match self.accesses[ai].loop_deltas[d] {
                        Some(delta) => self.accesses[ai].addr += delta,
                        None => return Err(self.missing_delta(d)),
                    }
                }
            }
            // restore
            self.values[v] -= stride * steps as i64;
            for ai in 0..self.accesses.len() {
                match self.accesses[ai].loop_deltas[d] {
                    Some(delta) => self.accesses[ai].addr -= delta * steps as i64,
                    None => return Err(self.missing_delta(d)),
                }
            }
        } else {
            // Fused loop: recompute contributions per iteration.
            let l = l.clone();
            for t in 0..l.trip {
                let mut ok = true;
                let mut addr_deltas = vec![0i64; self.accesses.len()];
                let mut val_deltas = vec![(0usize, 0i64); 0];
                for c in &l.contribs {
                    let contrib = c.value(t) as i64;
                    let v = c.var.index();
                    val_deltas.push((v, contrib));
                    if self.values[v] + contrib >= self.extents[v] as i64 {
                        ok = false;
                    }
                    for (ai, a) in self.accesses.iter().enumerate() {
                        addr_deltas[ai] += contrib * a.var_strides[v];
                    }
                }
                if !ok {
                    continue;
                }
                for &(v, dv) in &val_deltas {
                    self.values[v] += dv;
                }
                for (ai, a) in self.accesses.iter_mut().enumerate() {
                    a.addr += addr_deltas[ai];
                }
                self.walk(d + 1, sink)?;
                for &(v, dv) in &val_deltas {
                    self.values[v] -= dv;
                }
                for (ai, a) in self.accesses.iter_mut().enumerate() {
                    a.addr -= addr_deltas[ai];
                }
            }
        }
        Ok(())
    }

    /// Byte delta per iteration of simple loop `d` when the loop is
    /// eligible for steady-state cycle detection, else `None`.
    ///
    /// Eligibility requires that one iteration's traffic is an exact
    /// translation of the previous one: every access must advance by the
    /// *same* byte delta (so the whole address image shifts uniformly),
    /// the delta must be whole lines (so the shift is a line
    /// translation; zero is fine — pure repetition), and no other loop
    /// at any depth may drive this loop's variable (otherwise descendant
    /// guard clamping would vary across iterations).
    fn cycle_delta<S: LineSink>(&self, d: usize, steps: usize, sink: &S) -> Option<i64> {
        if !self.compressed
            || !self.line_pow2
            || steps < MIN_CYCLE_STEPS
            || !sink.supports_cycle_skip()
        {
            return None;
        }
        let v = self.loops[d].contribs[0].var.index();
        for (j, l) in self.loops.iter().enumerate() {
            if j != d && l.contribs.iter().any(|c| c.var.index() == v) {
                return None;
            }
        }
        let mut delta: Option<i64> = None;
        for a in &self.accesses {
            let da = a.loop_deltas[d]?;
            match delta {
                None => delta = Some(da),
                Some(x) if x == da => {}
                _ => return None,
            }
        }
        let delta = delta?;
        if delta % self.line != 0 {
            return None;
        }
        Some(delta)
    }

    /// Walks simple loop `d` (every access advancing `delta` bytes per
    /// iteration) while watching for steady-state cycles. Identical to
    /// the plain walk until the sink *proves* a candidate cycle is a
    /// state translation, at which point the remaining whole cycles are
    /// applied analytically and skipped.
    fn walk_cyclic<S: LineSink>(
        &mut self,
        d: usize,
        steps: usize,
        v: usize,
        stride: i64,
        delta: i64,
        sink: &mut S,
    ) -> Result<(), TraceError> {
        let t_iter = delta / self.line;
        let mut det = CycleDetector::new(self.cycle_fails[d]);
        let mut step = 0usize;
        while step < steps {
            self.walk(d + 1, sink)?;
            self.values[v] += stride;
            for a in &mut self.accesses {
                a.addr += delta;
            }
            step += 1;
            match std::mem::replace(&mut det.state, DetectorState::Off) {
                DetectorState::Off => {}
                DetectorState::Watch => {
                    let probe = sink.replay_probe();
                    det.push_probe(probe);
                    det.state = DetectorState::Watch;
                    if step >= det.cooldown_until {
                        if let Some(p) = det.find_period() {
                            // Only worth snapshotting if, after the p
                            // verification iterations, at least one whole
                            // cycle would remain to skip.
                            if steps - step >= 2 * p {
                                if let Some(snap) = sink.cycle_snapshot() {
                                    det.state = DetectorState::Verify {
                                        snap,
                                        p,
                                        left: p,
                                        lines_at_snap: sink.lines_issued(),
                                    };
                                }
                            }
                        }
                    }
                }
                DetectorState::Verify { snap, p, mut left, lines_at_snap } => {
                    let probe = sink.replay_probe();
                    left -= 1;
                    if left > 0 {
                        det.push_probe(probe);
                        det.state = DetectorState::Verify { snap, p, left, lines_at_snap };
                        continue;
                    }
                    let t_total = t_iter * p as i64;
                    let lines_per_cycle = sink.lines_issued() - lines_at_snap;
                    if sink.cycle_matches(&snap, t_total) {
                        let mut m = (steps - step) as u64 / p as u64;
                        if let (Some(limit), true) = (self.line_limit, lines_per_cycle > 0) {
                            // Let the skip cross the budget by at most one
                            // cycle so the guard still fires promptly.
                            let room = limit.saturating_sub(sink.lines_issued());
                            m = m.min(room / lines_per_cycle + 1);
                        }
                        if t_total != 0 {
                            // Keep the accumulated translation far from
                            // i64 overflow.
                            m = m.min(((1u64 << 62) / t_total.unsigned_abs()).max(1));
                        }
                        if m > 0 {
                            sink.apply_cycles(&snap, t_total, m);
                            let skipped = (m * p as u64) as usize;
                            self.values[v] += stride * skipped as i64;
                            for a in &mut self.accesses {
                                a.addr += delta * skipped as i64;
                            }
                            step += skipped;
                        }
                        // det.state stays Off: one skip per loop entry.
                    } else {
                        det.fails += 1;
                        self.cycle_fails[d] = det.fails;
                        if det.fails < MAX_VERIFY_FAILS {
                            det.cooldown_until =
                                step.saturating_add((p << det.fails).min(1 << 16));
                            det.push_probe(probe);
                            det.state = DetectorState::Watch;
                        }
                    }
                }
            }
        }
        // restore
        self.values[v] -= stride * steps as i64;
        for a in &mut self.accesses {
            a.addr -= delta * steps as i64;
        }
        Ok(())
    }

    /// Issues the accesses of the innermost (simple) loop with `steps`
    /// in-bounds iterations, batching contiguous runs.
    fn issue_innermost<S: LineSink>(
        &mut self,
        d: usize,
        steps: usize,
        sink: &mut S,
    ) -> Result<(), TraceError> {
        if steps == 0 {
            return Ok(());
        }
        let n = steps as i64;
        for ai in 0..self.accesses.len() {
            self.check_guards(sink)?;
            let a = &self.accesses[ai];
            let Some(delta) = a.loop_deltas[d] else {
                return Err(self.missing_delta(d));
            };
            if delta == 0 {
                sink.access_range(a.addr as u64, self.dts as u64, a.kind);
            } else if delta > 0 && delta <= self.line {
                let span = (n - 1) * delta + self.dts;
                sink.access_range(a.addr as u64, span as u64, a.kind);
            } else if delta < 0 && -delta <= self.line {
                let start = a.addr + (n - 1) * delta;
                let span = (n - 1) * (-delta) + self.dts;
                sink.access_range(start as u64, span as u64, a.kind);
            } else if self.compressed
                && self.line_pow2
                && delta % self.line == 0
                && a.addr % self.line + self.dts <= self.line
            {
                // Whole-line stride with the element inside one line:
                // every step touches exactly one line, so the walk is a
                // single constant-stride line run. Chunked so the guards
                // keep firing at their scalar granularity.
                let bits = self.line.trailing_zeros();
                let stride_lines = delta / self.line;
                let kind = a.kind;
                let mut start_line = (a.addr as u64) >> bits;
                let mut remaining = steps as u64;
                while remaining > 0 {
                    let count = remaining.min(RUN_CHUNK);
                    sink.access_run(&AccessRun { start_line, stride_lines, count, kind });
                    start_line = start_line.wrapping_add_signed(stride_lines * count as i64);
                    remaining -= count;
                    if remaining > 0 {
                        self.check_guards(sink)?;
                    }
                }
            } else {
                let (mut addr, dts, kind) = (a.addr, self.dts, a.kind);
                for step in 0..steps {
                    if step % DEADLINE_CHECK_INTERVAL as usize == 0 {
                        self.check_guards(sink)?;
                    }
                    sink.access_range(addr as u64, dts as u64, kind);
                    addr += delta;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};
    use palo_sched::Schedule;

    fn copy_nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let src = b.array("src", &[n, n]);
        let dst = b.array("dst", &[n, n]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        b.build().unwrap()
    }

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn copy_touches_each_line_once_per_array() {
        let n = 256; // 256*256*4 = 256 KiB per array = 4096 lines
        let nest = copy_nest(n);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 4096 lines read + 4096 lines written
        assert_eq!(hier.stats().total_accesses, 8192);
    }

    #[test]
    fn nt_store_lines_counted_for_scheduled_store() {
        let nest = copy_nest(64);
        let mut s = Schedule::new();
        s.store_nt();
        let lowered = s.lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        assert_eq!(hier.stats().nt_store_lines, 64 * 64 * 4 / 64);
    }

    #[test]
    fn matmul_line_counts_match_analysis() {
        // Program order is i, j, k with k innermost. Per (i, j) pair:
        // C load and C store are k-invariant (1 touch each), A[i][k] is
        // contiguous in k (batched to n/16 line touches), and B[k][j]
        // strides a full row per k step (n separate touches).
        let n = 64;
        let nest = matmul(n);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        let lines_per_row = n / 16;
        let expected = (n * n) as u64 * (2 + lines_per_row + n) as u64;
        assert_eq!(hier.stats().total_accesses, expected);
    }

    #[test]
    fn tiled_matmul_reduces_memory_traffic() {
        let n = 128; // arrays: 64 KiB each — larger than L1, fits L2
        let nest = matmul(n);
        let naive = Schedule::new().lower(&nest).unwrap();
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 32)
            .split("k", "kk", "kt", 32)
            .reorder(&["jj", "kk", "i", "kt", "jt"]);
        let tiled = s.lower(&nest).unwrap();

        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &naive, &mut h1, &TraceOptions::default()).unwrap();
        let mut h2 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &tiled, &mut h2, &TraceOptions::default()).unwrap();

        // Both compute the same work; both should touch far fewer memory
        // lines than total accesses, and miss counts must be positive.
        assert!(h1.stats().mem_demand_fills + h1.stats().mem_prefetch_fills > 0);
        assert!(h2.stats().mem_demand_fills + h2.stats().mem_prefetch_fills > 0);
    }

    #[test]
    fn guarded_tail_does_not_overrun() {
        let nest = copy_nest(50); // 50 not divisible by 16
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 16);
        let lowered = s.lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 50*50 elements * 4B = 10000 B per array; rows of 50*4=200B are
        // not line aligned, so count lines via the walk: just require that
        // the total equals the unguarded program-order walk.
        let plain = Schedule::new().lower(&nest).unwrap();
        let mut h2 = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &plain, &mut h2, &TraceOptions::default()).unwrap();
        // Tiled-with-tail touches each line at least once; totals may
        // differ (batch boundaries) but memory traffic must match to
        // within the per-row rounding.
        let t1 = hier.stats().mem_traffic_lines() as f64;
        let t2 = h2.stats().mem_traffic_lines() as f64;
        assert!((t1 - t2).abs() / t2 < 0.35, "t1={t1} t2={t2}");
    }

    #[test]
    fn reversed_access_batches_negative_delta() {
        // out[i] = A[63 - i]: the A access has delta -4 bytes per i step,
        // exercising the descending-run batching path.
        let mut b = NestBuilder::new("rev", DType::F32);
        let i = b.var("i", 64);
        let a = b.array("A", &[64]);
        let out = b.array("out", &[64]);
        let ix = palo_ir::AffineIndex::from_terms([(i, -1i64)], 63);
        let ld = b.load_expr(a, vec![ix]);
        b.store(out, &[i], ld);
        let nest = b.build().unwrap();
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 64 f32 = 4 lines for A (batched descending) + 4 for out.
        assert_eq!(hier.stats().total_accesses, 8);
    }

    #[test]
    fn line_budget_aborts_and_reports_limit() {
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { max_lines: Some(100), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 100 });
        // The guard trips between walk steps, so a small batch overshoot
        // is allowed — but the trace must stop near the budget, far from
        // the 8192 lines of the full walk.
        assert!(hier.stats().total_accesses >= 100);
        assert!(hier.stats().total_accesses < 200);
    }

    #[test]
    fn zero_line_budget_aborts_immediately() {
        let nest = copy_nest(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { max_lines: Some(0), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 0 });
        assert_eq!(hier.stats().total_accesses, 0);
    }

    #[test]
    fn zero_deadline_aborts_with_deadline_error() {
        // A zero budget expires before the first probe, so the trace must
        // abort within one probe interval rather than walk 256^2 points.
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { deadline: Some(Duration::ZERO), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::DeadlineExceeded { budget: Duration::ZERO });
    }

    #[test]
    fn generous_guards_do_not_change_results() {
        let nest = copy_nest(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &lowered, &mut h1, &TraceOptions::default()).unwrap();
        let mut h2 = Hierarchy::from_architecture(&arch);
        let opts = TraceOptions {
            max_lines: Some(u64::MAX),
            deadline: Some(Duration::from_secs(3600)),
            ..TraceOptions::default()
        };
        trace_into(&nest, &lowered, &mut h2, &opts).unwrap();
        assert_eq!(h1.stats().total_accesses, h2.stats().total_accesses);
        assert_eq!(h1.stats().mem_demand_fills, h2.stats().mem_demand_fills);
    }

    #[test]
    fn counting_sink_sees_exactly_the_simulated_lines() {
        use palo_cachesim::CountingSink;
        let nest = matmul(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        let mut count = CountingSink::new(64);
        trace_stream(&nest, &lowered, &mut count, &TraceOptions::default()).unwrap();
        assert_eq!(count.lines_issued(), hier.stats().total_accesses);
        assert!(count.runs() > 0);
    }

    #[test]
    fn counting_sink_respects_line_budget_guard() {
        use palo_cachesim::CountingSink;
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut count = CountingSink::new(64);
        let opts = TraceOptions { max_lines: Some(100), ..TraceOptions::default() };
        let err = trace_stream(&nest, &lowered, &mut count, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 100 });
        assert!(count.lines_issued() >= 100);
        assert!(count.lines_issued() < 200);
    }

    fn scalar_opts() -> TraceOptions {
        TraceOptions { run_compressed: false, ..TraceOptions::default() }
    }

    /// Traces `lowered` twice per preset — run-compressed and scalar —
    /// and asserts bit-identical statistics.
    fn assert_compressed_matches_scalar(nest: &LoopNest, lowered: &LoweredNest) {
        for arch in
            [presets::intel_i7_6700(), presets::intel_i7_5930k(), presets::arm_cortex_a15()]
        {
            let mut hc = Hierarchy::from_architecture(&arch);
            trace_into(nest, lowered, &mut hc, &TraceOptions::default()).unwrap();
            let mut hs = Hierarchy::from_architecture(&arch);
            trace_into(nest, lowered, &mut hs, &scalar_opts()).unwrap();
            assert_eq!(hc.stats(), hs.stats(), "compressed != scalar on {}", arch.name);
        }
    }

    #[test]
    fn compressed_replay_matches_scalar_program_order() {
        let nest = matmul(48);
        let lowered = Schedule::new().lower(&nest).unwrap();
        assert_compressed_matches_scalar(&nest, &lowered);
    }

    #[test]
    fn compressed_replay_matches_scalar_strided_inner() {
        // i innermost: A[i][k] and C[i][j] advance a full row per step —
        // the whole-line strided run path, with B k-invariant.
        let nest = matmul(48);
        let mut s = Schedule::new();
        s.reorder(&["j", "k", "i"]);
        let lowered = s.lower(&nest).unwrap();
        assert_compressed_matches_scalar(&nest, &lowered);
    }

    #[test]
    fn compressed_replay_matches_scalar_tiled_with_tail() {
        let nest = copy_nest(50); // guarded tails: clamped inner trips
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 16).split("i", "ii", "it", 8);
        let lowered = s.lower(&nest).unwrap();
        assert_compressed_matches_scalar(&nest, &lowered);
    }

    #[test]
    fn cycle_skip_fires_and_stays_exact() {
        // Two small prefetcher-free levels wrap quickly, so the copy
        // reaches its translation-steady state early and the detector
        // must skip most rows — with statistics identical to the scalar
        // walk's.
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(2);
        arch.caches[0].size_bytes = 4 * 1024;
        arch.caches[0].prefetcher = palo_arch::PrefetcherConfig::None;
        arch.caches[1].size_bytes = 16 * 1024;
        arch.caches[1].prefetcher = palo_arch::PrefetcherConfig::None;
        let nest = copy_nest(128);
        let lowered = Schedule::new().lower(&nest).unwrap();

        let mut hc = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &lowered, &mut hc, &TraceOptions::default()).unwrap();
        let skipped = hc.replay_stats();
        assert!(skipped.cycles_skipped > 0, "no cycles skipped: {skipped:?}");
        assert!(skipped.lines_skipped > 0);

        let mut hs = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &lowered, &mut hs, &scalar_opts()).unwrap();
        assert_eq!(hs.replay_stats().cycles_skipped, 0);
        assert_eq!(hc.stats(), hs.stats());
    }

    #[test]
    fn cycle_skip_respects_line_budget() {
        // Same steady-state copy, but with a line budget: skipping may
        // overshoot the budget by at most one cycle, and the guard must
        // still abort the trace.
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(2);
        arch.caches[0].size_bytes = 4 * 1024;
        arch.caches[0].prefetcher = palo_arch::PrefetcherConfig::None;
        arch.caches[1].size_bytes = 16 * 1024;
        arch.caches[1].prefetcher = palo_arch::PrefetcherConfig::None;
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&arch);
        let opts = TraceOptions { max_lines: Some(1000), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 1000 });
        let lines_per_row = 2 * 256 * 4 / 64; // 32
        assert!(hier.stats().total_accesses >= 1000);
        assert!(hier.stats().total_accesses < 1000 + 2 * lines_per_row as u64 + 64);
    }

    #[test]
    fn deadline_still_fires_under_compression() {
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { deadline: Some(Duration::ZERO), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::DeadlineExceeded { budget: Duration::ZERO });
    }

    #[test]
    fn replay_stats_report_compression() {
        let nest = matmul(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        let r = hier.replay_stats();
        // Every traced line flows through a batched event, so the replay
        // accounting must agree with the simulator's own total.
        assert_eq!(r.run_lines, hier.stats().total_accesses);
        // B[k][j] walks a row per k step: far fewer run events than lines.
        assert!(r.runs < r.run_lines / 4, "runs={} lines={}", r.runs, r.run_lines);
    }

    #[test]
    fn fused_loop_traces_same_lines_as_unfused() {
        let nest = copy_nest(64);
        let mut s1 = Schedule::new();
        s1.split("i", "io", "it", 8)
            .split("j", "jo", "jt", 8)
            .reorder(&["io", "jo", "it", "jt"]);
        let mut s2 = s1.clone();
        s2.fuse("io", "jo", "f");
        let l1 = s1.lower(&nest).unwrap();
        let l2 = s2.lower(&nest).unwrap();
        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        let mut h2 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &l1, &mut h1, &TraceOptions::default()).unwrap();
        trace_into(&nest, &l2, &mut h2, &TraceOptions::default()).unwrap();
        assert_eq!(h1.stats().total_accesses, h2.stats().total_accesses);
        assert_eq!(h1.stats().mem_demand_fills, h2.stats().mem_demand_fills);
    }
}
