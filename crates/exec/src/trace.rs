//! Trace-mode execution: walk a lowered nest and feed the address stream
//! of every array reference to a streaming [`LineSink`].
//!
//! The walker never materializes a trace: contiguous runs of the
//! innermost loop are batched into [`LineSink::access_range`] calls
//! (line-granular), which keeps tracing of multi-hundred-megabyte
//! iteration spaces tractable while preserving the per-line
//! demand/prefetch behaviour the paper's analysis is about. The
//! production sink is the cache simulator ([`Hierarchy`]); a
//! [`palo_cachesim::CountingSink`] sizes a trace without simulating it.

use crate::error::TraceError;
use palo_cachesim::{AccessKind, Hierarchy, LineSink};
use palo_ir::{Access, LoopNest};
use palo_sched::LoweredNest;
use std::time::{Duration, Instant};

/// Options for a trace run.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Flush caches and stream tables before tracing (cold start).
    pub flush_first: bool,
    /// Abort with [`TraceError::LineBudgetExceeded`] once the trace has
    /// issued this many line accesses (`None` = unlimited).
    pub max_lines: Option<u64>,
    /// Abort with [`TraceError::DeadlineExceeded`] once the trace has run
    /// for this long (`None` = unlimited). Checked coarsely (every few
    /// thousand walk steps), so overrun is bounded but not zero.
    pub deadline: Option<Duration>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { flush_first: true, max_lines: None, deadline: None }
    }
}

struct TraceAccess {
    kind: AccessKind,
    /// Current byte address (updated incrementally during the walk).
    addr: i64,
    /// Address delta in bytes per unit step of each original variable.
    var_strides: Vec<i64>,
    /// Address delta in bytes per step of each lowered loop
    /// (`None` for fused loops, which are recomputed per iteration).
    loop_deltas: Vec<Option<i64>>,
}

struct Walker<'a> {
    loops: &'a [palo_sched::LoweredLoop],
    extents: Vec<usize>,
    values: Vec<i64>,
    accesses: Vec<TraceAccess>,
    dts: i64,
    line: i64,
    /// Absolute `total_accesses` threshold (entry count + budget).
    line_limit: Option<u64>,
    /// The configured budget, for the error report.
    max_lines: u64,
    /// Absolute wall-clock cutoff.
    deadline_at: Option<Instant>,
    /// The configured wall-clock budget, for the error report.
    deadline_budget: Duration,
    /// Walk steps since the last deadline probe (clock reads are
    /// expensive relative to a walk step).
    steps_since_check: u32,
}

/// How many walk steps pass between wall-clock probes.
const DEADLINE_CHECK_INTERVAL: u32 = 4096;

/// Streams every memory reference of `lowered` (a schedule of `nest`)
/// into the cache simulator `hier`. Equivalent to [`trace_stream`] with a
/// [`Hierarchy`] sink.
///
/// # Errors
///
/// As for [`trace_stream`].
pub fn trace_into(
    nest: &LoopNest,
    lowered: &LoweredNest,
    hier: &mut Hierarchy,
    opts: &TraceOptions,
) -> Result<(), TraceError> {
    trace_stream(nest, lowered, hier, opts)
}

/// Streams every memory reference of `lowered` (a schedule of `nest`)
/// into `sink`, one batched contiguous run at a time.
///
/// Array base addresses are assigned sequentially, page-aligned, with one
/// guard page between arrays, mirroring what a real allocator does for
/// large arrays.
///
/// # Errors
///
/// Returns [`TraceError::LineBudgetExceeded`] / [`TraceError::DeadlineExceeded`]
/// when the corresponding [`TraceOptions`] guard trips (whatever the sink
/// accumulated up to that point is kept), and
/// [`TraceError::MissingLoopDelta`] when the lowered nest is internally
/// inconsistent.
pub fn trace_stream<S: LineSink>(
    nest: &LoopNest,
    lowered: &LoweredNest,
    sink: &mut S,
    opts: &TraceOptions,
) -> Result<(), TraceError> {
    if opts.flush_first {
        sink.flush();
    }
    let dts = nest.dtype().size_bytes() as i64;
    let nvars = nest.vars().len();

    // Page-aligned base address per array.
    let mut bases = Vec::with_capacity(nest.arrays().len());
    let mut cursor: i64 = 4096;
    for decl in nest.arrays() {
        bases.push(cursor);
        let bytes = decl.len() as i64 * dts;
        cursor += (bytes + 4095) / 4096 * 4096 + 4096;
    }

    let strides: Vec<Vec<usize>> = nest.arrays().iter().map(|a| a.strides()).collect();
    let mk = |acc: &Access, kind: AccessKind| -> TraceAccess {
        let st = &strides[acc.array.index()];
        let mut var_strides = vec![0i64; nvars];
        let mut addr = bases[acc.array.index()];
        for (ix, &s) in acc.indices.iter().zip(st) {
            addr += ix.offset() * s as i64 * dts;
            for &(v, c) in ix.terms() {
                var_strides[v.index()] += c * s as i64 * dts;
            }
        }
        let loop_deltas = lowered
            .loops()
            .iter()
            .map(|l| {
                if l.contribs.len() == 1 && l.contribs[0].divisor == 1 {
                    let c = l.contribs[0];
                    Some(c.stride as i64 * var_strides[c.var.index()])
                } else {
                    None
                }
            })
            .collect();
        TraceAccess { kind, addr, var_strides, loop_deltas }
    };

    let stmt = nest.statement();
    let mut accesses: Vec<TraceAccess> =
        stmt.inputs().map(|a| mk(a, AccessKind::Load)).collect();
    let store_kind = if lowered.nt_store() { AccessKind::NtStore } else { AccessKind::Store };
    accesses.push(mk(&stmt.output, store_kind));

    let mut walker = Walker {
        loops: lowered.loops(),
        extents: lowered.extents().to_vec(),
        values: vec![0i64; nvars],
        accesses,
        dts,
        line: sink.line_size() as i64,
        line_limit: opts.max_lines.map(|m| sink.lines_issued().saturating_add(m)),
        max_lines: opts.max_lines.unwrap_or(u64::MAX),
        deadline_at: opts.deadline.map(|d| Instant::now() + d),
        deadline_budget: opts.deadline.unwrap_or(Duration::ZERO),
        steps_since_check: 0,
    };
    walker.walk(0, sink)
}

impl Walker<'_> {
    /// Trips the line-budget and wall-clock guards. Called once per walk
    /// step; the clock is only read every [`DEADLINE_CHECK_INTERVAL`]
    /// steps.
    fn check_guards(&mut self, sink: &impl LineSink) -> Result<(), TraceError> {
        if let Some(limit) = self.line_limit {
            if sink.lines_issued() >= limit {
                return Err(TraceError::LineBudgetExceeded { limit: self.max_lines });
            }
        }
        if let Some(at) = self.deadline_at {
            // Probe the clock on the very first step (so an
            // already-expired deadline aborts immediately even for tiny
            // traces), then once per interval.
            if self.steps_since_check == 0 && Instant::now() >= at {
                return Err(TraceError::DeadlineExceeded { budget: self.deadline_budget });
            }
            self.steps_since_check += 1;
            if self.steps_since_check >= DEADLINE_CHECK_INTERVAL {
                self.steps_since_check = 0;
            }
        }
        Ok(())
    }

    fn missing_delta(&self, d: usize) -> TraceError {
        TraceError::MissingLoopDelta { loop_name: self.loops[d].name.clone() }
    }
    /// In-bounds steps of loop `d` (which must be simple) from the current
    /// variable values.
    fn simple_steps(&self, d: usize) -> (usize, usize, i64) {
        let l = &self.loops[d];
        let c = l.contribs[0];
        let v = c.var.index();
        let stride = c.stride as i64;
        let remaining = self.extents[v] as i64 - self.values[v];
        let steps = if remaining <= 0 {
            0
        } else if stride == 0 {
            l.trip
        } else {
            (l.trip as i64).min((remaining + stride - 1) / stride) as usize
        };
        (steps, v, stride)
    }

    fn walk<S: LineSink>(&mut self, d: usize, sink: &mut S) -> Result<(), TraceError> {
        self.check_guards(sink)?;
        if d == self.loops.len() {
            for a in &self.accesses {
                sink.access_range(a.addr as u64, self.dts as u64, a.kind);
            }
            return Ok(());
        }
        let l = &self.loops[d];
        let simple = l.contribs.len() == 1 && l.contribs[0].divisor == 1;
        let innermost = d + 1 == self.loops.len();

        if simple {
            let (steps, v, stride) = self.simple_steps(d);
            if innermost {
                return self.issue_innermost(d, steps, sink);
            }
            for _ in 0..steps {
                self.walk(d + 1, sink)?;
                self.values[v] += stride;
                for ai in 0..self.accesses.len() {
                    match self.accesses[ai].loop_deltas[d] {
                        Some(delta) => self.accesses[ai].addr += delta,
                        None => return Err(self.missing_delta(d)),
                    }
                }
            }
            // restore
            self.values[v] -= stride * steps as i64;
            for ai in 0..self.accesses.len() {
                match self.accesses[ai].loop_deltas[d] {
                    Some(delta) => self.accesses[ai].addr -= delta * steps as i64,
                    None => return Err(self.missing_delta(d)),
                }
            }
        } else {
            // Fused loop: recompute contributions per iteration.
            let l = l.clone();
            for t in 0..l.trip {
                let mut ok = true;
                let mut addr_deltas = vec![0i64; self.accesses.len()];
                let mut val_deltas = vec![(0usize, 0i64); 0];
                for c in &l.contribs {
                    let contrib = c.value(t) as i64;
                    let v = c.var.index();
                    val_deltas.push((v, contrib));
                    if self.values[v] + contrib >= self.extents[v] as i64 {
                        ok = false;
                    }
                    for (ai, a) in self.accesses.iter().enumerate() {
                        addr_deltas[ai] += contrib * a.var_strides[v];
                    }
                }
                if !ok {
                    continue;
                }
                for &(v, dv) in &val_deltas {
                    self.values[v] += dv;
                }
                for (ai, a) in self.accesses.iter_mut().enumerate() {
                    a.addr += addr_deltas[ai];
                }
                self.walk(d + 1, sink)?;
                for &(v, dv) in &val_deltas {
                    self.values[v] -= dv;
                }
                for (ai, a) in self.accesses.iter_mut().enumerate() {
                    a.addr -= addr_deltas[ai];
                }
            }
        }
        Ok(())
    }

    /// Issues the accesses of the innermost (simple) loop with `steps`
    /// in-bounds iterations, batching contiguous runs.
    fn issue_innermost<S: LineSink>(
        &mut self,
        d: usize,
        steps: usize,
        sink: &mut S,
    ) -> Result<(), TraceError> {
        if steps == 0 {
            return Ok(());
        }
        let n = steps as i64;
        for ai in 0..self.accesses.len() {
            self.check_guards(sink)?;
            let a = &self.accesses[ai];
            let Some(delta) = a.loop_deltas[d] else {
                return Err(self.missing_delta(d));
            };
            if delta == 0 {
                sink.access_range(a.addr as u64, self.dts as u64, a.kind);
            } else if delta > 0 && delta <= self.line {
                let span = (n - 1) * delta + self.dts;
                sink.access_range(a.addr as u64, span as u64, a.kind);
            } else if delta < 0 && -delta <= self.line {
                let start = a.addr + (n - 1) * delta;
                let span = (n - 1) * (-delta) + self.dts;
                sink.access_range(start as u64, span as u64, a.kind);
            } else {
                let (mut addr, dts, kind) = (a.addr, self.dts, a.kind);
                for step in 0..steps {
                    if step % DEADLINE_CHECK_INTERVAL as usize == 0 {
                        self.check_guards(sink)?;
                    }
                    sink.access_range(addr as u64, dts as u64, kind);
                    addr += delta;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};
    use palo_sched::Schedule;

    fn copy_nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let src = b.array("src", &[n, n]);
        let dst = b.array("dst", &[n, n]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        b.build().unwrap()
    }

    fn matmul(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("matmul", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn copy_touches_each_line_once_per_array() {
        let n = 256; // 256*256*4 = 256 KiB per array = 4096 lines
        let nest = copy_nest(n);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 4096 lines read + 4096 lines written
        assert_eq!(hier.stats().total_accesses, 8192);
    }

    #[test]
    fn nt_store_lines_counted_for_scheduled_store() {
        let nest = copy_nest(64);
        let mut s = Schedule::new();
        s.store_nt();
        let lowered = s.lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        assert_eq!(hier.stats().nt_store_lines, 64 * 64 * 4 / 64);
    }

    #[test]
    fn matmul_line_counts_match_analysis() {
        // Program order is i, j, k with k innermost. Per (i, j) pair:
        // C load and C store are k-invariant (1 touch each), A[i][k] is
        // contiguous in k (batched to n/16 line touches), and B[k][j]
        // strides a full row per k step (n separate touches).
        let n = 64;
        let nest = matmul(n);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        let lines_per_row = n / 16;
        let expected = (n * n) as u64 * (2 + lines_per_row + n) as u64;
        assert_eq!(hier.stats().total_accesses, expected);
    }

    #[test]
    fn tiled_matmul_reduces_memory_traffic() {
        let n = 128; // arrays: 64 KiB each — larger than L1, fits L2
        let nest = matmul(n);
        let naive = Schedule::new().lower(&nest).unwrap();
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 32)
            .split("k", "kk", "kt", 32)
            .reorder(&["jj", "kk", "i", "kt", "jt"]);
        let tiled = s.lower(&nest).unwrap();

        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &naive, &mut h1, &TraceOptions::default()).unwrap();
        let mut h2 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &tiled, &mut h2, &TraceOptions::default()).unwrap();

        // Both compute the same work; both should touch far fewer memory
        // lines than total accesses, and miss counts must be positive.
        assert!(h1.stats().mem_demand_fills + h1.stats().mem_prefetch_fills > 0);
        assert!(h2.stats().mem_demand_fills + h2.stats().mem_prefetch_fills > 0);
    }

    #[test]
    fn guarded_tail_does_not_overrun() {
        let nest = copy_nest(50); // 50 not divisible by 16
        let mut s = Schedule::new();
        s.split("j", "jj", "jt", 16);
        let lowered = s.lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 50*50 elements * 4B = 10000 B per array; rows of 50*4=200B are
        // not line aligned, so count lines via the walk: just require that
        // the total equals the unguarded program-order walk.
        let plain = Schedule::new().lower(&nest).unwrap();
        let mut h2 = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &plain, &mut h2, &TraceOptions::default()).unwrap();
        // Tiled-with-tail touches each line at least once; totals may
        // differ (batch boundaries) but memory traffic must match to
        // within the per-row rounding.
        let t1 = hier.stats().mem_traffic_lines() as f64;
        let t2 = h2.stats().mem_traffic_lines() as f64;
        assert!((t1 - t2).abs() / t2 < 0.35, "t1={t1} t2={t2}");
    }

    #[test]
    fn reversed_access_batches_negative_delta() {
        // out[i] = A[63 - i]: the A access has delta -4 bytes per i step,
        // exercising the descending-run batching path.
        let mut b = NestBuilder::new("rev", DType::F32);
        let i = b.var("i", 64);
        let a = b.array("A", &[64]);
        let out = b.array("out", &[64]);
        let ix = palo_ir::AffineIndex::from_terms([(i, -1i64)], 63);
        let ld = b.load_expr(a, vec![ix]);
        b.store(out, &[i], ld);
        let nest = b.build().unwrap();
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        // 64 f32 = 4 lines for A (batched descending) + 4 for out.
        assert_eq!(hier.stats().total_accesses, 8);
    }

    #[test]
    fn line_budget_aborts_and_reports_limit() {
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { max_lines: Some(100), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 100 });
        // The guard trips between walk steps, so a small batch overshoot
        // is allowed — but the trace must stop near the budget, far from
        // the 8192 lines of the full walk.
        assert!(hier.stats().total_accesses >= 100);
        assert!(hier.stats().total_accesses < 200);
    }

    #[test]
    fn zero_line_budget_aborts_immediately() {
        let nest = copy_nest(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { max_lines: Some(0), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 0 });
        assert_eq!(hier.stats().total_accesses, 0);
    }

    #[test]
    fn zero_deadline_aborts_with_deadline_error() {
        // A zero budget expires before the first probe, so the trace must
        // abort within one probe interval rather than walk 256^2 points.
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let opts = TraceOptions { deadline: Some(Duration::ZERO), ..TraceOptions::default() };
        let err = trace_into(&nest, &lowered, &mut hier, &opts).unwrap_err();
        assert_eq!(err, TraceError::DeadlineExceeded { budget: Duration::ZERO });
    }

    #[test]
    fn generous_guards_do_not_change_results() {
        let nest = copy_nest(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &lowered, &mut h1, &TraceOptions::default()).unwrap();
        let mut h2 = Hierarchy::from_architecture(&arch);
        let opts = TraceOptions {
            max_lines: Some(u64::MAX),
            deadline: Some(Duration::from_secs(3600)),
            ..TraceOptions::default()
        };
        trace_into(&nest, &lowered, &mut h2, &opts).unwrap();
        assert_eq!(h1.stats().total_accesses, h2.stats().total_accesses);
        assert_eq!(h1.stats().mem_demand_fills, h2.stats().mem_demand_fills);
    }

    #[test]
    fn counting_sink_sees_exactly_the_simulated_lines() {
        use palo_cachesim::CountingSink;
        let nest = matmul(64);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut hier = Hierarchy::from_architecture(&presets::intel_i7_6700());
        trace_into(&nest, &lowered, &mut hier, &TraceOptions::default()).unwrap();
        let mut count = CountingSink::new(64);
        trace_stream(&nest, &lowered, &mut count, &TraceOptions::default()).unwrap();
        assert_eq!(count.lines_issued(), hier.stats().total_accesses);
        assert!(count.runs() > 0);
    }

    #[test]
    fn counting_sink_respects_line_budget_guard() {
        use palo_cachesim::CountingSink;
        let nest = copy_nest(256);
        let lowered = Schedule::new().lower(&nest).unwrap();
        let mut count = CountingSink::new(64);
        let opts = TraceOptions { max_lines: Some(100), ..TraceOptions::default() };
        let err = trace_stream(&nest, &lowered, &mut count, &opts).unwrap_err();
        assert_eq!(err, TraceError::LineBudgetExceeded { limit: 100 });
        assert!(count.lines_issued() >= 100);
        assert!(count.lines_issued() < 200);
    }

    #[test]
    fn fused_loop_traces_same_lines_as_unfused() {
        let nest = copy_nest(64);
        let mut s1 = Schedule::new();
        s1.split("i", "io", "it", 8)
            .split("j", "jo", "jt", 8)
            .reorder(&["io", "jo", "it", "jt"]);
        let mut s2 = s1.clone();
        s2.fuse("io", "jo", "f");
        let l1 = s1.lower(&nest).unwrap();
        let l2 = s2.lower(&nest).unwrap();
        let arch = presets::intel_i7_6700();
        let mut h1 = Hierarchy::from_architecture(&arch);
        let mut h2 = Hierarchy::from_architecture(&arch);
        trace_into(&nest, &l1, &mut h1, &TraceOptions::default()).unwrap();
        trace_into(&nest, &l2, &mut h2, &TraceOptions::default()).unwrap();
        assert_eq!(h1.stats().total_accesses, h2.stats().total_accesses);
        assert_eq!(h1.stats().mem_demand_fills, h2.stats().mem_demand_fills);
    }
}
