//! Converting a traced schedule into estimated execution time.

use crate::error::TraceError;
use crate::trace::{trace_into, TraceOptions};
use palo_arch::Architecture;
use palo_cachesim::{Hierarchy, HierarchyStats, ReplayStats};
use palo_ir::LoopNest;
use palo_sched::LoweredNest;

/// Estimated execution time of a schedule plus its breakdown.
#[derive(Debug, Clone)]
pub struct TimeEstimate {
    /// Estimated wall-clock milliseconds.
    pub ms: f64,
    /// Latency-weighted memory-system cycles (cache hits + demand memory
    /// fills; divided by the parallel speedup).
    pub memory_cycles: f64,
    /// Shared memory-bus cycles (all lines crossing the bus × transfer
    /// cost; *not* divided by parallelism — the bandwidth roof).
    pub bus_cycles: f64,
    /// Issue-width-limited compute cycles.
    pub compute_cycles: f64,
    /// Parallel speedup divisor applied (1.0 for serial schedules).
    pub speedup: f64,
    /// Raw simulator statistics of the trace.
    pub stats: HierarchyStats,
    /// Replay-engine telemetry: how the trace was consumed (batched runs,
    /// lines, skipped steady-state cycles). Diagnostic only — does not
    /// affect the estimate.
    pub replay: ReplayStats,
}

impl TimeEstimate {
    /// Throughput relative to another estimate (>1 means `self` is
    /// faster) — the y-axis of the paper's Figures 4–7.
    pub fn relative_throughput(&self, other: &TimeEstimate) -> f64 {
        other.ms / self.ms
    }
}

/// Traces `lowered` on a hierarchy derived from `arch` and converts the
/// statistics to estimated time.
///
/// Parallel schedules are modeled as in the paper's own corrections: the
/// per-thread hierarchy loses associativity to co-resident threads
/// (`Liway / Nthreads`, `L2way / Ncores` for chip-shared levels), and the
/// total time divides by the achievable chunked speedup
/// `trip / ceil(trip / cores)` of the parallel loop (Eq. 13's concern).
///
/// # Errors
///
/// Propagates [`TraceError`] from the trace walk (budget, deadline, or an
/// internally inconsistent lowered nest).
pub fn estimate_time(
    nest: &LoopNest,
    lowered: &LoweredNest,
    arch: &Architecture,
) -> Result<TimeEstimate, TraceError> {
    estimate_time_with(nest, lowered, arch, &TraceOptions::default())
}

/// [`estimate_time`] with explicit trace options.
///
/// # Errors
///
/// Propagates [`TraceError`] from the trace walk.
pub fn estimate_time_with(
    nest: &LoopNest,
    lowered: &LoweredNest,
    arch: &Architecture,
    opts: &TraceOptions,
) -> Result<TimeEstimate, TraceError> {
    let par_trip = lowered.parallel_loop().map(|i| lowered.loops()[i].trip).unwrap_or(1);
    let (tpc_used, cores_used, speedup) = if par_trip > 1 {
        let threads = par_trip.min(arch.total_threads());
        let cores_used = threads.min(arch.cores);
        let tpc_used = if threads > arch.cores { arch.threads_per_core } else { 1 };
        let chunks = par_trip.div_ceil(cores_used);
        (tpc_used, cores_used, par_trip as f64 / chunks as f64)
    } else {
        (1, 1, 1.0)
    };

    let mut hier = Hierarchy::with_effective_sharing(arch, tpc_used, cores_used);
    trace_into(nest, lowered, &mut hier, opts)?;
    let stats = hier.stats().clone();
    let replay = hier.replay_stats();
    // Hits expose only a fraction of their latency on pipelined cores;
    // demand misses to memory stall for the full latency.
    let memory_cycles = stats.hit_cycles(hier.latencies()) * arch.timing.hit_exposed_fraction
        + stats.demand_fill_cycles(&arch.timing);
    let bus_cycles = stats.bus_cycles(&arch.timing);

    let iters = nest.iteration_count() as f64;
    let ops = (nest.statement().rhs.op_count() + 1) as f64;
    let lanes = lowered.vector_lanes().max(1) as f64;
    let compute_cycles = iters * ops * arch.timing.compute_cycles_per_iter / lanes;

    // Roofline-style combination: per-thread work scales with the
    // parallel speedup, the shared memory bus does not.
    let total = ((memory_cycles + compute_cycles) / speedup).max(bus_cycles);
    Ok(TimeEstimate {
        ms: arch.timing.cycles_to_ms(total),
        memory_cycles,
        bus_cycles,
        compute_cycles,
        speedup,
        stats,
        replay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;
    use palo_ir::{DType, NestBuilder};
    use palo_sched::Schedule;

    fn copy_nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("copy", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let src = b.array("src", &[n, n]);
        let dst = b.array("dst", &[n, n]);
        let ld = b.load(src, &[i, j]);
        b.store(dst, &[i, j], ld);
        b.build().unwrap()
    }

    fn matmul_nest(n: usize) -> LoopNest {
        let mut b = NestBuilder::new("mm", DType::F32);
        let i = b.var("i", n);
        let j = b.var("j", n);
        let k = b.var("k", n);
        let a = b.array("A", &[n, n]);
        let bm = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        b.accumulate(c, &[i, j], b.load(a, &[i, k]) * b.load(bm, &[k, j]));
        b.build().unwrap()
    }

    #[test]
    fn parallel_schedule_is_faster_when_not_bus_bound() {
        // Cache-resident matmul: compute/latency dominate, so parallelism
        // must show. (A pure streaming copy can legitimately tie — both
        // serial and parallel sit on the bandwidth roof.)
        let nest = matmul_nest(96);
        let arch = presets::intel_i7_6700();
        let serial = Schedule::new().lower(&nest).unwrap();
        let mut s = Schedule::new();
        s.reorder(&["i", "k", "j"]).parallel("i").vectorize("j", 8);
        let par = s.lower(&nest).unwrap();
        let t_serial = estimate_time(&nest, &serial, &arch).unwrap();
        let t_par = estimate_time(&nest, &par, &arch).unwrap();
        assert!(t_par.ms < t_serial.ms, "par {} vs serial {}", t_par.ms, t_serial.ms);
        assert!(t_par.speedup > 1.0);
        assert!(t_par.relative_throughput(&t_serial) > 1.0);
    }

    #[test]
    fn bus_bound_copy_hits_the_bandwidth_roof() {
        let nest = copy_nest(512);
        let arch = presets::intel_i7_6700();
        let mut s = Schedule::new();
        s.parallel("i").vectorize("j", 8);
        let t = estimate_time(&nest, &s.lower(&nest).unwrap(), &arch).unwrap();
        // Parallel streaming: total time is bounded below by bus cycles.
        assert!(t.ms >= arch.timing.cycles_to_ms(t.bus_cycles) - 1e-12);
    }

    #[test]
    fn vectorization_cuts_compute() {
        let nest = copy_nest(64);
        let arch = presets::intel_i7_6700();
        let plain = Schedule::new().lower(&nest).unwrap();
        let mut s = Schedule::new();
        s.vectorize("j", 8);
        let vec = s.lower(&nest).unwrap();
        let t0 = estimate_time(&nest, &plain, &arch).unwrap();
        let t1 = estimate_time(&nest, &vec, &arch).unwrap();
        assert!((t1.compute_cycles - t0.compute_cycles / 8.0).abs() < 1e-6);
    }

    #[test]
    fn nt_store_reduces_memory_traffic_for_streaming() {
        let nest = copy_nest(512); // 1 MiB per array, exceeds L2
        let arch = presets::intel_i7_5930k();
        let plain = Schedule::new().lower(&nest).unwrap();
        let mut s = Schedule::new();
        s.store_nt();
        let nt = s.lower(&nest).unwrap();
        let t0 = estimate_time(&nest, &plain, &arch).unwrap();
        let t1 = estimate_time(&nest, &nt, &arch).unwrap();
        // NT stores avoid the read-for-ownership of the destination.
        assert!(
            t1.stats.mem_demand_fills + t1.stats.mem_prefetch_fills
                < t0.stats.mem_demand_fills + t0.stats.mem_prefetch_fills
        );
        assert!(t1.ms < t0.ms, "nt {} vs plain {}", t1.ms, t0.ms);
    }

    #[test]
    fn serial_speedup_is_one() {
        let nest = copy_nest(32);
        let arch = presets::arm_cortex_a15();
        let t = estimate_time(&nest, &Schedule::new().lower(&nest).unwrap(), &arch).unwrap();
        assert_eq!(t.speedup, 1.0);
        assert!(t.ms > 0.0);
    }
}
