//! Execution of lowered loop nests: a compute-mode interpreter for
//! correctness and a trace-mode address generator for performance
//! estimation.
//!
//! The paper measures schedules by compiling them with Halide and timing
//! the binaries on real machines. Here a schedule's effect is measured in
//! two complementary ways:
//!
//! * **Compute mode** ([`run`]/[`run_reference`]): the lowered nest is
//!   interpreted over real buffers. Every legal schedule of a nest must
//!   produce the same values as the program-order nest — this is how the
//!   test-suite proves schedule lowering correct.
//! * **Trace mode** ([`trace_stream`]): the lowered nest is walked without
//!   touching data; the address stream of every array reference is fed to
//!   the [`palo_cachesim`] hierarchy with contiguous runs batched to line
//!   granularity. [`estimate_time`] converts the resulting statistics plus
//!   a compute estimate (vector lanes, parallel speedup) into estimated
//!   milliseconds — the number every figure of the reproduction reports.
//!
//! # Examples
//!
//! ```
//! use palo_arch::presets;
//! use palo_exec::{estimate_time, Buffers};
//! use palo_ir::{DType, NestBuilder};
//! use palo_sched::Schedule;
//!
//! let mut b = NestBuilder::new("copy", DType::F32);
//! let i = b.var("i", 64);
//! let j = b.var("j", 64);
//! let src = b.array("src", &[64, 64]);
//! let dst = b.array("dst", &[64, 64]);
//! let ld = b.load(src, &[i, j]);
//! b.store(dst, &[i, j], ld);
//! let nest = b.build()?;
//!
//! let lowered = Schedule::new().lower(&nest)?;
//! let est = estimate_time(&nest, &lowered, &presets::intel_i7_6700())?;
//! assert!(est.ms > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod buffers;
mod codec;
mod error;
mod fingerprint;
mod interp;
mod timing;
mod trace;

pub use buffers::Buffers;
pub use error::{ExecError, TraceError};
pub use interp::{run, run_reference};
pub use timing::{estimate_time, estimate_time_with, TimeEstimate};
pub use trace::{trace_into, trace_stream, TraceOptions};
