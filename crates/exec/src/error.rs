//! Structured errors for trace-mode and compute-mode execution.

use palo_sched::SchedError;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Error produced while walking a lowered nest in trace mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A loop the walker relies on being simple (single unit-divisor
    /// contribution) carries no per-step address delta. Indicates an
    /// internal inconsistency between lowering and tracing rather than a
    /// user error.
    MissingLoopDelta {
        /// Name of the offending lowered loop.
        loop_name: String,
    },
    /// The trace issued more line accesses than the configured budget.
    LineBudgetExceeded {
        /// The configured line budget.
        limit: u64,
    },
    /// The trace ran longer than the configured wall-clock budget.
    DeadlineExceeded {
        /// The configured wall-clock budget.
        budget: Duration,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingLoopDelta { loop_name } => {
                write!(f, "lowered loop {loop_name:?} has no per-step address delta")
            }
            TraceError::LineBudgetExceeded { limit } => {
                write!(f, "trace exceeded its line budget of {limit}")
            }
            TraceError::DeadlineExceeded { budget } => {
                write!(f, "trace exceeded its wall-clock budget of {budget:?}")
            }
        }
    }
}

impl Error for TraceError {}

/// Error produced while executing a lowered nest in compute mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Lowering the reference (program-order) schedule failed.
    Sched(SchedError),
    /// A subscript evaluated outside its array at some iteration point.
    /// Nests validated by `NestBuilder::build` cannot trigger this; a
    /// hand-assembled or corrupted nest can.
    OutOfBounds {
        /// Index of the accessed array.
        array: usize,
        /// The iteration point at which the access went out of bounds.
        point: Vec<i64>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sched(e) => write!(f, "reference lowering failed: {e}"),
            ExecError::OutOfBounds { array, point } => {
                write!(f, "access to array {array} is out of bounds at point {point:?}")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Sched(e) => Some(e),
            ExecError::OutOfBounds { .. } => None,
        }
    }
}

impl From<SchedError> for ExecError {
    fn from(e: SchedError) -> Self {
        ExecError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::LineBudgetExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = TraceError::DeadlineExceeded { budget: Duration::from_millis(5) };
        assert!(e.to_string().contains("5ms"));
        let e = ExecError::OutOfBounds { array: 2, point: vec![1, 9] };
        assert!(e.to_string().contains("array 2"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TraceError>();
        assert_traits::<ExecError>();
    }
}
