//! Property tests over the cache simulator.

use palo_arch::presets;
use palo_cachesim::{AccessKind, Cache, Hierarchy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LRU inclusion: on the same trace, a cache with more ways never
    /// misses where the smaller one hits (per-set stack property).
    #[test]
    fn more_ways_never_more_misses(
        lines in proptest::collection::vec(0u64..512, 1..300),
    ) {
        let mut small = Cache::new(16, 2);
        let mut large = Cache::new(16, 4);
        let mut misses_small = 0u32;
        let mut misses_large = 0u32;
        for &l in &lines {
            if !small.access(l, false).hit {
                misses_small += 1;
                small.fill(l, false, false);
            }
            if !large.access(l, false).hit {
                misses_large += 1;
                large.fill(l, false, false);
            }
        }
        prop_assert!(misses_large <= misses_small);
    }

    /// Occupancy never exceeds capacity, and every resident line probes
    /// true immediately after a fill.
    #[test]
    fn occupancy_bounded(
        lines in proptest::collection::vec(0u64..10_000, 1..500),
    ) {
        let mut c = Cache::new(8, 3);
        for &l in &lines {
            c.fill(l, false, false);
            prop_assert!(c.probe(l));
            prop_assert!(c.occupancy() <= c.capacity());
        }
    }

    /// Hierarchy accounting: served levels and memory fills always add up
    /// to the number of demand accesses, writes included.
    #[test]
    fn conservation_of_accesses(
        ops in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..400),
    ) {
        let arch = presets::arm_cortex_a15();
        let mut h = Hierarchy::from_architecture(&arch);
        for &(addr, write) in &ops {
            let kind = if write { AccessKind::Store } else { AccessKind::Load };
            h.access(addr * 4, kind);
        }
        let s = h.stats();
        let served: u64 =
            s.levels.iter().map(|l| l.demand_hits).sum::<u64>() + s.mem_demand_fills;
        prop_assert_eq!(served, ops.len() as u64);
        prop_assert_eq!(s.total_accesses, ops.len() as u64);
    }

    /// NT stores of a fresh region never read from memory, and their line
    /// count matches the region size exactly.
    #[test]
    fn nt_store_traffic_is_exact(start_page in 0u64..1024, pages in 1u64..16) {
        let arch = presets::intel_i7_6700();
        let mut h = Hierarchy::from_architecture(&arch);
        let base = 0x4000_0000 + start_page * 4096;
        let bytes = pages * 4096;
        h.access_range(base, bytes, AccessKind::NtStore);
        prop_assert_eq!(h.stats().nt_store_lines, bytes / 64);
        prop_assert_eq!(h.stats().mem_demand_fills, 0);
    }

    /// Prefetch traffic is bounded: the prefetchers can never fetch more
    /// than a constant factor of the demand traffic (feedback throttling
    /// plus bounded degree).
    #[test]
    fn prefetch_traffic_bounded(stride in 1u64..128, count in 100u64..2000) {
        let arch = presets::intel_i7_5930k();
        let mut h = Hierarchy::from_architecture(&arch);
        for i in 0..count {
            h.access(i * stride * 64, AccessKind::Load);
        }
        let s = h.stats();
        let demand = s.total_accesses;
        // degree 2 stride + 1 next-line = at most ~3x before throttling.
        prop_assert!(
            s.mem_prefetch_fills <= 4 * demand + 64,
            "prefetch {} vs demand {demand}",
            s.mem_prefetch_fills
        );
    }
}
