//! Errors for building a simulated hierarchy from an architecture
//! description.

use std::fmt;

/// An [`Architecture`](palo_arch::Architecture) description that cannot be
/// turned into a simulatable hierarchy.
///
/// [`Hierarchy::from_architecture`](crate::Hierarchy::from_architecture)
/// panics on these (it predates the fallible pipeline); the guarded entry
/// points [`Hierarchy::try_from_architecture`](crate::Hierarchy::try_from_architecture)
/// and
/// [`Hierarchy::try_with_effective_sharing`](crate::Hierarchy::try_with_effective_sharing)
/// report them instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimConfigError {
    /// The architecture describes fewer than two cache levels; the
    /// simulator needs at least L1 and L2 (prefetchers are per-level).
    TooFewLevels {
        /// Number of levels found.
        found: usize,
    },
    /// The L1 line size is zero or not a power of two, so addresses
    /// cannot be mapped to lines by shifting.
    BadLineSize {
        /// The offending line size in bytes.
        line_size: usize,
    },
    /// A cache level has zero sets or zero ways.
    EmptyLevel {
        /// Zero-based cache level index (0 = L1).
        level: usize,
        /// Number of sets computed for the level.
        sets: usize,
        /// Associativity of the level.
        ways: usize,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::TooFewLevels { found } => write!(
                f,
                "cache simulator needs at least L1 and L2, architecture describes {found} level(s)"
            ),
            SimConfigError::BadLineSize { line_size } => write!(
                f,
                "L1 line size must be a nonzero power of two, got {line_size}"
            ),
            SimConfigError::EmptyLevel { level, sets, ways } => write!(
                f,
                "cache level L{} has degenerate geometry ({sets} sets x {ways} ways)",
                level + 1
            ),
        }
    }
}

impl std::error::Error for SimConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimConfigError::TooFewLevels { found: 1 }.to_string().contains("1 level"));
        assert!(SimConfigError::BadLineSize { line_size: 48 }.to_string().contains("48"));
        assert!(SimConfigError::EmptyLevel { level: 1, sets: 0, ways: 8 }
            .to_string()
            .contains("L2"));
    }
}
