//! Streaming consumers of line-granular access traces.
//!
//! The trace walker in `palo-exec` never materializes a trace: it pushes
//! each batched access event into a [`LineSink`] as it is generated.
//! [`Hierarchy`] is the production sink (full cache simulation);
//! [`CountingSink`] is the zero-cost one used to size a trace, dry-run a
//! schedule, or bound work before committing to simulation.
//!
//! Two event shapes exist: byte ranges ([`LineSink::access_range`], the
//! original contract) and run-compressed constant-stride line runs
//! ([`LineSink::access_run`]), plus an optional steady-state cycle
//! protocol ([`LineSink::cycle_snapshot`] / [`LineSink::cycle_matches`] /
//! [`LineSink::apply_cycles`]) that lets the walker skip iterations whose
//! effect on the sink is a pure translation.

use crate::hierarchy::{AccessKind, AccessRun, HierSnap, Hierarchy};

/// Opaque sink state captured at a candidate steady-state cycle
/// boundary. Produced by [`LineSink::cycle_snapshot`] and consumed by
/// [`LineSink::cycle_matches`] / [`LineSink::apply_cycles`].
#[derive(Debug)]
pub struct CycleSnapshot {
    kind: SnapKind,
}

#[derive(Debug)]
enum SnapKind {
    /// For sinks whose behaviour is state-free (pure counting): only the
    /// counters at snapshot time.
    Trivial { lines: u64, runs: u64 },
    /// Full hierarchy image.
    Hier(Box<HierSnap>),
}

/// A consumer of line-granular memory traffic.
///
/// The contract mirrors [`Hierarchy`]'s batched entry points: one
/// [`LineSink::access_range`] call touches every line overlapping
/// `[addr, addr + bytes)` exactly once, one [`LineSink::access_run`]
/// call touches `count` lines a fixed line-stride apart, and
/// [`LineSink::lines_issued`] reports the running total — the trace
/// walker's line-budget guard reads it between batches, so
/// implementations must keep it current.
pub trait LineSink {
    /// Consumes one contiguous access run of `bytes` bytes at `addr`.
    fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind);

    /// Consumes one constant-stride line run. The default expands the run
    /// into per-line [`LineSink::access_range`] calls, so custom sinks
    /// keep working unchanged; [`Hierarchy`] overrides it with the
    /// run-compressed engine.
    fn access_run(&mut self, run: &AccessRun) {
        let bits = self.line_size().max(1).trailing_zeros();
        let mut line = run.start_line;
        for _ in 0..run.count {
            self.access_range(line << bits, 1, run.kind);
            line = line.wrapping_add_signed(run.stride_lines);
        }
    }

    /// Total lines consumed so far (drives resource-budget guards).
    fn lines_issued(&self) -> u64;

    /// Line size in bytes the sink accounts with.
    fn line_size(&self) -> usize;

    /// Resets any cached state before a fresh walk (cache contents,
    /// stream tables); counters may be kept.
    fn flush(&mut self) {}

    /// Whether this sink implements the steady-state cycle protocol.
    /// When `false` (the default) the walker never calls the three
    /// methods below.
    fn supports_cycle_skip(&self) -> bool {
        false
    }

    /// Cheap fingerprint of the traffic consumed since the previous
    /// probe. The walker compares consecutive per-iteration fingerprints
    /// to *guess* a steady-state period; equality here proves nothing —
    /// [`LineSink::cycle_matches`] is the exactness gate.
    fn replay_probe(&mut self) -> u64 {
        0
    }

    /// Captures the sink state at a cycle boundary.
    fn cycle_snapshot(&self) -> Option<CycleSnapshot> {
        None
    }

    /// Whether the current state equals `snap` translated by
    /// `lines_delta` line addresses.
    fn cycle_matches(&self, _snap: &CycleSnapshot, _lines_delta: i64) -> bool {
        false
    }

    /// Fast-forwards `cycles` repetitions of the verified cycle (the
    /// traffic between `snap` and the current state): counters advance by
    /// `cycles` times the delta and internal state translates by
    /// `lines_delta * cycles`.
    fn apply_cycles(&mut self, _snap: &CycleSnapshot, _lines_delta: i64, _cycles: u64) {}
}

impl LineSink for Hierarchy {
    fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        Hierarchy::access_range(self, addr, bytes, kind);
    }

    fn access_run(&mut self, run: &AccessRun) {
        Hierarchy::access_run(self, run);
    }

    fn lines_issued(&self) -> u64 {
        self.stats().total_accesses
    }

    fn line_size(&self) -> usize {
        Hierarchy::line_size(self)
    }

    fn flush(&mut self) {
        Hierarchy::flush(self);
    }

    fn supports_cycle_skip(&self) -> bool {
        true
    }

    fn replay_probe(&mut self) -> u64 {
        self.stats_probe()
    }

    fn cycle_snapshot(&self) -> Option<CycleSnapshot> {
        Some(CycleSnapshot { kind: SnapKind::Hier(Box::new(self.cycle_snapshot_impl())) })
    }

    fn cycle_matches(&self, snap: &CycleSnapshot, lines_delta: i64) -> bool {
        match &snap.kind {
            SnapKind::Hier(h) => self.cycle_matches_impl(h, lines_delta),
            SnapKind::Trivial { .. } => false,
        }
    }

    fn apply_cycles(&mut self, snap: &CycleSnapshot, lines_delta: i64, cycles: u64) {
        if let SnapKind::Hier(h) = &snap.kind {
            self.apply_cycles_impl(h, lines_delta, cycles);
        }
    }
}

/// A sink that only counts: how many lines (and batched access events) a
/// walk would issue, without simulating a cache. Used by the autotuner
/// and the bench harness to size traces cheaply.
#[derive(Debug, Clone)]
pub struct CountingSink {
    line_bits: u32,
    lines: u64,
    runs: u64,
    probe_lines: u64,
    probe_runs: u64,
}

impl CountingSink {
    /// A counter for `line_size`-byte lines (must be a power of two).
    pub fn new(line_size: usize) -> Self {
        let ls = line_size.max(1).next_power_of_two();
        CountingSink {
            line_bits: ls.trailing_zeros(),
            lines: 0,
            runs: 0,
            probe_lines: 0,
            probe_runs: 0,
        }
    }

    /// Lines counted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Batched access events (ranges and runs) counted so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

impl LineSink for CountingSink {
    fn access_range(&mut self, addr: u64, bytes: u64, _kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes - 1) >> self.line_bits;
        self.runs += 1;
        self.lines += last - first + 1;
    }

    fn access_run(&mut self, run: &AccessRun) {
        if run.count == 0 {
            return;
        }
        self.runs += 1;
        self.lines += run.count;
    }

    fn lines_issued(&self) -> u64 {
        self.lines
    }

    fn line_size(&self) -> usize {
        1 << self.line_bits
    }

    fn supports_cycle_skip(&self) -> bool {
        true
    }

    fn replay_probe(&mut self) -> u64 {
        let d = (self.lines - self.probe_lines) ^ (self.runs - self.probe_runs).rotate_left(32);
        self.probe_lines = self.lines;
        self.probe_runs = self.runs;
        d
    }

    fn cycle_snapshot(&self) -> Option<CycleSnapshot> {
        Some(CycleSnapshot { kind: SnapKind::Trivial { lines: self.lines, runs: self.runs } })
    }

    fn cycle_matches(&self, snap: &CycleSnapshot, _lines_delta: i64) -> bool {
        // A pure counter has no state the traffic depends on, so any
        // repeating iteration pattern is a true cycle.
        matches!(snap.kind, SnapKind::Trivial { .. })
    }

    fn apply_cycles(&mut self, snap: &CycleSnapshot, _lines_delta: i64, cycles: u64) {
        if let SnapKind::Trivial { lines, runs } = snap.kind {
            self.lines += (self.lines - lines) * cycles;
            self.runs += (self.runs - runs) * cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;

    #[test]
    fn counting_sink_matches_hierarchy_accounting() {
        let mut h = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let mut c = CountingSink::new(LineSink::line_size(&h));
        for (addr, bytes) in [(32u64, 256u64), (0, 0), (4096, 1), (4095, 2)] {
            LineSink::access_range(&mut h, addr, bytes, AccessKind::Load);
            c.access_range(addr, bytes, AccessKind::Load);
        }
        assert_eq!(c.lines_issued(), h.lines_issued());
        assert_eq!(c.runs(), 3); // the empty run is not counted
    }

    #[test]
    fn counting_sink_run_event_counts_lines() {
        let mut h = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let mut c = CountingSink::new(LineSink::line_size(&h));
        let run =
            AccessRun { start_line: 100, stride_lines: -7, count: 33, kind: AccessKind::Load };
        LineSink::access_run(&mut h, &run);
        LineSink::access_run(&mut c, &run);
        assert_eq!(c.lines_issued(), h.lines_issued());
        assert_eq!(c.lines_issued(), 33);
        assert_eq!(c.runs(), 1);
    }

    #[test]
    fn counting_sink_cycles_are_trivially_exact() {
        let mut c = CountingSink::new(64);
        c.access_range(0, 640, AccessKind::Load); // 10 lines
        let snap = c.cycle_snapshot().expect("counting sink snapshots");
        c.access_range(640, 640, AccessKind::Load); // one cycle: 10 lines
        assert!(c.cycle_matches(&snap, 10));
        c.apply_cycles(&snap, 10, 4);
        assert_eq!(c.lines(), 60);
        assert_eq!(c.runs(), 6);
    }

    #[test]
    fn hierarchy_sink_flush_clears_contents() {
        let mut h = Hierarchy::from_architecture(&presets::intel_i7_6700());
        LineSink::access_range(&mut h, 0, 64, AccessKind::Load);
        LineSink::flush(&mut h);
        // After a flush the same line misses again.
        let s = h.access(0, AccessKind::Load);
        assert_eq!(s.level, h.num_levels());
    }

    #[test]
    fn counting_sink_rounds_line_size() {
        let c = CountingSink::new(48);
        assert_eq!(LineSink::line_size(&c), 64);
    }
}
