//! Streaming consumers of line-granular access traces.
//!
//! The trace walker in `palo-exec` never materializes a trace: it pushes
//! each contiguous access run into a [`LineSink`] as it is generated.
//! [`Hierarchy`] is the production sink (full cache simulation);
//! [`CountingSink`] is the zero-cost one used to size a trace, dry-run a
//! schedule, or bound work before committing to simulation.

use crate::hierarchy::{AccessKind, Hierarchy};

/// A consumer of line-granular memory traffic.
///
/// The contract mirrors [`Hierarchy`]'s batched entry point: one
/// [`LineSink::access_range`] call touches every line overlapping
/// `[addr, addr + bytes)` exactly once, and [`LineSink::lines_issued`]
/// reports the running total — the trace walker's line-budget guard reads
/// it between batches, so implementations must keep it current.
pub trait LineSink {
    /// Consumes one contiguous access run of `bytes` bytes at `addr`.
    fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind);

    /// Total lines consumed so far (drives resource-budget guards).
    fn lines_issued(&self) -> u64;

    /// Line size in bytes the sink accounts with.
    fn line_size(&self) -> usize;

    /// Resets any cached state before a fresh walk (cache contents,
    /// stream tables); counters may be kept.
    fn flush(&mut self) {}
}

impl LineSink for Hierarchy {
    fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        Hierarchy::access_range(self, addr, bytes, kind);
    }

    fn lines_issued(&self) -> u64 {
        self.stats().total_accesses
    }

    fn line_size(&self) -> usize {
        Hierarchy::line_size(self)
    }

    fn flush(&mut self) {
        Hierarchy::flush(self);
    }
}

/// A sink that only counts: how many lines (and contiguous runs) a walk
/// would issue, without simulating a cache. Used by the autotuner and the
/// bench harness to size traces cheaply.
#[derive(Debug, Clone)]
pub struct CountingSink {
    line_bits: u32,
    lines: u64,
    runs: u64,
}

impl CountingSink {
    /// A counter for `line_size`-byte lines (must be a power of two).
    pub fn new(line_size: usize) -> Self {
        let ls = line_size.max(1).next_power_of_two();
        CountingSink { line_bits: ls.trailing_zeros(), lines: 0, runs: 0 }
    }

    /// Lines counted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Contiguous runs counted so far.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

impl LineSink for CountingSink {
    fn access_range(&mut self, addr: u64, bytes: u64, _kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes - 1) >> self.line_bits;
        self.runs += 1;
        self.lines += last - first + 1;
    }

    fn lines_issued(&self) -> u64 {
        self.lines
    }

    fn line_size(&self) -> usize {
        1 << self.line_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;

    #[test]
    fn counting_sink_matches_hierarchy_accounting() {
        let mut h = Hierarchy::from_architecture(&presets::intel_i7_6700());
        let mut c = CountingSink::new(LineSink::line_size(&h));
        for (addr, bytes) in [(32u64, 256u64), (0, 0), (4096, 1), (4095, 2)] {
            LineSink::access_range(&mut h, addr, bytes, AccessKind::Load);
            c.access_range(addr, bytes, AccessKind::Load);
        }
        assert_eq!(c.lines_issued(), h.lines_issued());
        assert_eq!(c.runs(), 3); // the empty run is not counted
    }

    #[test]
    fn hierarchy_sink_flush_clears_contents() {
        let mut h = Hierarchy::from_architecture(&presets::intel_i7_6700());
        LineSink::access_range(&mut h, 0, 64, AccessKind::Load);
        LineSink::flush(&mut h);
        // After a flush the same line misses again.
        let s = h.access(0, AccessKind::Load);
        assert_eq!(s.level, h.num_levels());
    }

    #[test]
    fn counting_sink_rounds_line_size() {
        let c = CountingSink::new(48);
        assert_eq!(LineSink::line_size(&c), 64);
    }
}
