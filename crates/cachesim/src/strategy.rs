//! The pluggable prefetcher strategy layer.
//!
//! [`Hierarchy`](crate::Hierarchy) holds one boxed [`Prefetcher`] per
//! cache level and drives every implementation through the same three
//! contracts (DESIGN.md §16):
//!
//! 1. **Observe** — on each demand L1 miss, every unit sees the missed
//!    line via [`Prefetcher::observe_into`] and appends the lines it
//!    wants fetched. The hierarchy routes level-0 emissions into L1 and
//!    level-`k` emissions into levels `k..` bottom-up, through the shared
//!    accuracy throttle.
//! 2. **Steady state** — the run-compressed replay engine (PR 5) may
//!    lock onto a stream via [`Prefetcher::expects`] and feed it through
//!    the O(1) [`Prefetcher::observe_expected`] /
//!    [`Prefetcher::feed_denied`] / [`Prefetcher::feed_parked`] paths for
//!    as long as [`Prefetcher::capture_free_steps`] proves no
//!    lower-indexed stream can capture the run. Every fast-path
//!    transition must be *bit-identical* to the scan path it replaces;
//!    the defaults opt out (`expects` false), which degrades to per-line
//!    scans and is therefore always correct.
//! 3. **Translation** — the cycle skipper extrapolates a verified
//!    steady-state iteration only if every unit's state matches its
//!    snapshot under a `t`-line translation
//!    ([`Prefetcher::matches_translated`]). The conservative default
//!    returns `false`: a strategy that cannot prove its transitions
//!    commute with translation simply never has cycles skipped, which is
//!    slower but exact.

use crate::prefetch::{Stream, StridePrefetcher};
use palo_arch::PrefetcherConfig;

/// Opaque state image of one prefetcher unit at a steady-state cycle
/// boundary, produced by [`Prefetcher::snapshot`] and consumed by
/// [`Prefetcher::matches_translated`].
#[derive(Debug, Clone)]
pub struct PrefetchSnap(pub(crate) SnapRepr);

#[derive(Debug, Clone)]
pub(crate) enum SnapRepr {
    /// No translation-sensitive state.
    Inert,
    /// A last-observed-line tracker (`u64::MAX` = nothing seen yet).
    LastLine(u64),
    /// A stream table plus its allocation counter.
    Streams { streams: Vec<Stream>, creations: u64 },
}

/// One hardware prefetching unit attached to a cache level.
///
/// Only [`Prefetcher::observe_into`], [`Prefetcher::reset`] and
/// [`Prefetcher::box_clone`] are mandatory; the defaults for the
/// steady-state and translation hooks are conservative (no stream lock,
/// no cycle skipping) and keep run-compressed replay bit-identical to
/// scalar replay for any implementation.
pub trait Prefetcher: std::fmt::Debug + Send + Sync {
    /// Clones the unit behind the trait object ([`Hierarchy`]s are
    /// cloneable).
    ///
    /// [`Hierarchy`]: crate::Hierarchy
    fn box_clone(&self) -> Box<dyn Prefetcher>;

    /// Observes a demand miss to `line`, appends the lines to prefetch,
    /// and returns the index of the stream the access extended (`None`
    /// when the unit tracks no streams, allocated a new one, or is
    /// disabled). Indices returned here key every steady-state hook
    /// below.
    fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize>;

    /// Whether stream `i` exists and predicts exactly `line` — the
    /// precondition for the O(1) feed paths. The default (`false`) opts
    /// the unit out of the run engine's stream lock entirely.
    fn expects(&self, _i: usize, _line: u64) -> bool {
        false
    }

    /// Feeds stream `i` a line it is known ([`Prefetcher::expects`]) to
    /// predict, performing the identical transition the scan-based
    /// observe would. The default falls back to the full scan, which is
    /// that identical transition by definition.
    fn observe_expected(&mut self, _i: usize, line: u64, out: &mut Vec<u64>) {
        let _ = self.observe_into(line, out);
    }

    /// How many consecutive lines of the arithmetic sequence starting at
    /// `next_line` with stride `stride` are safe from capture by a stream
    /// with index below `i`. The run engine re-scans after this many
    /// expected feeds; `0` (the default) forces a scan per line.
    fn capture_free_steps(&self, _i: usize, _next_line: u64, _stride: i64) -> u64 {
        0
    }

    /// Ramp-regime view of stream `i` for the run engine's throttle-aware
    /// fast feeds: `(r, limit, degree)` with `r` the signed frontier
    /// run-ahead, `limit` the run-ahead cap in lines and `degree` the
    /// per-feed push budget. `None` (the default) disables the
    /// [`Prefetcher::feed_denied`] / [`Prefetcher::feed_parked`]
    /// specialisations.
    fn ramp_state(&self, _i: usize) -> Option<(i64, u64, u32)> {
        None
    }

    /// [`Prefetcher::observe_expected`] specialised to a feed whose
    /// pushes the caller's throttle arithmetic pre-denied: the identical
    /// transition with the emitted lines dropped. Only called when
    /// [`Prefetcher::ramp_state`] returned `Some`; the default
    /// materialises and drops.
    fn feed_denied(&mut self, i: usize, line: u64) {
        let mut dropped = Vec::new();
        self.observe_expected(i, line, &mut dropped);
    }

    /// [`Prefetcher::observe_expected`] specialised to a stream parked at
    /// its run-ahead limit (exactly one line emitted per feed), returning
    /// that line. Only called when [`Prefetcher::ramp_state`] returned
    /// `Some`.
    fn feed_parked(&mut self, i: usize, line: u64) -> u64 {
        let mut out = Vec::new();
        self.observe_expected(i, line, &mut out);
        out.pop().unwrap_or(line)
    }

    /// Streams allocated since construction/reset. The cycle skipper
    /// rejects candidate cycles that allocated (allocation reads absolute
    /// stamps and permutes table indices); stateless units report 0.
    fn creations(&self) -> u64 {
        0
    }

    /// Whether the unit is configured to do nothing (observes then only
    /// advance its clock, if any).
    fn disabled(&self) -> bool {
        false
    }

    /// Advances the unit's observe clock by `n` without a table
    /// transition — mirrors `n` disabled observes.
    fn tick(&mut self, _n: u64) {}

    /// Drops all learned state (stream tables, last-line trackers).
    fn reset(&mut self);

    /// Captures the unit's translation-sensitive state for the cycle
    /// skipper.
    fn snapshot(&self) -> PrefetchSnap {
        PrefetchSnap(SnapRepr::Inert)
    }

    /// Whether the unit's current state equals `snap` translated by `t`
    /// line addresses. The conservative default (`false`) disables cycle
    /// skipping whenever this unit is present — exact, just slower — for
    /// strategies that cannot prove their transitions commute with
    /// translation.
    fn matches_translated(&self, _snap: &PrefetchSnap, _t: i64) -> bool {
        false
    }

    /// Translates the unit's state by `shift` line addresses (the cycle
    /// skipper's fast-forward; paired with a prior
    /// [`Prefetcher::matches_translated`] success).
    fn translate(&mut self, _shift: i64) {}
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A unit that never prefetches (the `PrefetcherConfig::None` strategy).
/// Its state is empty, so cycle matching always succeeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct InertPrefetcher;

impl Prefetcher for InertPrefetcher {
    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }

    fn observe_into(&mut self, _line: u64, _out: &mut Vec<u64>) -> Option<usize> {
        None
    }

    fn disabled(&self) -> bool {
        true
    }

    fn reset(&mut self) {}

    fn matches_translated(&self, snap: &PrefetchSnap, _t: i64) -> bool {
        matches!(snap.0, SnapRepr::Inert)
    }
}

/// The L1 next-line (DCU) streamer: on an ascending sequential miss to
/// line `l`, fetch `l + 1`. "Sequential" means `l` extends (or repeats)
/// the previously missed line — arbitrary misses do not trigger it.
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    last_miss: u64,
}

impl NextLinePrefetcher {
    /// A fresh streamer that has seen no miss yet.
    pub fn new() -> Self {
        NextLinePrefetcher { last_miss: u64::MAX }
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }

    fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize> {
        let sequential = line == self.last_miss.wrapping_add(1) || line == self.last_miss;
        self.last_miss = line;
        if sequential {
            out.push(line + 1);
        }
        None
    }

    fn reset(&mut self) {
        self.last_miss = u64::MAX;
    }

    fn snapshot(&self) -> PrefetchSnap {
        PrefetchSnap(SnapRepr::LastLine(self.last_miss))
    }

    fn matches_translated(&self, snap: &PrefetchSnap, t: i64) -> bool {
        match snap.0 {
            SnapRepr::LastLine(last) => {
                // The "no miss yet" sentinel does not translate.
                let want =
                    if last == u64::MAX { u64::MAX } else { last.wrapping_add_signed(t) };
                self.last_miss == want
            }
            _ => false,
        }
    }

    fn translate(&mut self, shift: i64) {
        if self.last_miss != u64::MAX {
            self.last_miss = self.last_miss.wrapping_add_signed(shift);
        }
    }
}

/// Adjacent-pair (buddy-line) unit: on every observed miss to line `l`,
/// fetch the other half of the aligned two-line sector (`l ^ 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjacentPairPrefetcher;

impl Prefetcher for AdjacentPairPrefetcher {
    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }

    fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize> {
        out.push(line ^ 1);
        None
    }

    fn reset(&mut self) {}

    fn matches_translated(&self, snap: &PrefetchSnap, t: i64) -> bool {
        // Stateless, but the buddy map `l ^ 1` only commutes with
        // translation by *even* t: for odd t the sector parity flips and
        // extrapolated fills would diverge from real replay. Restricting
        // cycle skipping to even translations keeps it exact.
        matches!(snap.0, SnapRepr::Inert) && t % 2 == 0
    }
}

/// Builds the simulator unit for `cfg` at cache level `level` (0 = L1).
///
/// The legacy variants keep the seed's exact placement semantics so
/// golden statistics stay byte-identical: at L1 only `NextLine` is
/// active (the paper's simulator has no L1 stride table, so `Stride` at
/// L1 stays inert), while at L2+ `NextLine` degrades to a degree-1,
/// distance-1 stride table and `Stride` maps directly. The zoo variants
/// are live at any level.
pub(crate) fn unit_for(level: usize, cfg: &PrefetcherConfig) -> Box<dyn Prefetcher> {
    match (level, cfg) {
        (_, PrefetcherConfig::None) | (0, PrefetcherConfig::Stride { .. }) => {
            Box::new(InertPrefetcher)
        }
        (0, PrefetcherConfig::NextLine) => Box::new(NextLinePrefetcher::new()),
        (_, PrefetcherConfig::NextLine) => Box::new(StridePrefetcher::new(1, 1)),
        (_, PrefetcherConfig::Stride { degree, max_distance }) => {
            Box::new(StridePrefetcher::new(*degree, *max_distance))
        }
        (_, PrefetcherConfig::AdjacentPair) => Box::new(AdjacentPairPrefetcher),
        (_, PrefetcherConfig::ConfidentStride { degree, max_distance, min_confidence }) => {
            Box::new(StridePrefetcher::with_confidence(*degree, *max_distance, *min_confidence))
        }
        (_, PrefetcherConfig::Stream { degree, max_distance, confirm }) => {
            Box::new(StridePrefetcher::stream(*degree, *max_distance, *confirm))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_triggers_only_on_sequential_misses() {
        let mut p = NextLinePrefetcher::new();
        let mut out = Vec::new();
        p.observe_into(100, &mut out);
        assert!(out.is_empty(), "first miss is not sequential");
        p.observe_into(101, &mut out);
        assert_eq!(out, vec![102]);
        out.clear();
        p.observe_into(500, &mut out);
        assert!(out.is_empty(), "a jump is not sequential");
        p.observe_into(500, &mut out);
        assert_eq!(out, vec![501], "a repeat counts as sequential");
    }

    #[test]
    fn next_line_snapshot_translates() {
        let mut p = NextLinePrefetcher::new();
        let fresh = p.snapshot();
        assert!(p.matches_translated(&fresh, 7), "MAX sentinel matches any t");
        let mut out = Vec::new();
        p.observe_into(100, &mut out);
        let snap = p.snapshot();
        p.observe_into(110, &mut out);
        assert!(p.matches_translated(&snap, 10));
        assert!(!p.matches_translated(&snap, 9));
        p.translate(-10);
        assert!(p.matches_translated(&snap, 0));
    }

    #[test]
    fn adjacent_pair_fetches_buddy() {
        let mut p = AdjacentPairPrefetcher;
        let mut out = Vec::new();
        p.observe_into(100, &mut out);
        p.observe_into(101, &mut out);
        assert_eq!(out, vec![101, 100]);
        let snap = p.snapshot();
        assert!(p.matches_translated(&snap, 2));
        assert!(!p.matches_translated(&snap, 3), "odd translation flips parity");
    }

    #[test]
    fn inert_unit_does_nothing_and_always_matches() {
        let mut p = InertPrefetcher;
        let mut out = Vec::new();
        assert_eq!(p.observe_into(42, &mut out), None);
        assert!(out.is_empty());
        assert!(p.disabled());
        let snap = p.snapshot();
        assert!(p.matches_translated(&snap, 12345));
    }

    #[test]
    fn factory_keeps_legacy_placement() {
        // L1 Stride is inert (the seed had no L1 stride table)...
        let cfg = PrefetcherConfig::Stride { degree: 2, max_distance: 20 };
        assert!(unit_for(0, &cfg).disabled());
        // ...while the same config at L2 is a live stride table.
        assert!(!unit_for(1, &cfg).disabled());
        assert!(unit_for(1, &PrefetcherConfig::None).disabled());
        assert!(!unit_for(0, &PrefetcherConfig::NextLine).disabled());
    }

    #[test]
    fn conservative_defaults_opt_out_of_the_lock() {
        // A minimal custom strategy: only the mandatory methods. The
        // defaults must keep it out of the run engine's stream lock and
        // the cycle skipper.
        #[derive(Debug, Clone)]
        struct Custom;
        impl Prefetcher for Custom {
            fn box_clone(&self) -> Box<dyn Prefetcher> {
                Box::new(self.clone())
            }
            fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) -> Option<usize> {
                out.push(line + 3);
                Some(0)
            }
            fn reset(&mut self) {}
        }
        let mut c = Custom;
        assert!(!c.expects(0, 1));
        assert_eq!(c.capture_free_steps(0, 1, 1), 0);
        assert!(c.ramp_state(0).is_none());
        let snap = c.snapshot();
        assert!(!c.matches_translated(&snap, 0), "default is no cycle skipping");
        let mut out = Vec::new();
        c.observe_expected(0, 7, &mut out);
        assert_eq!(out, vec![10], "default expected feed is the full observe");
    }
}
