//! The multi-level hierarchy: caches + prefetchers + statistics.

use crate::cache::{Cache, Eviction};
use crate::error::SimConfigError;
use crate::prefetch::StridePrefetcher;
use crate::stats::HierarchyStats;
use palo_arch::{Architecture, PrefetcherConfig};

/// Kind of a demand memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read.
    Load,
    /// Write (write-allocate, write-back).
    Store,
    /// Write with a non-temporal hint: bypasses allocation, costs one
    /// bandwidth-side line transfer (write-combining).
    NtStore,
}

/// Which part of the hierarchy served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedBy {
    /// 0 = L1, 1 = L2, ...; equal to the number of levels for memory.
    pub level: usize,
    /// Whether the serving line had been placed there by a prefetcher.
    pub prefetched: bool,
}

/// Feedback-directed prefetch throttling, as real prefetchers implement:
/// when the recent prefetch-accuracy (first-use hits per issued fill)
/// drops below a threshold, issuing is duty-cycled down until accuracy
/// recovers. This prevents pathological streams (e.g. large-stride
/// column walks whose prefetched lines are evicted before use) from
/// flooding the memory bus.
#[derive(Debug, Clone, Default)]
struct PrefetchThrottle {
    fills: u32,
    hits: u32,
    throttled: bool,
    duty: u32,
}

impl PrefetchThrottle {
    const WINDOW: u32 = 2048;
    /// Minimum accuracy (percent) to keep prefetching at full rate.
    const MIN_ACCURACY_PCT: u32 = 15;
    /// In throttled mode, one in this many prefetches still issues so
    /// accuracy can be re-probed.
    const DUTY: u32 = 8;

    fn allow(&mut self) -> bool {
        if !self.throttled {
            return true;
        }
        self.duty = self.duty.wrapping_add(1);
        self.duty.is_multiple_of(Self::DUTY)
    }

    fn on_fill(&mut self) {
        self.fills += 1;
        if self.fills >= Self::WINDOW {
            self.throttled = self.hits * 100 < self.fills * Self::MIN_ACCURACY_PCT;
            // Exponential decay keeps history without unbounded growth.
            self.fills /= 2;
            self.hits /= 2;
        }
    }

    fn on_hit(&mut self) {
        self.hits += 1;
    }
}

/// A simulated cache hierarchy with hardware prefetchers.
///
/// See the crate docs for the modeled behaviour. All demand traffic goes
/// through [`Hierarchy::access`]; statistics accumulate in
/// [`Hierarchy::stats`] until [`Hierarchy::reset_stats`].
#[derive(Debug, Clone)]
pub struct Hierarchy {
    caches: Vec<Cache>,
    latencies: Vec<f64>,
    line_bits: u32,
    l1_next_line: bool,
    /// Last line that missed L1 (the DCU next-line streamer only triggers
    /// on ascending sequential misses, not on arbitrary misses).
    l1_last_miss: u64,
    l2_stride: Option<StridePrefetcher>,
    throttle: PrefetchThrottle,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds the hierarchy described by `arch`, one simulated thread.
    ///
    /// # Panics
    ///
    /// Panics on degenerate architecture descriptions; use
    /// [`Hierarchy::try_from_architecture`] in fallible contexts.
    pub fn from_architecture(arch: &Architecture) -> Self {
        Self::with_effective_sharing(arch, 1, 1)
    }

    /// Fallible variant of [`Hierarchy::from_architecture`].
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] when `arch` has fewer than two cache
    /// levels, a non-power-of-two L1 line size, or a level with zero
    /// sets or ways.
    pub fn try_from_architecture(arch: &Architecture) -> Result<Self, SimConfigError> {
        Self::try_with_effective_sharing(arch, 1, 1)
    }

    /// Builds the hierarchy as *one thread* of a parallel execution sees
    /// it: private levels lose `threads_per_core_used`-ths of their
    /// associativity (hyper-thread sharing), chip-shared levels lose
    /// `cores_used`-ths — the same effective-capacity corrections the
    /// paper applies (`Lieway = Liway / Nthreads`, and `L2way / Ncores`
    /// for the A15's shared L2).
    ///
    /// # Panics
    ///
    /// Panics on degenerate architecture descriptions; use
    /// [`Hierarchy::try_with_effective_sharing`] in fallible contexts.
    pub fn with_effective_sharing(
        arch: &Architecture,
        threads_per_core_used: usize,
        cores_used: usize,
    ) -> Self {
        match Self::try_with_effective_sharing(arch, threads_per_core_used, cores_used) {
            Ok(h) => h,
            Err(e) => panic!("invalid architecture for cache simulation: {e}"),
        }
    }

    /// Fallible variant of [`Hierarchy::with_effective_sharing`].
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] when `arch` has fewer than two cache
    /// levels, a non-power-of-two L1 line size, or a level with zero
    /// sets or ways after the sharing correction.
    pub fn try_with_effective_sharing(
        arch: &Architecture,
        threads_per_core_used: usize,
        cores_used: usize,
    ) -> Result<Self, SimConfigError> {
        if arch.caches.len() < 2 {
            return Err(SimConfigError::TooFewLevels { found: arch.caches.len() });
        }
        let line_size = arch.l1().line_size;
        if line_size == 0 || !line_size.is_power_of_two() {
            return Err(SimConfigError::BadLineSize { line_size });
        }
        let line_bits = line_size.trailing_zeros();
        let mut caches = Vec::new();
        let mut latencies = Vec::new();
        for level in &arch.caches {
            let divisor = match level.sharing {
                palo_arch::SharingScope::Core => threads_per_core_used.max(1),
                palo_arch::SharingScope::Chip => cores_used.max(1),
            };
            // Guard before num_sets(), which divides by ways * line size.
            if level.associativity == 0 || level.line_size == 0 {
                return Err(SimConfigError::EmptyLevel {
                    level: caches.len(),
                    sets: 0,
                    ways: level.associativity,
                });
            }
            let ways = (level.associativity / divisor).max(1);
            let sets = level.num_sets();
            if sets == 0 {
                return Err(SimConfigError::EmptyLevel {
                    level: caches.len(),
                    sets,
                    ways: level.associativity,
                });
            }
            caches.push(Cache::new(sets, ways));
            latencies.push(level.latency_cycles);
        }
        let l1_next_line = matches!(arch.l1().prefetcher, PrefetcherConfig::NextLine);
        let l2_stride = match arch.l2().prefetcher {
            PrefetcherConfig::Stride { degree, max_distance } => {
                Some(StridePrefetcher::new(degree, max_distance))
            }
            PrefetcherConfig::NextLine => Some(StridePrefetcher::new(1, 1)),
            PrefetcherConfig::None => None,
        };
        let n = caches.len();
        Ok(Hierarchy {
            caches,
            latencies,
            line_bits,
            l1_next_line,
            l1_last_miss: u64::MAX,
            l2_stride,
            throttle: PrefetchThrottle::default(),
            stats: HierarchyStats::new(n),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Per-level access latencies (for [`HierarchyStats::memory_cycles`]).
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Clears counters but keeps cache contents (for warm-up protocols).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::new(self.caches.len());
    }

    /// Empties every cache and stream table.
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        if let Some(p) = &mut self.l2_stride {
            p.reset();
        }
        self.throttle = PrefetchThrottle::default();
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.caches.len()
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        1 << self.line_bits
    }

    /// Performs one demand access at byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> ServedBy {
        let line = addr >> self.line_bits;
        self.access_line(line, kind)
    }

    /// Touches every line overlapping `[addr, addr + bytes)` once — the
    /// batched entry point used by the trace generator for contiguous
    /// runs.
    pub fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes - 1) >> self.line_bits;
        for line in first..=last {
            self.access_line(line, kind);
        }
    }

    fn access_line(&mut self, line: u64, kind: AccessKind) -> ServedBy {
        self.stats.total_accesses += 1;
        if kind == AccessKind::NtStore {
            // Non-temporal store: if the line happens to be cached, update
            // it in place (hardware keeps coherence); otherwise bypass the
            // hierarchy entirely at one line-transfer of bus cost.
            if self.caches[0].access(line, true).hit {
                self.stats.levels[0].demand_hits += 1;
                return ServedBy { level: 0, prefetched: false };
            }
            self.stats.levels[0].demand_misses += 1;
            self.stats.nt_store_lines += 1;
            return ServedBy { level: self.caches.len(), prefetched: false };
        }
        let write = kind == AccessKind::Store;

        let mut served = None;
        for (k, cache) in self.caches.iter_mut().enumerate() {
            let lookup = cache.access(line, write && k == 0);
            if lookup.hit {
                self.stats.levels[k].demand_hits += 1;
                if lookup.first_prefetch_use {
                    self.stats.levels[k].prefetch_hits += 1;
                    self.throttle.on_hit();
                }
                served = Some(ServedBy { level: k, prefetched: lookup.first_prefetch_use });
                break;
            }
            self.stats.levels[k].demand_misses += 1;
        }
        let served = served.unwrap_or_else(|| {
            self.stats.mem_demand_fills += 1;
            ServedBy { level: self.caches.len(), prefetched: false }
        });

        // Fill the line into every level above the serving one.
        for k in (0..served.level.min(self.caches.len())).rev() {
            let ev = self.caches[k].fill(line, write && k == 0, false);
            self.handle_eviction(k, ev);
        }

        // Prefetchers observe the demand stream.
        if served.level >= 1 {
            // L1 missed: the L1 next-line streamer fetches the successor,
            // and the L2 prefetcher sees the access.
            let sequential =
                line == self.l1_last_miss.wrapping_add(1) || line == self.l1_last_miss;
            self.l1_last_miss = line;
            if self.l1_next_line && sequential && self.throttle.allow() {
                self.prefetch_fill(0, line + 1);
                self.throttle.on_fill();
            }
            let prefetches =
                self.l2_stride.as_mut().map(|p| p.observe(line)).unwrap_or_default();
            for pline in prefetches {
                if !self.throttle.allow() {
                    continue;
                }
                // Stride prefetches land in L2 (and the LLC on the way).
                for k in (1..self.caches.len()).rev() {
                    self.prefetch_fill(k, pline);
                }
                self.throttle.on_fill();
            }
        }
        served
    }

    /// Fills `line` into level `k` as a prefetch, accounting bus traffic
    /// when the line came from memory.
    fn prefetch_fill(&mut self, k: usize, line: u64) {
        if self.caches[k].probe(line) {
            return;
        }
        // Where does the prefetched data come from?
        let in_lower = (k + 1..self.caches.len()).any(|j| self.caches[j].probe(line));
        if !in_lower {
            self.stats.mem_prefetch_fills += 1;
        }
        self.stats.levels[k].prefetch_fills += 1;
        let ev = self.caches[k].fill(line, false, true);
        self.handle_eviction(k, ev);
    }

    fn handle_eviction(&mut self, k: usize, ev: Eviction) {
        match ev {
            Eviction::None | Eviction::Clean(_) => {}
            Eviction::Dirty(victim) => {
                self.stats.levels[k].dirty_evictions += 1;
                // Write back into the next level; from the last level the
                // line goes to memory.
                let mut level = k + 1;
                let mut line = Some(victim);
                while let Some(v) = line {
                    if level >= self.caches.len() {
                        self.stats.mem_writebacks += 1;
                        line = None;
                    } else if self.caches[level].mark_dirty(v) {
                        line = None;
                    } else {
                        let ev = self.caches[level].fill(v, true, false);
                        match ev {
                            Eviction::Dirty(next) => {
                                self.stats.levels[level].dirty_evictions += 1;
                                line = Some(next);
                                level += 1;
                            }
                            _ => line = None,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::presets;

    fn intel() -> Hierarchy {
        Hierarchy::from_architecture(&presets::intel_i7_6700())
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut h = intel();
        let s = h.access(0x1000, AccessKind::Load);
        assert_eq!(s.level, h.num_levels()); // memory
        let s = h.access(0x1000, AccessKind::Load);
        assert_eq!(s.level, 0);
        assert_eq!(h.stats().levels[0].demand_hits, 1);
        assert_eq!(h.stats().mem_demand_fills, 1);
    }

    #[test]
    fn next_line_prefetch_covers_sequential_stream() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        // line 1 was prefetched by the L1 streamer
        let s = h.access(64, AccessKind::Load);
        assert_eq!(s.level, 0);
        assert!(s.prefetched);
        assert_eq!(h.stats().levels[0].prefetch_hits, 1);
    }

    #[test]
    fn stride_prefetcher_feeds_l2() {
        let mut h = intel();
        // Stride of 4 lines: L1 next-line does not help, L2 stride does.
        let stride = 4 * 64u64;
        let mut mem_after_warmup = 0;
        for i in 0..64u64 {
            let s = h.access(i * stride, AccessKind::Load);
            if i >= 8 && s.level >= h.num_levels() {
                mem_after_warmup += 1;
            }
        }
        assert_eq!(mem_after_warmup, 0, "stride prefetcher should cover the stream");
        assert!(h.stats().levels[1].prefetch_hits > 40);
    }

    #[test]
    fn nt_store_bypasses_and_counts() {
        let mut h = intel();
        for i in 0..16u64 {
            h.access(0x100000 + i * 64, AccessKind::NtStore);
        }
        assert_eq!(h.stats().nt_store_lines, 16);
        assert_eq!(h.stats().mem_demand_fills, 0);
        // The lines are not cached afterwards.
        let s = h.access(0x100000, AccessKind::Load);
        assert_eq!(s.level, h.num_levels());
    }

    #[test]
    fn store_allocates_and_writes_back() {
        let mut h = intel();
        // Write a working set larger than all caches, then stream past it:
        // dirty lines must be written back.
        let llc_bytes = 8 * 1024 * 1024u64;
        for addr in (0..2 * llc_bytes).step_by(64) {
            h.access(addr, AccessKind::Store);
        }
        assert!(h.stats().mem_writebacks > 0);
    }

    #[test]
    fn hit_levels_in_order() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        // Evict from L1 by filling its set: L1 is 8-way (64 sets), lines
        // mapping to set 0 are 64 lines apart.
        let set_stride = 64 * 64u64;
        for i in 1..=16u64 {
            h.access(i * set_stride, AccessKind::Load);
        }
        let s = h.access(0, AccessKind::Load);
        assert!(s.level >= 1, "line should have left L1, got {s:?}");
        assert!(s.level < h.num_levels(), "line should still be in L2/L3");
    }

    #[test]
    fn effective_sharing_halves_ways() {
        let arch = presets::intel_i7_6700();
        let h1 = Hierarchy::from_architecture(&arch);
        let h2 = Hierarchy::with_effective_sharing(&arch, 2, 4);
        assert_eq!(h1.caches[0].capacity(), 2 * h2.caches[0].capacity());
        // L3 shared by 4 cores
        assert_eq!(h1.caches[2].capacity(), 4 * h2.caches[2].capacity());
    }

    #[test]
    fn reset_and_flush() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        h.reset_stats();
        assert_eq!(h.stats().total_accesses, 0);
        // contents survive reset_stats
        assert_eq!(h.access(0, AccessKind::Load).level, 0);
        h.flush();
        assert_eq!(h.access(0, AccessKind::Load).level, h.num_levels());
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut h = intel();
        h.access_range(32, 256, AccessKind::Load); // lines 0..=4 (5 lines)
        assert_eq!(h.stats().total_accesses, 5);
        h.access_range(0, 0, AccessKind::Load);
        assert_eq!(h.stats().total_accesses, 5);
    }

    #[test]
    fn arm_has_two_levels() {
        let h = Hierarchy::from_architecture(&presets::arm_cortex_a15());
        assert_eq!(h.num_levels(), 2);
    }

    #[test]
    fn try_from_architecture_accepts_presets() {
        for arch in
            [presets::intel_i7_6700(), presets::intel_i7_5930k(), presets::arm_cortex_a15()]
        {
            assert!(Hierarchy::try_from_architecture(&arch).is_ok(), "{}", arch.name);
        }
    }

    #[test]
    fn try_from_architecture_rejects_single_level() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1);
        assert_eq!(
            Hierarchy::try_from_architecture(&arch).err(),
            Some(SimConfigError::TooFewLevels { found: 1 })
        );
    }

    #[test]
    fn try_from_architecture_rejects_odd_line_size() {
        let mut arch = presets::intel_i7_6700();
        arch.caches[0].line_size = 48;
        assert_eq!(
            Hierarchy::try_from_architecture(&arch).err(),
            Some(SimConfigError::BadLineSize { line_size: 48 })
        );
    }

    #[test]
    fn try_from_architecture_rejects_zero_ways() {
        let mut arch = presets::intel_i7_6700();
        arch.caches[1].associativity = 0;
        assert!(matches!(
            Hierarchy::try_from_architecture(&arch),
            Err(SimConfigError::EmptyLevel { level: 1, .. })
        ));
    }
}
