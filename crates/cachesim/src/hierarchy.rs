//! The multi-level hierarchy: caches + prefetchers + statistics.

use crate::cache::{AccessOutcome, Cache, Eviction};
use crate::error::SimConfigError;
use crate::stats::HierarchyStats;
use crate::strategy::{unit_for, PrefetchSnap, Prefetcher};
use palo_arch::Architecture;

/// Number of cache levels the fused lookup-victim path keeps on the
/// stack; deeper (hypothetical) hierarchies fall back to the re-scanning
/// fill. Every real architecture has at most three levels.
const FUSED_LEVELS: usize = 8;

/// The parked-frontier predicate of a ramp-capable prefetcher
/// ([`Prefetcher::ramp_state`]) computed from the run engine's local ramp
/// mirror: every further expected feed then pushes exactly one line (the
/// new frontier) and preserves `r`.
#[inline]
fn parked_from(r: i64, st_abs: u64, limit: u64, degree: u32) -> bool {
    degree > 0
        && r >= st_abs as i64
        && r as u64 <= limit
        && (degree == 1 || (r as u64).saturating_add(st_abs) > limit)
}

/// Kind of a demand memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read.
    Load,
    /// Write (write-allocate, write-back).
    Store,
    /// Write with a non-temporal hint: bypasses allocation, costs one
    /// bandwidth-side line transfer (write-combining).
    NtStore,
}

/// A constant-stride sequence of line-granular demand accesses: `count`
/// lines starting at `start_line`, each `stride_lines` apart. The
/// run-compressed replay event — one `AccessRun` stands for what the
/// scalar path issues as `count` individual line accesses, in the same
/// order, with bit-identical statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRun {
    /// First line address (byte address >> line bits).
    pub start_line: u64,
    /// Line-address delta between consecutive accesses (may be negative;
    /// `0` only makes sense with `count <= 1`).
    pub stride_lines: i64,
    /// Number of line accesses in the run.
    pub count: u64,
    /// Demand kind shared by every access of the run.
    pub kind: AccessKind,
}

/// Replay-engine telemetry: how much of the traffic arrived batched and
/// how much was skipped analytically. Deliberately *not* part of
/// [`HierarchyStats`] — the differential contract is that compressed and
/// scalar replay produce identical simulation statistics, while these
/// counters describe the replay mechanism itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Batched access events consumed (runs and ranges).
    pub runs: u64,
    /// Line accesses covered by those events.
    pub run_lines: u64,
    /// Steady-state cycles skipped analytically.
    pub cycles_skipped: u64,
    /// Line accesses accounted by cycle skipping instead of being
    /// replayed (included in `run_lines` and in the simulated totals).
    pub lines_skipped: u64,
}

/// Which part of the hierarchy served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedBy {
    /// 0 = L1, 1 = L2, ...; equal to the number of levels for memory.
    pub level: usize,
    /// Whether the serving line had been placed there by a prefetcher.
    pub prefetched: bool,
}

/// Feedback-directed prefetch throttling, as real prefetchers implement:
/// when the recent prefetch-accuracy (first-use hits per issued fill)
/// drops below a threshold, issuing is duty-cycled down until accuracy
/// recovers. This prevents pathological streams (e.g. large-stride
/// column walks whose prefetched lines are evicted before use) from
/// flooding the memory bus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PrefetchThrottle {
    fills: u32,
    hits: u32,
    throttled: bool,
    duty: u32,
}

impl PrefetchThrottle {
    const WINDOW: u32 = 2048;
    /// Minimum accuracy (percent) to keep prefetching at full rate.
    const MIN_ACCURACY_PCT: u32 = 15;
    /// In throttled mode, one in this many prefetches still issues so
    /// accuracy can be re-probed.
    const DUTY: u32 = 8;

    fn allow(&mut self) -> bool {
        if !self.throttled {
            return true;
        }
        self.duty = self.duty.wrapping_add(1);
        self.duty.is_multiple_of(Self::DUTY)
    }

    /// Whether the next `n` prefetch-issue attempts would all be denied
    /// ([`PrefetchThrottle::allow`] false) without any state change beyond
    /// `n` duty ticks — true only in throttled mode when the duty window
    /// reaches no allow slot within `n` ticks.
    fn denies_run(&self, n: u32) -> bool {
        self.throttled && n < Self::DUTY && (self.duty % Self::DUTY) + n < Self::DUTY
    }

    /// Consumes `n` duty ticks, mirroring `n` denied
    /// [`PrefetchThrottle::allow`] calls (guarded by
    /// [`PrefetchThrottle::denies_run`]).
    fn consume_denied(&mut self, n: u32) {
        self.duty = self.duty.wrapping_add(n);
    }

    fn on_fill(&mut self) {
        self.fills += 1;
        if self.fills >= Self::WINDOW {
            self.throttled = self.hits * 100 < self.fills * Self::MIN_ACCURACY_PCT;
            // Exponential decay keeps history without unbounded growth.
            self.fills /= 2;
            self.hits /= 2;
        }
    }

    fn on_hit(&mut self) {
        self.hits += 1;
    }
}

/// Full hierarchy image at a steady-state cycle boundary, used by the
/// trace walker's cycle skipper. Recency is captured as per-set *order*
/// (not absolute stamps): stamps drift between otherwise-identical
/// steady-state iterations, but every replacement decision depends only
/// on relative order, so order-equality is the exact criterion.
#[derive(Debug)]
pub(crate) struct HierSnap {
    levels: Vec<LevelSnap>,
    /// One state image per prefetcher unit, level order.
    prefs: Vec<PrefetchSnap>,
    throttle: PrefetchThrottle,
    stats: HierarchyStats,
}

#[derive(Debug)]
struct LevelSnap {
    /// `(addr, flags)` entries, oldest-first within each set.
    entries: Vec<(u64, u64)>,
    /// Per-set prefix offsets into `entries` (`set_count + 1` of them).
    starts: Vec<u32>,
}

impl HierSnap {
    /// Simulation statistics at snapshot time (test oracle for per-cycle
    /// deltas; production code reads the field through `apply_cycles`).
    #[cfg(test)]
    pub(crate) fn stats(&self) -> &HierarchyStats {
        &self.stats
    }
}

/// A simulated cache hierarchy with hardware prefetchers.
///
/// See the crate docs for the modeled behaviour. All demand traffic goes
/// through [`Hierarchy::access`], the batched [`Hierarchy::access_range`]
/// or the run-compressed [`Hierarchy::access_run`]; statistics accumulate
/// in [`Hierarchy::stats`] until [`Hierarchy::reset_stats`].
#[derive(Debug, Clone)]
pub struct Hierarchy {
    caches: Vec<Cache>,
    latencies: Vec<f64>,
    line_bits: u32,
    /// One prefetcher unit per cache level (inert where the config has
    /// none), built by [`unit_for`] from the architecture description.
    units: Vec<Box<dyn Prefetcher>>,
    throttle: PrefetchThrottle,
    stats: HierarchyStats,
    replay: ReplayStats,
    /// Statistics image at the previous [`Hierarchy::stats_probe`] call;
    /// probes fingerprint the delta since then.
    probe_last: HierarchyStats,
    /// Reusable scratch for stride-prefetch lines (avoids one allocation
    /// per observed miss on the hot path).
    pf_buf: Vec<u64>,
}

impl Hierarchy {
    /// Builds the hierarchy described by `arch`, one simulated thread.
    ///
    /// # Panics
    ///
    /// Panics on degenerate architecture descriptions; use
    /// [`Hierarchy::try_from_architecture`] in fallible contexts.
    pub fn from_architecture(arch: &Architecture) -> Self {
        Self::with_effective_sharing(arch, 1, 1)
    }

    /// Fallible variant of [`Hierarchy::from_architecture`].
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] when `arch` has fewer than two cache
    /// levels, a non-power-of-two L1 line size, or a level with zero
    /// sets or ways.
    pub fn try_from_architecture(arch: &Architecture) -> Result<Self, SimConfigError> {
        Self::try_with_effective_sharing(arch, 1, 1)
    }

    /// Builds the hierarchy as *one thread* of a parallel execution sees
    /// it: private levels lose `threads_per_core_used`-ths of their
    /// associativity (hyper-thread sharing), chip-shared levels lose
    /// `cores_used`-ths — the same effective-capacity corrections the
    /// paper applies (`Lieway = Liway / Nthreads`, and `L2way / Ncores`
    /// for the A15's shared L2).
    ///
    /// # Panics
    ///
    /// Panics on degenerate architecture descriptions; use
    /// [`Hierarchy::try_with_effective_sharing`] in fallible contexts.
    pub fn with_effective_sharing(
        arch: &Architecture,
        threads_per_core_used: usize,
        cores_used: usize,
    ) -> Self {
        match Self::try_with_effective_sharing(arch, threads_per_core_used, cores_used) {
            Ok(h) => h,
            Err(e) => panic!("invalid architecture for cache simulation: {e}"),
        }
    }

    /// Fallible variant of [`Hierarchy::with_effective_sharing`].
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] when `arch` has fewer than two cache
    /// levels, a non-power-of-two L1 line size, or a level with zero
    /// sets or ways after the sharing correction.
    pub fn try_with_effective_sharing(
        arch: &Architecture,
        threads_per_core_used: usize,
        cores_used: usize,
    ) -> Result<Self, SimConfigError> {
        if arch.caches.len() < 2 {
            return Err(SimConfigError::TooFewLevels { found: arch.caches.len() });
        }
        let line_size = arch.l1().line_size;
        if line_size == 0 || !line_size.is_power_of_two() {
            return Err(SimConfigError::BadLineSize { line_size });
        }
        let line_bits = line_size.trailing_zeros();
        let mut caches = Vec::new();
        let mut latencies = Vec::new();
        for level in &arch.caches {
            let divisor = match level.sharing {
                palo_arch::SharingScope::Core => threads_per_core_used.max(1),
                palo_arch::SharingScope::Chip => cores_used.max(1),
            };
            // Guard before num_sets(), which divides by ways * line size.
            if level.associativity == 0 || level.line_size == 0 {
                return Err(SimConfigError::EmptyLevel {
                    level: caches.len(),
                    sets: 0,
                    ways: level.associativity,
                });
            }
            let ways = (level.associativity / divisor).max(1);
            let sets = level.num_sets();
            if sets == 0 {
                return Err(SimConfigError::EmptyLevel {
                    level: caches.len(),
                    sets,
                    ways: level.associativity,
                });
            }
            caches.push(Cache::new(sets, ways));
            latencies.push(level.latency_cycles);
        }
        let units: Vec<Box<dyn Prefetcher>> = arch
            .caches
            .iter()
            .enumerate()
            .map(|(k, level)| unit_for(k, &level.prefetcher))
            .collect();
        let n = caches.len();
        Ok(Hierarchy {
            caches,
            latencies,
            line_bits,
            units,
            throttle: PrefetchThrottle::default(),
            stats: HierarchyStats::new(n),
            replay: ReplayStats::default(),
            probe_last: HierarchyStats::new(n),
            pf_buf: Vec::new(),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Replay-engine telemetry (run batching and cycle skipping).
    pub fn replay_stats(&self) -> ReplayStats {
        self.replay
    }

    /// Per-level access latencies (for [`HierarchyStats::memory_cycles`]).
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Clears counters but keeps cache contents (for warm-up protocols).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::new(self.caches.len());
        self.replay = ReplayStats::default();
        self.probe_last = HierarchyStats::new(self.caches.len());
    }

    /// Empties every cache and prefetcher unit.
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        for u in &mut self.units {
            u.reset();
        }
        self.throttle = PrefetchThrottle::default();
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.caches.len()
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        1 << self.line_bits
    }

    /// Performs one demand access at byte address `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> ServedBy {
        let line = addr >> self.line_bits;
        self.access_line(line, kind)
    }

    /// Touches every line overlapping `[addr, addr + bytes)` once — the
    /// batched entry point used by the trace generator for contiguous
    /// runs.
    pub fn access_range(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes - 1) >> self.line_bits;
        self.access_run(&AccessRun {
            start_line: first,
            stride_lines: 1,
            count: last - first + 1,
            kind,
        });
    }

    /// Consumes a whole constant-stride run. Statistically bit-identical
    /// to issuing the run's lines one by one through
    /// [`Hierarchy::access`]: the per-line transition is the same, but
    /// the stride-prefetcher table scan is replaced by an O(1)
    /// expected-stream update for as long as the locked stream keeps
    /// predicting the run (the common case for strided walks).
    pub fn access_run(&mut self, run: &AccessRun) {
        if run.count == 0 {
            return;
        }
        self.replay.runs += 1;
        self.replay.run_lines += run.count;
        if run.count <= 2 || run.stride_lines == 0 || run.kind == AccessKind::NtStore {
            let mut line = run.start_line;
            for _ in 0..run.count {
                self.access_line(line, run.kind);
                line = line.wrapping_add_signed(run.stride_lines);
            }
            return;
        }
        self.access_run_fast(run);
    }

    fn access_line(&mut self, line: u64, kind: AccessKind) -> ServedBy {
        self.stats.total_accesses += 1;
        if kind == AccessKind::NtStore {
            // Non-temporal store: if the line happens to be cached, update
            // it in place (hardware keeps coherence); otherwise bypass the
            // hierarchy entirely at one line-transfer of bus cost.
            if self.caches[0].access(line, true).hit {
                self.stats.levels[0].demand_hits += 1;
                return ServedBy { level: 0, prefetched: false };
            }
            self.stats.levels[0].demand_misses += 1;
            self.stats.nt_store_lines += 1;
            return ServedBy { level: self.caches.len(), prefetched: false };
        }
        let write = kind == AccessKind::Store;
        let nlevels = self.caches.len();

        // One fused pass per missing level remembers the victim slot the
        // fill will take, so the fill skips its own set scan. Valid
        // because nothing touches level `k` between its lookup and its
        // fill: lower-level lookups and fills only operate on deeper
        // caches, and eviction cascades only flow downward.
        let mut victims = [0u32; FUSED_LEVELS];
        let mut served = None;
        // The index drives `caches`/`stats.levels` too, not just `victims`.
        #[allow(clippy::needless_range_loop)]
        for k in 0..nlevels {
            match self.caches[k].access_with_victim(line, write && k == 0) {
                AccessOutcome::Hit { first_prefetch_use } => {
                    self.stats.levels[k].demand_hits += 1;
                    if first_prefetch_use {
                        self.stats.levels[k].prefetch_hits += 1;
                        self.throttle.on_hit();
                    }
                    served = Some(ServedBy { level: k, prefetched: first_prefetch_use });
                    break;
                }
                AccessOutcome::Miss { victim } => {
                    self.stats.levels[k].demand_misses += 1;
                    if k < FUSED_LEVELS {
                        victims[k] = victim;
                    }
                }
            }
        }
        let served = served.unwrap_or_else(|| {
            self.stats.mem_demand_fills += 1;
            ServedBy { level: nlevels, prefetched: false }
        });

        // Fill the line into every level above the serving one (each of
        // which just reported a miss, so the line is provably absent).
        for k in (0..served.level.min(nlevels)).rev() {
            let ev = if k < FUSED_LEVELS {
                self.caches[k].insert_at(victims[k], line, write && k == 0, false)
            } else {
                self.caches[k].fill_absent(line, write && k == 0, false)
            };
            self.handle_eviction(k, ev);
        }

        // Prefetchers observe the demand stream.
        if served.level >= 1 {
            self.observe_demand_miss(line);
        }
        served
    }

    /// Feeds an L1 demand miss to every prefetcher unit and issues what
    /// they emit — the scalar engine's observe path.
    fn observe_demand_miss(&mut self, line: u64) {
        let mut units = std::mem::take(&mut self.units);
        let mut buf = std::mem::take(&mut self.pf_buf);
        for (k, unit) in units.iter_mut().enumerate() {
            self.observe_unit(k, unit.as_mut(), line, &mut buf);
        }
        self.pf_buf = buf;
        self.units = units;
    }

    /// Feeds one miss to the unit at level `k` and issues its emissions —
    /// the per-unit observe step shared by the scalar engine and the run
    /// engine (which drives the locked unit separately).
    fn observe_unit(
        &mut self,
        k: usize,
        unit: &mut dyn Prefetcher,
        line: u64,
        buf: &mut Vec<u64>,
    ) {
        buf.clear();
        unit.observe_into(line, buf);
        self.issue_prefetches(k, buf);
    }

    /// The run-compressed hot loop: same per-line transition as
    /// [`Hierarchy::access_line`], plus an expected-stream lock that
    /// bypasses the level-1 prefetcher's table scan while a lower-indexed
    /// stream provably cannot capture the run's lines. Units at other
    /// levels take the plain per-line observe path (cheap: they are
    /// table-free or inert on every preset).
    fn access_run_fast(&mut self, run: &AccessRun) {
        let write = run.kind == AccessKind::Store;
        let stride = run.stride_lines;
        let nlevels = self.caches.len();
        let mut line = run.start_line;
        // Locked stream index + how many more lines it is provably safe
        // to feed it without re-scanning the table. While locked,
        // `expect_next` is the line the locked stream predicts: an
        // activated lock implies the stream's stride equals the run's
        // (`expects` held for `line + stride`), and `observe_expected`
        // keeps `last = line` with the stride unchanged, so the
        // prediction advances by `stride` per fed line — the same test
        // `expects` performs, without re-reading the table.
        let mut locked: Option<usize> = None;
        let mut safe_left: u64 = 0;
        let mut expect_next: u64 = 0;
        // Whether the locked stream's frontier is parked at the run-ahead
        // limit — feeds then take the O(1) single-line path. Parkedness
        // is invariant under parked feeds, so it is only re-evaluated
        // after full-path feeds.
        let mut parked = false;
        // Exact local mirror of the locked stream's ramp state (see
        // [`Prefetcher::ramp_state`]): `ramp_r` is the signed frontier
        // run-ahead, updated arithmetically on fast-path feeds and
        // re-read after full-path feeds, so both fast-feed regime checks
        // run without touching the stream table. `has_ramp` is whether
        // the locked unit exposes a ramp at all — strategies that keep
        // the default `None` still lock, but every feed takes the
        // full-transition path.
        let mut has_ramp = false;
        let mut ramp_r: i64 = 0;
        let mut ramp_limit: u64 = 0;
        let mut degree: u32 = 0;
        let st_abs = stride.unsigned_abs();
        let mut units = std::mem::take(&mut self.units);
        let mut buf = std::mem::take(&mut self.pf_buf);
        for _ in 0..run.count {
            self.stats.total_accesses += 1;
            let mut victims = [0u32; FUSED_LEVELS];
            let mut served_level = nlevels;
            let mut first_use = false;
            // The index drives `caches`/`stats.levels` too, not just `victims`.
            #[allow(clippy::needless_range_loop)]
            for k in 0..nlevels {
                match self.caches[k].access_with_victim(line, write && k == 0) {
                    AccessOutcome::Hit { first_prefetch_use } => {
                        served_level = k;
                        first_use = first_prefetch_use;
                        break;
                    }
                    AccessOutcome::Miss { victim } => {
                        self.stats.levels[k].demand_misses += 1;
                        if k < FUSED_LEVELS {
                            victims[k] = victim;
                        }
                    }
                }
            }
            if served_level == nlevels {
                self.stats.mem_demand_fills += 1;
            } else {
                self.stats.levels[served_level].demand_hits += 1;
                if first_use {
                    self.stats.levels[served_level].prefetch_hits += 1;
                    self.throttle.on_hit();
                }
            }
            for k in (0..served_level.min(nlevels)).rev() {
                let ev = if k < FUSED_LEVELS {
                    self.caches[k].insert_at(victims[k], line, write && k == 0, false)
                } else {
                    self.caches[k].fill_absent(line, write && k == 0, false)
                };
                self.handle_eviction(k, ev);
            }
            if served_level >= 1 {
                // Level-0 unit: plain per-miss observe (next-line and
                // adjacent-pair units are O(1) and table-free).
                if let Some(u0) = units.first_mut() {
                    self.observe_unit(0, u0.as_mut(), line, &mut buf);
                }
                // Level-1 unit: the expected-stream lock.
                if let Some(p) = units.get_mut(1).map(Box::as_mut) {
                    if p.disabled() {
                        p.tick(1);
                    } else {
                        match locked {
                            Some(f) if safe_left > 0 && line == expect_next => {
                                safe_left -= 1;
                                expect_next = line.wrapping_add_signed(stride);
                                // Ramp span: frontier lead gained per
                                // full-degree feed.
                                let span =
                                    st_abs.saturating_mul(u64::from(degree).saturating_sub(1));
                                if parked {
                                    let pline = p.feed_parked(f, line);
                                    self.issue_prefetches(1, std::slice::from_ref(&pline));
                                } else if has_ramp
                                    && ramp_r >= st_abs as i64
                                    && (ramp_r as u64).saturating_add(span) <= ramp_limit
                                    && self.throttle.denies_run(degree)
                                {
                                    // Exactly `degree` pushes, all denied:
                                    // O(1) transition, nothing issued.
                                    p.feed_denied(f, line);
                                    self.throttle.consume_denied(degree);
                                    ramp_r += span as i64;
                                    parked = parked_from(ramp_r, st_abs, ramp_limit, degree);
                                } else {
                                    buf.clear();
                                    p.observe_expected(f, line, &mut buf);
                                    if has_ramp {
                                        if let Some((r, _, _)) = p.ramp_state(f) {
                                            ramp_r = r;
                                        }
                                        parked =
                                            parked_from(ramp_r, st_abs, ramp_limit, degree);
                                    }
                                    if !buf.is_empty() {
                                        self.issue_prefetches(1, &buf);
                                    }
                                }
                            }
                            _ => {
                                buf.clear();
                                locked = p.observe_into(line, &mut buf);
                                safe_left = 0;
                                parked = false;
                                has_ramp = false;
                                if let Some(f) = locked {
                                    let next = line.wrapping_add_signed(stride);
                                    if p.expects(f, next) {
                                        safe_left = p.capture_free_steps(f, next, stride);
                                        expect_next = next;
                                        if let Some((r, limit, d)) = p.ramp_state(f) {
                                            has_ramp = true;
                                            ramp_r = r;
                                            ramp_limit = limit;
                                            degree = d;
                                            parked =
                                                parked_from(ramp_r, st_abs, ramp_limit, degree);
                                        }
                                    }
                                }
                                if !buf.is_empty() {
                                    self.issue_prefetches(1, &buf);
                                }
                            }
                        }
                    }
                }
                // Deeper units (inert on every real preset): plain observe.
                for (k, u) in units.iter_mut().enumerate().skip(2) {
                    self.observe_unit(k, u.as_mut(), line, &mut buf);
                }
            }
            line = line.wrapping_add_signed(stride);
        }
        buf.clear();
        self.pf_buf = buf;
        self.units = units;
    }

    /// Routes a unit's emitted prefetch lines into the hierarchy, through
    /// the accuracy throttle. Level-0 emissions fill L1 only (the
    /// next-line/adjacent-pair placement); emissions from level `k >= 1`
    /// fill levels `k..` bottom-up.
    fn issue_prefetches(&mut self, level: usize, plines: &[u64]) {
        if level == 0 {
            for &pline in plines {
                if self.throttle.allow() {
                    self.prefetch_fill(0, pline);
                    self.throttle.on_fill();
                }
            }
            return;
        }
        let last = self.caches.len() - 1;
        for &pline in plines {
            if !self.throttle.allow() {
                continue;
            }
            // Stream/stride prefetches land in their own level (and the
            // LLC on the way), filled bottom-up: once the bottom level is
            // handled the line is resident there, so the upper levels'
            // came-from-memory probe (`in_lower` in
            // [`Hierarchy::prefetch_fill`]) would provably succeed and is
            // skipped.
            for k in (level..=last).rev() {
                if self.caches[k].probe(pline) {
                    continue;
                }
                if k == last {
                    self.stats.mem_prefetch_fills += 1;
                }
                self.stats.levels[k].prefetch_fills += 1;
                let ev = self.caches[k].fill_absent(pline, false, true);
                self.handle_eviction(k, ev);
            }
            self.throttle.on_fill();
        }
    }

    /// Fills `line` into level `k` as a prefetch, accounting bus traffic
    /// when the line came from memory.
    fn prefetch_fill(&mut self, k: usize, line: u64) {
        if self.caches[k].probe(line) {
            return;
        }
        // Where does the prefetched data come from?
        let in_lower = (k + 1..self.caches.len()).any(|j| self.caches[j].probe(line));
        if !in_lower {
            self.stats.mem_prefetch_fills += 1;
        }
        self.stats.levels[k].prefetch_fills += 1;
        let ev = self.caches[k].fill_absent(line, false, true);
        self.handle_eviction(k, ev);
    }

    fn handle_eviction(&mut self, k: usize, ev: Eviction) {
        match ev {
            Eviction::None | Eviction::Clean(_) => {}
            Eviction::Dirty(victim) => {
                self.stats.levels[k].dirty_evictions += 1;
                // Write back into the next level; from the last level the
                // line goes to memory.
                let mut level = k + 1;
                let mut line = Some(victim);
                while let Some(v) = line {
                    if level >= self.caches.len() {
                        self.stats.mem_writebacks += 1;
                        line = None;
                    } else {
                        match self.caches[level].mark_dirty_with_victim(v) {
                            // Present: writeback absorbed in place.
                            None => line = None,
                            Some(slot) => {
                                let ev = self.caches[level].insert_at(slot, v, true, false);
                                match ev {
                                    Eviction::Dirty(next) => {
                                        self.stats.levels[level].dirty_evictions += 1;
                                        line = Some(next);
                                        level += 1;
                                    }
                                    _ => line = None,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fingerprints the statistics delta since the previous probe, mixed
    /// with the throttle's internal counters — the per-iteration
    /// signature the trace walker's cycle detector keys on. The mix-in
    /// matters: a steady stream issues *constant* stats deltas every
    /// iteration, but the throttle's fills/hits counters follow their
    /// halving sawtooth with a much longer period, and state equality
    /// (hence a true cycle) only holds at that period. Hashing the
    /// throttle state makes the sawtooth visible to the period guesser,
    /// so it proposes the right period instead of burning verification
    /// attempts on period 1.
    pub(crate) fn stats_probe(&mut self) -> u64 {
        const M: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut h: u64 = 0;
        {
            let mut mix = |cur: u64, prev: u64| {
                h = (h ^ cur.wrapping_sub(prev)).wrapping_mul(M).rotate_left(29);
            };
            mix(u64::from(self.throttle.fills), 0);
            mix(u64::from(self.throttle.hits), 0);
            mix(u64::from(self.throttle.duty), 0);
            mix(u64::from(self.throttle.throttled), 0);
            for u in &self.units {
                mix(u.creations(), 0);
            }
            for (l, p) in self.stats.levels.iter().zip(&self.probe_last.levels) {
                mix(l.demand_hits, p.demand_hits);
                mix(l.demand_misses, p.demand_misses);
                mix(l.prefetch_hits, p.prefetch_hits);
                mix(l.prefetch_fills, p.prefetch_fills);
                mix(l.dirty_evictions, p.dirty_evictions);
            }
            mix(self.stats.mem_demand_fills, self.probe_last.mem_demand_fills);
            mix(self.stats.mem_prefetch_fills, self.probe_last.mem_prefetch_fills);
            mix(self.stats.mem_writebacks, self.probe_last.mem_writebacks);
            mix(self.stats.nt_store_lines, self.probe_last.nt_store_lines);
            mix(self.stats.total_accesses, self.probe_last.total_accesses);
        }
        self.probe_last.clone_from(&self.stats);
        h
    }

    /// Captures the full hierarchy image (cache contents with per-set
    /// recency order, stream table, throttle, statistics) for the
    /// steady-state cycle skipper.
    pub(crate) fn cycle_snapshot_impl(&self) -> HierSnap {
        let mut levels = Vec::with_capacity(self.caches.len());
        for c in &self.caches {
            let nsets = c.set_count();
            let mut entries = Vec::new();
            let mut starts = Vec::with_capacity(nsets + 1);
            starts.push(0u32);
            for s in 0..nsets {
                c.set_entries_by_recency(s, &mut entries);
                starts.push(entries.len() as u32);
            }
            levels.push(LevelSnap { entries, starts });
        }
        HierSnap {
            levels,
            prefs: self.units.iter().map(|u| u.snapshot()).collect(),
            throttle: self.throttle.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Whether the current hierarchy state equals `snap` translated by
    /// `t` line addresses. Recency is compared as per-set order;
    /// absolute stamps/clocks are excluded because every replacement and
    /// stream-eviction decision depends only on relative order, which
    /// identical event sequences preserve. Stream-table *allocations*
    /// during the candidate cycle are rejected outright
    /// (`creations` compare): allocation is the one event that reads
    /// absolute stamps and permutes table indices.
    pub(crate) fn cycle_matches_impl(&self, snap: &HierSnap, t: i64) -> bool {
        for (u, s) in self.units.iter().zip(&snap.prefs) {
            if !u.matches_translated(s, t) {
                return false;
            }
        }
        if self.throttle != snap.throttle {
            return false;
        }
        let mut scratch: Vec<(u64, u64)> = Vec::new();
        for (c, ls) in self.caches.iter().zip(&snap.levels) {
            let nsets = c.set_count();
            let shift = t.rem_euclid(nsets as i64) as usize;
            for cur_set in 0..nsets {
                let old_set = (cur_set + nsets - shift) % nsets;
                scratch.clear();
                c.set_entries_by_recency(cur_set, &mut scratch);
                let lo = ls.starts[old_set] as usize;
                let hi = ls.starts[old_set + 1] as usize;
                let want = &ls.entries[lo..hi];
                if scratch.len() != want.len() {
                    return false;
                }
                for (have, want) in scratch.iter().zip(want) {
                    if have.1 != want.1 || have.0 != want.0.wrapping_add_signed(t) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Fast-forwards `cycles` steady-state cycles: statistics advance by
    /// `cycles` times the per-cycle delta (current minus `snap`), and the
    /// whole state image translates by `t * cycles` line addresses.
    /// Exact given a prior [`Hierarchy::cycle_matches_impl`] success: the
    /// per-line transition is translation-invariant, so each skipped
    /// cycle would have produced the same delta and shift.
    pub(crate) fn apply_cycles_impl(&mut self, snap: &HierSnap, t: i64, cycles: u64) {
        let lines_delta = self.stats.total_accesses - snap.stats.total_accesses;
        self.stats.add_scaled_delta(&snap.stats, cycles);
        let shift = t.saturating_mul(cycles as i64);
        for c in &mut self.caches {
            c.translate(shift);
        }
        for u in &mut self.units {
            u.translate(shift);
        }
        self.replay.cycles_skipped += cycles;
        self.replay.lines_skipped += lines_delta * cycles;
        self.replay.run_lines += lines_delta * cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palo_arch::{presets, PrefetcherConfig};

    fn intel() -> Hierarchy {
        Hierarchy::from_architecture(&presets::intel_i7_6700())
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut h = intel();
        let s = h.access(0x1000, AccessKind::Load);
        assert_eq!(s.level, h.num_levels()); // memory
        let s = h.access(0x1000, AccessKind::Load);
        assert_eq!(s.level, 0);
        assert_eq!(h.stats().levels[0].demand_hits, 1);
        assert_eq!(h.stats().mem_demand_fills, 1);
    }

    #[test]
    fn next_line_prefetch_covers_sequential_stream() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        // line 1 was prefetched by the L1 streamer
        let s = h.access(64, AccessKind::Load);
        assert_eq!(s.level, 0);
        assert!(s.prefetched);
        assert_eq!(h.stats().levels[0].prefetch_hits, 1);
    }

    #[test]
    fn stride_prefetcher_feeds_l2() {
        let mut h = intel();
        // Stride of 4 lines: L1 next-line does not help, L2 stride does.
        let stride = 4 * 64u64;
        let mut mem_after_warmup = 0;
        for i in 0..64u64 {
            let s = h.access(i * stride, AccessKind::Load);
            if i >= 8 && s.level >= h.num_levels() {
                mem_after_warmup += 1;
            }
        }
        assert_eq!(mem_after_warmup, 0, "stride prefetcher should cover the stream");
        assert!(h.stats().levels[1].prefetch_hits > 40);
    }

    #[test]
    fn nt_store_bypasses_and_counts() {
        let mut h = intel();
        for i in 0..16u64 {
            h.access(0x100000 + i * 64, AccessKind::NtStore);
        }
        assert_eq!(h.stats().nt_store_lines, 16);
        assert_eq!(h.stats().mem_demand_fills, 0);
        // The lines are not cached afterwards.
        let s = h.access(0x100000, AccessKind::Load);
        assert_eq!(s.level, h.num_levels());
    }

    #[test]
    fn store_allocates_and_writes_back() {
        let mut h = intel();
        // Write a working set larger than all caches, then stream past it:
        // dirty lines must be written back.
        let llc_bytes = 8 * 1024 * 1024u64;
        for addr in (0..2 * llc_bytes).step_by(64) {
            h.access(addr, AccessKind::Store);
        }
        assert!(h.stats().mem_writebacks > 0);
    }

    #[test]
    fn hit_levels_in_order() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        // Evict from L1 by filling its set: L1 is 8-way (64 sets), lines
        // mapping to set 0 are 64 lines apart.
        let set_stride = 64 * 64u64;
        for i in 1..=16u64 {
            h.access(i * set_stride, AccessKind::Load);
        }
        let s = h.access(0, AccessKind::Load);
        assert!(s.level >= 1, "line should have left L1, got {s:?}");
        assert!(s.level < h.num_levels(), "line should still be in L2/L3");
    }

    #[test]
    fn effective_sharing_halves_ways() {
        let arch = presets::intel_i7_6700();
        let h1 = Hierarchy::from_architecture(&arch);
        let h2 = Hierarchy::with_effective_sharing(&arch, 2, 4);
        assert_eq!(h1.caches[0].capacity(), 2 * h2.caches[0].capacity());
        // L3 shared by 4 cores
        assert_eq!(h1.caches[2].capacity(), 4 * h2.caches[2].capacity());
    }

    #[test]
    fn reset_and_flush() {
        let mut h = intel();
        h.access(0, AccessKind::Load);
        h.reset_stats();
        assert_eq!(h.stats().total_accesses, 0);
        // contents survive reset_stats
        assert_eq!(h.access(0, AccessKind::Load).level, 0);
        h.flush();
        assert_eq!(h.access(0, AccessKind::Load).level, h.num_levels());
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut h = intel();
        h.access_range(32, 256, AccessKind::Load); // lines 0..=4 (5 lines)
        assert_eq!(h.stats().total_accesses, 5);
        h.access_range(0, 0, AccessKind::Load);
        assert_eq!(h.stats().total_accesses, 5);
    }

    #[test]
    fn arm_has_two_levels() {
        let h = Hierarchy::from_architecture(&presets::arm_cortex_a15());
        assert_eq!(h.num_levels(), 2);
    }

    #[test]
    fn try_from_architecture_accepts_presets() {
        for arch in
            [presets::intel_i7_6700(), presets::intel_i7_5930k(), presets::arm_cortex_a15()]
        {
            assert!(Hierarchy::try_from_architecture(&arch).is_ok(), "{}", arch.name);
        }
    }

    #[test]
    fn try_from_architecture_rejects_single_level() {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(1);
        assert_eq!(
            Hierarchy::try_from_architecture(&arch).err(),
            Some(SimConfigError::TooFewLevels { found: 1 })
        );
    }

    #[test]
    fn try_from_architecture_rejects_odd_line_size() {
        let mut arch = presets::intel_i7_6700();
        arch.caches[0].line_size = 48;
        assert_eq!(
            Hierarchy::try_from_architecture(&arch).err(),
            Some(SimConfigError::BadLineSize { line_size: 48 })
        );
    }

    #[test]
    fn try_from_architecture_rejects_zero_ways() {
        let mut arch = presets::intel_i7_6700();
        arch.caches[1].associativity = 0;
        assert!(matches!(
            Hierarchy::try_from_architecture(&arch),
            Err(SimConfigError::EmptyLevel { level: 1, .. })
        ));
    }

    /// The core differential property at the unit level: a strided run
    /// through `access_run` leaves identical statistics to the same lines
    /// pushed one by one through `access`.
    fn assert_run_matches_scalar(stride_lines: i64, count: u64, kind: AccessKind) {
        for arch in
            [presets::intel_i7_6700(), presets::intel_i7_5930k(), presets::arm_cortex_a15()]
        {
            assert_run_matches_scalar_on(&arch, stride_lines, count, kind);
        }
    }

    fn assert_run_matches_scalar_on(
        arch: &palo_arch::Architecture,
        stride_lines: i64,
        count: u64,
        kind: AccessKind,
    ) {
        let mut fast = Hierarchy::from_architecture(arch);
        let mut slow = Hierarchy::from_architecture(arch);
        let start_line = 1 << 14;
        fast.access_run(&AccessRun { start_line, stride_lines, count, kind });
        let mut line = start_line;
        for _ in 0..count {
            slow.access_line(line, kind);
            line = line.wrapping_add_signed(stride_lines);
        }
        assert_eq!(fast.stats(), slow.stats(), "{}: stride {stride_lines}", arch.name);
        // And the state is equivalent too: a probe stream afterwards
        // behaves identically.
        let probe = AccessRun { start_line, stride_lines, count, kind: AccessKind::Load };
        fast.access_run(&probe);
        let mut line = start_line;
        for _ in 0..count {
            slow.access_line(line, AccessKind::Load);
            line = line.wrapping_add_signed(stride_lines);
        }
        assert_eq!(fast.stats(), slow.stats(), "{}: reprobe {stride_lines}", arch.name);
    }

    #[test]
    fn run_engine_matches_scalar_unit_stride() {
        assert_run_matches_scalar(1, 500, AccessKind::Load);
        assert_run_matches_scalar(1, 500, AccessKind::Store);
    }

    #[test]
    fn run_engine_matches_scalar_big_strides() {
        for stride in [2i64, 7, 16, 100, 1000, -3, -64] {
            assert_run_matches_scalar(stride, 300, AccessKind::Load);
            assert_run_matches_scalar(stride, 300, AccessKind::Store);
        }
    }

    /// Every `PrefetcherConfig` variant installed at both L1 and L2, plus
    /// the zoo platform presets: the run engine must stay bit-identical
    /// to the scalar path for every [`Prefetcher`] implementation —
    /// including the conservative implementations that opt out of the
    /// stream lock entirely.
    #[test]
    fn run_engine_matches_scalar_across_the_prefetcher_zoo() {
        let variants = [
            PrefetcherConfig::None,
            PrefetcherConfig::NextLine,
            PrefetcherConfig::AdjacentPair,
            PrefetcherConfig::Stride { degree: 2, max_distance: 20 },
            PrefetcherConfig::ConfidentStride {
                degree: 2,
                max_distance: 12,
                min_confidence: 3,
            },
            PrefetcherConfig::Stream { degree: 4, max_distance: 16, confirm: 2 },
        ];
        let mut archs: Vec<palo_arch::Architecture> = variants
            .into_iter()
            .map(|pf| {
                let mut arch = presets::intel_i7_6700();
                arch.caches[0].prefetcher = pf;
                arch.caches[1].prefetcher = pf;
                arch
            })
            .collect();
        archs.extend(presets::zoo());
        for arch in &archs {
            for stride in [1i64, 4, -3] {
                assert_run_matches_scalar_on(arch, stride, 400, AccessKind::Load);
                assert_run_matches_scalar_on(arch, stride, 400, AccessKind::Store);
            }
        }
    }

    #[test]
    fn run_engine_counts_replay() {
        let mut h = intel();
        h.access_run(&AccessRun {
            start_line: 0,
            stride_lines: 3,
            count: 64,
            kind: AccessKind::Load,
        });
        assert_eq!(h.replay_stats().runs, 1);
        assert_eq!(h.replay_stats().run_lines, 64);
        assert_eq!(h.stats().total_accesses, 64);
    }

    /// A tiny hierarchy without prefetchers: the throttle and stream
    /// table stay in their default states, so a streaming pattern reaches
    /// an exactly periodic steady state after a short warm-up.
    fn tiny_no_prefetch() -> Hierarchy {
        let mut arch = presets::intel_i7_6700();
        arch.caches.truncate(2);
        arch.caches[0].size_bytes = 4 * 1024; // 8 sets x 8 ways
        arch.caches[0].prefetcher = PrefetcherConfig::None;
        arch.caches[1].size_bytes = 16 * 1024; // 32 sets x 8 ways
        arch.caches[1].prefetcher = PrefetcherConfig::None;
        Hierarchy::from_architecture(&arch)
    }

    #[test]
    fn cycle_snapshot_round_trip_detects_translation() {
        let mut h = tiny_no_prefetch();
        // One "iteration" = a 32-line streaming row; consecutive rows are
        // translated by 32 lines.
        let row = |h: &mut Hierarchy, r: u64| {
            h.access_run(&AccessRun {
                start_line: r * 32,
                stride_lines: 1,
                count: 32,
                kind: AccessKind::Store,
            });
        };
        // Warm until both levels churn in steady state (256 lines of
        // capacity total << 40 rows).
        for r in 0..40u64 {
            row(&mut h, r);
        }
        let snap = h.cycle_snapshot_impl();
        row(&mut h, 40);
        // One more identical row shifted by 32 lines: states match under
        // translation and under nothing else.
        assert!(h.cycle_matches_impl(&snap, 32));
        assert!(!h.cycle_matches_impl(&snap, 0));
        let before = h.stats().clone();
        let snap_stats = snap.stats().clone();
        let mut skipped = h.clone();
        skipped.apply_cycles_impl(&snap, 32, 3);
        // Walking three more rows produces the same stats as skipping 3.
        for r in 41..44u64 {
            row(&mut h, r);
        }
        assert_eq!(h.stats(), skipped.stats());
        assert_eq!(
            skipped.stats().total_accesses - before.total_accesses,
            3 * (before.total_accesses - snap_stats.total_accesses)
        );
        assert_eq!(skipped.replay_stats().cycles_skipped, 3);
        // And the skipped-to state continues identically.
        row(&mut h, 44);
        row(&mut skipped, 44);
        assert_eq!(h.stats(), skipped.stats());
    }
}
