//! Event counters and the latency-weighted cycle estimate.

use palo_arch::TimingModel;
use serde::{Deserialize, Serialize};

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses that hit this level.
    pub demand_hits: u64,
    /// Demand accesses that missed this level.
    pub demand_misses: u64,
    /// Demand hits whose line had been brought in by a prefetcher
    /// (first use only).
    pub prefetch_hits: u64,
    /// Lines filled into this level by a prefetcher.
    pub prefetch_fills: u64,
    /// Dirty lines evicted from this level.
    pub dirty_evictions: u64,
}

impl LevelStats {
    /// Demand accesses observed at this level.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Miss ratio of demand accesses at this level (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 / total as f64
        }
    }
}

/// Counters for a whole hierarchy run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Per-level counters, L1 first.
    pub levels: Vec<LevelStats>,
    /// Demand accesses served by main memory.
    pub mem_demand_fills: u64,
    /// Prefetch requests that went to main memory.
    pub mem_prefetch_fills: u64,
    /// Dirty lines written back to main memory.
    pub mem_writebacks: u64,
    /// Lines written with the non-temporal hint (bypassing the caches).
    pub nt_store_lines: u64,
    /// Total demand accesses fed to the hierarchy.
    pub total_accesses: u64,
}

impl HierarchyStats {
    pub(crate) fn new(levels: usize) -> Self {
        HierarchyStats { levels: vec![LevelStats::default(); levels], ..Default::default() }
    }

    /// Advances every counter by `cycles` times its delta over `base`
    /// (`self += (self - base) * cycles`). Used by the steady-state cycle
    /// skipper: `base` is the snapshot at the start of the verified
    /// cycle, so the delta is one cycle's worth of events.
    pub(crate) fn add_scaled_delta(&mut self, base: &HierarchyStats, cycles: u64) {
        fn bump(cur: &mut u64, base: u64, cycles: u64) {
            *cur += (*cur - base) * cycles;
        }
        for (l, b) in self.levels.iter_mut().zip(&base.levels) {
            bump(&mut l.demand_hits, b.demand_hits, cycles);
            bump(&mut l.demand_misses, b.demand_misses, cycles);
            bump(&mut l.prefetch_hits, b.prefetch_hits, cycles);
            bump(&mut l.prefetch_fills, b.prefetch_fills, cycles);
            bump(&mut l.dirty_evictions, b.dirty_evictions, cycles);
        }
        bump(&mut self.mem_demand_fills, base.mem_demand_fills, cycles);
        bump(&mut self.mem_prefetch_fills, base.mem_prefetch_fills, cycles);
        bump(&mut self.mem_writebacks, base.mem_writebacks, cycles);
        bump(&mut self.nt_store_lines, base.nt_store_lines, cycles);
        bump(&mut self.total_accesses, base.total_accesses, cycles);
    }

    /// Raw cache-hit cycles: every demand hit charged its level's full
    /// latency (`latencies[k]` for level `k`). Out-of-order cores hide
    /// most of this; scale by [`TimingModel::hit_exposed_fraction`] for a
    /// time estimate.
    pub fn hit_cycles(&self, latencies: &[f64]) -> f64 {
        self.levels.iter().zip(latencies).map(|(s, &lat)| s.demand_hits as f64 * lat).sum()
    }

    /// Exposed-latency cycles of demand misses to memory.
    pub fn demand_fill_cycles(&self, timing: &TimingModel) -> f64 {
        self.mem_demand_fills as f64 * timing.mem_latency_cycles
    }

    /// Latency-side cycle estimate: demand hits are charged their level's
    /// latency and demand memory fills the full memory latency. This is
    /// per-execution-stream work that parallel execution divides.
    ///
    /// `latencies[k]` is the access latency of level `k`.
    pub fn latency_cycles(&self, latencies: &[f64], timing: &TimingModel) -> f64 {
        self.hit_cycles(latencies) + self.demand_fill_cycles(timing)
    }

    /// Bandwidth-side cycle estimate: every line crossing the memory bus
    /// (demand fills, prefetch fills, writebacks, NT stores) costs one
    /// transfer. The bus is shared by all cores, so this component does
    /// *not* scale with parallelism — it is what makes memory-bound
    /// kernels memory-bound.
    pub fn bus_cycles(&self, timing: &TimingModel) -> f64 {
        self.mem_traffic_lines() as f64 * timing.mem_transfer_cycles
    }

    /// Combined single-thread estimate
    /// ([`HierarchyStats::latency_cycles`] + [`HierarchyStats::bus_cycles`]).
    pub fn memory_cycles(&self, latencies: &[f64], timing: &TimingModel) -> f64 {
        self.latency_cycles(latencies, timing) + self.bus_cycles(timing)
    }

    /// Total lines transferred on the memory bus (reads + writes),
    /// the bandwidth figure of merit.
    pub fn mem_traffic_lines(&self) -> u64 {
        self.mem_demand_fills
            + self.mem_prefetch_fills
            + self.mem_writebacks
            + self.nt_store_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio() {
        let s = LevelStats { demand_hits: 3, demand_misses: 1, ..Default::default() };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
        assert_eq!(s.demand_accesses(), 4);
    }

    #[test]
    fn memory_cycles_weights_levels() {
        let mut st = HierarchyStats::new(2);
        st.levels[0].demand_hits = 10;
        st.levels[1].demand_hits = 5;
        st.mem_demand_fills = 2;
        st.mem_writebacks = 3;
        let t = TimingModel {
            mem_latency_cycles: 100.0,
            mem_transfer_cycles: 10.0,
            ..TimingModel::default()
        };
        let lat = st.latency_cycles(&[1.0, 10.0], &t);
        assert!((lat - (10.0 + 50.0 + 200.0)).abs() < 1e-9);
        // bus: 2 demand fills + 3 writebacks = 5 lines * 10 cycles
        let bus = st.bus_cycles(&t);
        assert!((bus - 50.0).abs() < 1e-9);
        let cycles = st.memory_cycles(&[1.0, 10.0], &t);
        assert!((cycles - (lat + bus)).abs() < 1e-9);
    }

    #[test]
    fn traffic_sums_all_bus_events() {
        let st = HierarchyStats {
            mem_demand_fills: 1,
            mem_prefetch_fills: 2,
            mem_writebacks: 3,
            nt_store_lines: 4,
            ..HierarchyStats::new(1)
        };
        assert_eq!(st.mem_traffic_lines(), 10);
    }
}
